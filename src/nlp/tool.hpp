#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "geo/geo.hpp"

namespace tero::nlp {

/// Interface of a text -> location tool. Geocoders accept arbitrary
/// unstructured text (Twitch descriptions); geoparsers expect text that
/// already describes a location (Twitter location fields). A tool may return
/// zero, one, or several candidate locations (Mordecai-like tools return
/// several without ranking them, §3.1/App. D.2).
class GeoTool {
 public:
  virtual ~GeoTool() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<geo::Location> extract(
      std::string_view text) const = 0;
};

}  // namespace tero::nlp
