#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "geo/geo.hpp"
#include "nlp/tools.hpp"

namespace tero::nlp {

/// Owns one instance of each underlying tool; building the tool set once and
/// sharing it mirrors Tero's per-process tool containers (App. B).
struct ToolSet {
  std::unique_ptr<GeoTool> cliff = make_cliff_like();
  std::unique_ptr<GeoTool> xponents = make_xponents_like();
  std::unique_ptr<GeoTool> mordecai = make_mordecai_like();
  std::unique_ptr<GeoTool> nominatim = make_nominatim_like();
  std::unique_ptr<GeoTool> geonames = make_geonames_like();
};

/// App. D.2: extract a location from a Twitch description by combining the
/// three geocoders: (1) run all three; (2) keep CLIFF/Xponents output that
/// passes the conservative filter; (3) otherwise accept a location at least
/// two tools agree on; (4) otherwise accept the more complete of a
/// subsuming pair.
[[nodiscard]] std::optional<geo::Location> combine_twitch_description(
    std::string_view description, const ToolSet& tools);

/// Same, with the Twitch country-tag recovery (App. D.2 last paragraph):
/// output discarded by the heuristics is recovered when a stable country
/// tag confirms the geocoded country.
[[nodiscard]] std::optional<geo::Location> combine_twitch_description(
    std::string_view description, const ToolSet& tools,
    const std::optional<std::string>& country_tag);

/// App. D.3: extract a location from a Twitter location field by combining
/// Nominatim and GeoNames; on disagreement, fall back to the Twitch
/// description path over the same text.
[[nodiscard]] std::optional<geo::Location> combine_twitter_location(
    std::string_view location_field, const ToolSet& tools);

}  // namespace tero::nlp
