#pragma once

#include <memory>

#include "nlp/tool.hpp"

namespace tero::nlp {

/// The three geocoders Tero runs over Twitch descriptions (App. D.2).
/// Re-implementations with the real tools' *behavioural profiles*:
///
/// - "cliff" (CLIFF-like): only capitalized mentions, ambiguity resolved by
///   gazetteer weight; conservative recall, precise on well-formed text.
/// - "xponents" (Xponents-like): case-insensitive and substring matching
///   ("Denmarkian" -> Denmark); the highest recall and the highest raw error
///   rate of the three (Table 3).
/// - "mordecai" (Mordecai-like): word-boundary matching but returns every
///   candidate without ranking, "making it hard to use on its own" (§3.1).
[[nodiscard]] std::unique_ptr<GeoTool> make_cliff_like();
[[nodiscard]] std::unique_ptr<GeoTool> make_xponents_like();
[[nodiscard]] std::unique_ptr<GeoTool> make_mordecai_like();

/// The two geoparsers Tero runs over Twitter location fields (App. D.3):
/// - "nominatim" (Nominatim-like): parses "City, Region, Country" comma
///   structure and cross-checks the components.
/// - "geonames" (GeoNames-like): bag-of-tokens lookup that picks the
///   highest-weight name match.
[[nodiscard]] std::unique_ptr<GeoTool> make_nominatim_like();
[[nodiscard]] std::unique_ptr<GeoTool> make_geonames_like();

}  // namespace tero::nlp
