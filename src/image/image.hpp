#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "image/arena.hpp"

namespace tero::image {

/// Axis-aligned integer rectangle (x, y = top-left corner).
struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  [[nodiscard]] bool contains(int px, int py) const noexcept {
    return px >= x && px < x + w && py >= y && py < y + h;
  }
  [[nodiscard]] Rect intersect(const Rect& other) const noexcept;
  [[nodiscard]] bool empty() const noexcept { return w <= 0 || h <= 0; }
};

/// An 8-bit grayscale raster. Twitch thumbnails are color, but latency text
/// extraction only needs luminance, so the whole pipeline is grayscale
/// (App. E converts to black-and-white as its first standard step).
///
/// Storage is either heap-owned (the default constructors) or borrowed from
/// an `Arena` (the Arena constructors): arena-backed images are how the
/// extraction fast path keeps per-thumbnail temporaries off the global
/// allocator (DESIGN.md §12). An arena-backed image is valid only until the
/// enclosing Arena::Frame is destroyed; copying one yields an independent
/// heap-owned image, so nothing arena-backed escapes by accident.
class GrayImage {
 public:
  GrayImage() = default;
  GrayImage(int width, int height, std::uint8_t fill = 0);
  /// Arena-backed: pixels live in `arena` until the enclosing Frame ends.
  GrayImage(Arena& arena, int width, int height, std::uint8_t fill = 0);

  GrayImage(const GrayImage& other);             // deep copy, heap-owned
  GrayImage& operator=(const GrayImage& other);  // deep copy, heap-owned
  GrayImage(GrayImage&& other) noexcept;
  GrayImage& operator=(GrayImage&& other) noexcept;
  ~GrayImage() = default;

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] bool empty() const noexcept {
    return width_ == 0 || height_ == 0;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }

  /// Raw pixel rows — the hot-path access pattern. row(y)[x] replaces
  /// at(x, y)'s per-pixel widen-multiply-add with one add per row.
  [[nodiscard]] std::uint8_t* row(int y) noexcept {
    return data_ + static_cast<std::size_t>(y) * width_;
  }
  [[nodiscard]] const std::uint8_t* row(int y) const noexcept {
    return data_ + static_cast<std::size_t>(y) * width_;
  }
  [[nodiscard]] std::uint8_t* data() noexcept { return data_; }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }

  [[nodiscard]] std::uint8_t at(int x, int y) const noexcept {
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  void set(int x, int y, std::uint8_t value) noexcept {
    data_[static_cast<std::size_t>(y) * width_ + x] = value;
  }
  /// at() with zero padding outside the raster.
  [[nodiscard]] std::uint8_t at_clamped(int x, int y) const noexcept;

  [[nodiscard]] std::span<const std::uint8_t> pixels() const noexcept {
    return {data_, size()};
  }

  void fill(std::uint8_t value) noexcept;
  void fill_rect(const Rect& rect, std::uint8_t value) noexcept;

  /// Copy of the sub-image clipped to the raster bounds.
  [[nodiscard]] GrayImage crop(const Rect& rect) const;
  /// Arena-backed copy of the sub-image (valid until the Frame ends).
  [[nodiscard]] GrayImage crop(const Rect& rect, Arena& arena) const;

  /// Binary PGM (P5) serialization — the repo's debug/export format.
  [[nodiscard]] std::string to_pgm() const;
  [[nodiscard]] static GrayImage from_pgm(const std::string& bytes);

  friend bool operator==(const GrayImage& a, const GrayImage& b) noexcept;

 private:
  void copy_rect_from(const GrayImage& src, const Rect& clipped) noexcept;

  int width_ = 0;
  int height_ = 0;
  std::uint8_t* data_ = nullptr;    ///< heap_.data() or an arena block
  std::vector<std::uint8_t> heap_;  ///< empty when arena-backed
};

}  // namespace tero::image
