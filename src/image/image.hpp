#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tero::image {

/// Axis-aligned integer rectangle (x, y = top-left corner).
struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  [[nodiscard]] bool contains(int px, int py) const noexcept {
    return px >= x && px < x + w && py >= y && py < y + h;
  }
  [[nodiscard]] Rect intersect(const Rect& other) const noexcept;
  [[nodiscard]] bool empty() const noexcept { return w <= 0 || h <= 0; }
};

/// An 8-bit grayscale raster. Twitch thumbnails are color, but latency text
/// extraction only needs luminance, so the whole pipeline is grayscale
/// (App. E converts to black-and-white as its first standard step).
class GrayImage {
 public:
  GrayImage() = default;
  GrayImage(int width, int height, std::uint8_t fill = 0);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] bool empty() const noexcept {
    return width_ == 0 || height_ == 0;
  }

  [[nodiscard]] std::uint8_t at(int x, int y) const noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  void set(int x, int y, std::uint8_t value) noexcept {
    pixels_[static_cast<std::size_t>(y) * width_ + x] = value;
  }
  /// at() with zero padding outside the raster.
  [[nodiscard]] std::uint8_t at_clamped(int x, int y) const noexcept;

  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const noexcept {
    return pixels_;
  }

  void fill(std::uint8_t value) noexcept;
  void fill_rect(const Rect& rect, std::uint8_t value) noexcept;

  /// Copy of the sub-image clipped to the raster bounds.
  [[nodiscard]] GrayImage crop(const Rect& rect) const;

  /// Binary PGM (P5) serialization — the repo's debug/export format.
  [[nodiscard]] std::string to_pgm() const;
  [[nodiscard]] static GrayImage from_pgm(const std::string& bytes);

  friend bool operator==(const GrayImage&, const GrayImage&) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

}  // namespace tero::image
