#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "image/arena.hpp"
#include "image/image.hpp"

namespace tero::image {

/// Bilinear up-scaling by an integer factor — step (b) of the paper's
/// pre-processing (App. E): games render latency at ~75 dpi, so OCR operates
/// on an up-scaled copy.
[[nodiscard]] GrayImage upscale_bilinear(const GrayImage& img, int factor);
/// Arena-backed variant (result valid until the enclosing Frame ends).
[[nodiscard]] GrayImage upscale_bilinear(const GrayImage& img, int factor,
                                         Arena& arena);

/// Separable Gaussian blur; sigma <= 0 returns the input unchanged.
[[nodiscard]] GrayImage gaussian_blur(const GrayImage& img, double sigma);
[[nodiscard]] GrayImage gaussian_blur(const GrayImage& img, double sigma,
                                      Arena& arena);

/// Otsu's global threshold [40]: the gray level that maximizes between-class
/// variance of the histogram.
[[nodiscard]] std::uint8_t otsu_threshold(const GrayImage& img);

/// Binarize: pixels strictly above `threshold` become 255, others 0.
[[nodiscard]] GrayImage binarize(const GrayImage& img, std::uint8_t threshold);
[[nodiscard]] GrayImage binarize(const GrayImage& img, std::uint8_t threshold,
                                 Arena& arena);
/// In-place binarize (the preprocessing chain re-uses its arena buffer).
void binarize_inplace(GrayImage& img, std::uint8_t threshold) noexcept;

/// 3x3 morphological dilation / erosion on a binary image (255 = foreground).
[[nodiscard]] GrayImage dilate3x3(const GrayImage& img);
[[nodiscard]] GrayImage dilate3x3(const GrayImage& img, Arena& arena);
[[nodiscard]] GrayImage erode3x3(const GrayImage& img);
[[nodiscard]] GrayImage erode3x3(const GrayImage& img, Arena& arena);

[[nodiscard]] GrayImage invert(const GrayImage& img);
void invert_inplace(GrayImage& img) noexcept;

/// Fraction of foreground (255) pixels.
[[nodiscard]] double foreground_ratio(const GrayImage& img) noexcept;

/// A connected foreground region of a binary image.
struct Component {
  Rect bounds;
  int area = 0;  ///< number of foreground pixels
};

/// 8-connected components of a binary image (255 = foreground), sorted
/// left-to-right by bounding-box x. Components smaller than `min_area`
/// pixels are dropped as noise.
[[nodiscard]] std::vector<Component> connected_components(const GrayImage& img,
                                                          int min_area = 1);

/// Resample the foreground bounding box of a binary glyph onto a `size`x
/// `size` grid of pixel densities in [0,1] — the normalized form the OCR
/// engines classify. The span overload writes into caller-owned storage
/// (out.size() >= size*size) so the per-glyph engine loops allocate nothing.
void normalize_glyph(const GrayImage& img, const Rect& bounds, int size,
                     std::span<float> out) noexcept;
[[nodiscard]] std::vector<double> normalize_glyph(const GrayImage& img,
                                                  const Rect& bounds,
                                                  int size);

}  // namespace tero::image
