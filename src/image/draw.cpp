#include "image/draw.hpp"

#include <algorithm>

#include "image/font.hpp"

namespace tero::image {

int text_width(std::string_view text, const TextStyle& style) {
  if (text.empty()) return 0;
  const int per_char = (kGlyphWidth + style.letter_spacing) * style.scale;
  return static_cast<int>(text.size()) * per_char -
         style.letter_spacing * style.scale;
}

int text_height(const TextStyle& style) { return kGlyphHeight * style.scale; }

int draw_text(GrayImage& img, int x, int y, std::string_view text,
              const TextStyle& style) {
  int cursor = x;
  for (char character : text) {
    const auto glyph = find_glyph(character);
    if (glyph.has_value()) {
      for (int gy = 0; gy < kGlyphHeight; ++gy) {
        for (int gx = 0; gx < kGlyphWidth; ++gx) {
          const bool ink = glyph->rows[gy][gx] == '#';
          const std::uint8_t value = ink ? style.foreground : style.background;
          for (int sy = 0; sy < style.scale; ++sy) {
            for (int sx = 0; sx < style.scale; ++sx) {
              const int px = cursor + gx * style.scale + sx;
              const int py = y + gy * style.scale + sy;
              if (px >= 0 && px < img.width() && py >= 0 && py < img.height()) {
                img.set(px, py, value);
              }
            }
          }
        }
      }
    }
    cursor += (kGlyphWidth + style.letter_spacing) * style.scale;
  }
  return cursor;
}

void add_noise(GrayImage& img, double stddev, util::Rng& rng) {
  if (stddev <= 0.0) return;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const double noisy = img.at(x, y) + rng.normal(0.0, stddev);
      img.set(x, y, static_cast<std::uint8_t>(std::clamp(noisy, 0.0, 255.0)));
    }
  }
}

}  // namespace tero::image
