#include "image/image.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace tero::image {

Rect Rect::intersect(const Rect& other) const noexcept {
  const int x1 = std::max(x, other.x);
  const int y1 = std::max(y, other.y);
  const int x2 = std::min(x + w, other.x + other.w);
  const int y2 = std::min(y + h, other.y + other.h);
  return Rect{x1, y1, std::max(0, x2 - x1), std::max(0, y2 - y1)};
}

GrayImage::GrayImage(int width, int height, std::uint8_t fill)
    : width_(width), height_(height) {
  if (width < 0 || height < 0) {
    throw std::invalid_argument("GrayImage: negative dimensions");
  }
  heap_.assign(size(), fill);
  data_ = heap_.data();
}

GrayImage::GrayImage(Arena& arena, int width, int height, std::uint8_t fill)
    : width_(width), height_(height) {
  if (width < 0 || height < 0) {
    throw std::invalid_argument("GrayImage: negative dimensions");
  }
  const std::size_t bytes = size();
  data_ = bytes > 0 ? arena.allocate(bytes) : nullptr;
  if (bytes > 0) std::memset(data_, fill, bytes);
}

GrayImage::GrayImage(const GrayImage& other)
    : width_(other.width_), height_(other.height_) {
  heap_.assign(other.data_, other.data_ + other.size());
  data_ = heap_.data();
}

GrayImage& GrayImage::operator=(const GrayImage& other) {
  if (this == &other) return *this;
  width_ = other.width_;
  height_ = other.height_;
  heap_.assign(other.data_, other.data_ + other.size());
  data_ = heap_.data();
  return *this;
}

GrayImage::GrayImage(GrayImage&& other) noexcept
    : width_(other.width_),
      height_(other.height_),
      data_(other.data_),
      heap_(std::move(other.heap_)) {
  if (!heap_.empty()) data_ = heap_.data();
  other.width_ = 0;
  other.height_ = 0;
  other.data_ = nullptr;
  other.heap_.clear();
}

GrayImage& GrayImage::operator=(GrayImage&& other) noexcept {
  if (this == &other) return *this;
  width_ = other.width_;
  height_ = other.height_;
  heap_ = std::move(other.heap_);
  data_ = heap_.empty() ? other.data_ : heap_.data();
  other.width_ = 0;
  other.height_ = 0;
  other.data_ = nullptr;
  other.heap_.clear();
  return *this;
}

bool operator==(const GrayImage& a, const GrayImage& b) noexcept {
  if (a.width_ != b.width_ || a.height_ != b.height_) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data_, b.data_, a.size()) == 0;
}

std::uint8_t GrayImage::at_clamped(int x, int y) const noexcept {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return 0;
  return at(x, y);
}

void GrayImage::fill(std::uint8_t value) noexcept {
  if (size() > 0) std::memset(data_, value, size());
}

void GrayImage::fill_rect(const Rect& rect, std::uint8_t value) noexcept {
  const Rect clipped = rect.intersect(Rect{0, 0, width_, height_});
  for (int y = clipped.y; y < clipped.y + clipped.h; ++y) {
    std::memset(row(y) + clipped.x, value, static_cast<std::size_t>(clipped.w));
  }
}

void GrayImage::copy_rect_from(const GrayImage& src,
                               const Rect& clipped) noexcept {
  for (int y = 0; y < clipped.h; ++y) {
    std::memcpy(row(y), src.row(clipped.y + y) + clipped.x,
                static_cast<std::size_t>(clipped.w));
  }
}

GrayImage GrayImage::crop(const Rect& rect) const {
  const Rect clipped = rect.intersect(Rect{0, 0, width_, height_});
  GrayImage out(clipped.w, clipped.h);
  out.copy_rect_from(*this, clipped);
  return out;
}

GrayImage GrayImage::crop(const Rect& rect, Arena& arena) const {
  const Rect clipped = rect.intersect(Rect{0, 0, width_, height_});
  GrayImage out(arena, clipped.w, clipped.h);
  out.copy_rect_from(*this, clipped);
  return out;
}

std::string GrayImage::to_pgm() const {
  std::ostringstream os;
  os << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  os.write(reinterpret_cast<const char*>(data_),
           static_cast<std::streamsize>(size()));
  return os.str();
}

GrayImage GrayImage::from_pgm(const std::string& bytes) {
  std::istringstream is(bytes);
  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
  is >> magic >> width >> height >> maxval;
  if (magic != "P5" || maxval != 255 || width <= 0 || height <= 0) {
    throw std::invalid_argument("GrayImage::from_pgm: bad header");
  }
  is.get();  // single whitespace after header
  GrayImage img(width, height);
  is.read(reinterpret_cast<char*>(img.data()),
          static_cast<std::streamsize>(img.size()));
  if (is.gcount() != static_cast<std::streamsize>(img.size())) {
    throw std::invalid_argument("GrayImage::from_pgm: truncated data");
  }
  return img;
}

}  // namespace tero::image
