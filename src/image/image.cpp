#include "image/image.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace tero::image {

Rect Rect::intersect(const Rect& other) const noexcept {
  const int x1 = std::max(x, other.x);
  const int y1 = std::max(y, other.y);
  const int x2 = std::min(x + w, other.x + other.w);
  const int y2 = std::min(y + h, other.y + other.h);
  return Rect{x1, y1, std::max(0, x2 - x1), std::max(0, y2 - y1)};
}

GrayImage::GrayImage(int width, int height, std::uint8_t fill)
    : width_(width), height_(height) {
  if (width < 0 || height < 0) {
    throw std::invalid_argument("GrayImage: negative dimensions");
  }
  pixels_.assign(static_cast<std::size_t>(width) * height, fill);
}

std::uint8_t GrayImage::at_clamped(int x, int y) const noexcept {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return 0;
  return at(x, y);
}

void GrayImage::fill(std::uint8_t value) noexcept {
  std::fill(pixels_.begin(), pixels_.end(), value);
}

void GrayImage::fill_rect(const Rect& rect, std::uint8_t value) noexcept {
  const Rect clipped = rect.intersect(Rect{0, 0, width_, height_});
  for (int y = clipped.y; y < clipped.y + clipped.h; ++y) {
    for (int x = clipped.x; x < clipped.x + clipped.w; ++x) {
      set(x, y, value);
    }
  }
}

GrayImage GrayImage::crop(const Rect& rect) const {
  const Rect clipped = rect.intersect(Rect{0, 0, width_, height_});
  GrayImage out(clipped.w, clipped.h);
  for (int y = 0; y < clipped.h; ++y) {
    for (int x = 0; x < clipped.w; ++x) {
      out.set(x, y, at(clipped.x + x, clipped.y + y));
    }
  }
  return out;
}

std::string GrayImage::to_pgm() const {
  std::ostringstream os;
  os << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  os.write(reinterpret_cast<const char*>(pixels_.data()),
           static_cast<std::streamsize>(pixels_.size()));
  return os.str();
}

GrayImage GrayImage::from_pgm(const std::string& bytes) {
  std::istringstream is(bytes);
  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
  is >> magic >> width >> height >> maxval;
  if (magic != "P5" || maxval != 255 || width <= 0 || height <= 0) {
    throw std::invalid_argument("GrayImage::from_pgm: bad header");
  }
  is.get();  // single whitespace after header
  GrayImage img(width, height);
  is.read(reinterpret_cast<char*>(
              const_cast<std::uint8_t*>(img.pixels().data())),
          static_cast<std::streamsize>(img.pixels().size()));
  if (is.gcount() != static_cast<std::streamsize>(img.pixels().size())) {
    throw std::invalid_argument("GrayImage::from_pgm: truncated data");
  }
  return img;
}

}  // namespace tero::image
