#include "image/ops.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/simd.hpp"

namespace tero::image {
namespace {

namespace simd = util::simd;

template <typename T>
[[nodiscard]] T* scratch_array(Arena& arena, std::size_t n) {
  return reinterpret_cast<T*>(arena.allocate(n * sizeof(T)));
}

// ---------------------------------------------------------------------------
// upscale
// ---------------------------------------------------------------------------

/// Bilinear sampling with per-axis coefficients hoisted out of the pixel
/// loop: source indices and fractional weights depend on one axis only, so
/// they are computed once per row/column instead of once per pixel. The
/// per-pixel arithmetic (and therefore the output) is unchanged.
void upscale_into(const GrayImage& img, int factor, GrayImage& out,
                  Arena& scratch) {
  const int out_w = out.width();
  const int out_h = out.height();
  int* const x0s = scratch_array<int>(scratch, static_cast<std::size_t>(out_w));
  int* const x1s = scratch_array<int>(scratch, static_cast<std::size_t>(out_w));
  double* const fxs =
      scratch_array<double>(scratch, static_cast<std::size_t>(out_w));
  for (int x = 0; x < out_w; ++x) {
    const double sx = (x + 0.5) / factor - 0.5;
    x0s[x] = std::clamp(static_cast<int>(std::floor(sx)), 0, img.width() - 1);
    x1s[x] = std::min(x0s[x] + 1, img.width() - 1);
    fxs[x] = std::clamp(sx - x0s[x], 0.0, 1.0);
  }
  for (int y = 0; y < out_h; ++y) {
    const double sy = (y + 0.5) / factor - 0.5;
    const int y0 = std::clamp(static_cast<int>(std::floor(sy)), 0,
                              img.height() - 1);
    const int y1 = std::min(y0 + 1, img.height() - 1);
    const double fy = std::clamp(sy - y0, 0.0, 1.0);
    const std::uint8_t* const row0 = img.row(y0);
    const std::uint8_t* const row1 = img.row(y1);
    std::uint8_t* const dst = out.row(y);
    for (int x = 0; x < out_w; ++x) {
      const double fx = fxs[x];
      const double top = row0[x0s[x]] * (1 - fx) + row0[x1s[x]] * fx;
      const double bottom = row1[x0s[x]] * (1 - fx) + row1[x1s[x]] * fx;
      dst[x] = static_cast<std::uint8_t>(
          std::clamp(top * (1 - fy) + bottom * fy, 0.0, 255.0));
    }
  }
}

// ---------------------------------------------------------------------------
// blur
// ---------------------------------------------------------------------------

struct BlurKernel {
  std::vector<double> taps;
  int radius = 0;
};

[[nodiscard]] BlurKernel make_blur_kernel(double sigma) {
  BlurKernel k;
  k.radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  k.taps.resize(2 * static_cast<std::size_t>(k.radius) + 1);
  double total = 0.0;
  for (int i = -k.radius; i <= k.radius; ++i) {
    k.taps[static_cast<std::size_t>(i + k.radius)] =
        std::exp(-0.5 * (i * i) / (sigma * sigma));
    total += k.taps[static_cast<std::size_t>(i + k.radius)];
  }
  for (double& t : k.taps) t /= total;
  return k;
}

/// One clamped-border output pixel, taps in order i = -r..r (the order the
/// pre-SIMD code used; the interior kernels preserve it too).
[[nodiscard]] std::uint8_t conv_clamped_h(const std::uint8_t* row, int w,
                                          const BlurKernel& k, int x) noexcept {
  double sum = 0.0;
  for (int i = -k.radius; i <= k.radius; ++i) {
    const int sx = std::clamp(x + i, 0, w - 1);
    sum += k.taps[static_cast<std::size_t>(i + k.radius)] *
           static_cast<double>(row[sx]);
  }
  return static_cast<std::uint8_t>(std::clamp(sum, 0.0, 255.0));
}

void blur_into(const GrayImage& img, const BlurKernel& k, GrayImage& out,
               Arena& scratch) {
  const int w = img.width();
  const int h = img.height();
  const int r = k.radius;
  const std::size_t taps = k.taps.size();

  GrayImage horizontal(scratch, w, h);
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* const src = img.row(y);
    std::uint8_t* const dst = horizontal.row(y);
    const int interior = w - 2 * r;
    if (interior > 0) {
      for (int x = 0; x < r; ++x) dst[x] = conv_clamped_h(src, w, k, x);
      simd::conv_valid_u8_f64(src, static_cast<std::size_t>(interior),
                              k.taps.data(), taps, dst + r);
      for (int x = w - r; x < w; ++x) dst[x] = conv_clamped_h(src, w, k, x);
    } else {
      for (int x = 0; x < w; ++x) dst[x] = conv_clamped_h(src, w, k, x);
    }
  }

  const std::uint8_t** rows =
      const_cast<const std::uint8_t**>(scratch_array<const std::uint8_t*>(
          scratch, taps));
  for (int y = 0; y < h; ++y) {
    for (int i = -r; i <= r; ++i) {
      rows[i + r] = horizontal.row(std::clamp(y + i, 0, h - 1));
    }
    simd::conv_rows_u8_f64(rows, static_cast<std::size_t>(w), k.taps.data(),
                           taps, out.row(y));
  }
}

// ---------------------------------------------------------------------------
// morphology
// ---------------------------------------------------------------------------

/// Separable 3x3 OR/AND morphology over a 0/255 binary map: a vertical
/// combine of the three neighbouring rows into a scratch row, then a
/// three-shift horizontal combine. Out-of-raster neighbours are background
/// (the at_clamped semantics of the pre-SIMD code).
void morph_into(const GrayImage& src, GrayImage& dst, bool dilate,
                Arena& scratch) {
  const int w = src.width();
  const int h = src.height();
  if (w == 0 || h == 0) return;
  const std::size_t n = static_cast<std::size_t>(w);
  std::uint8_t* const t = scratch.allocate(n);
  std::uint8_t* const zero = scratch.allocate(n);
  std::memset(zero, 0, n);
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* const above = y > 0 ? src.row(y - 1) : zero;
    const std::uint8_t* const mid = src.row(y);
    const std::uint8_t* const below = y + 1 < h ? src.row(y + 1) : zero;
    if (dilate) {
      simd::eq255_or3_u8(above, mid, below, t, n);
      simd::neighbor_or3_u8(t, dst.row(y), n);
    } else {
      if (y == 0 || y + 1 == h) {
        std::memset(dst.row(y), 0, n);  // border rows always erode away
        continue;
      }
      simd::eq255_and3_u8(above, mid, below, t, n);
      simd::neighbor_and3_u8(t, dst.row(y), n);
    }
  }
}

[[nodiscard]] GrayImage morph_heap(const GrayImage& img, bool dilate) {
  Arena& scratch = Arena::thread_local_arena();
  const Arena::Frame frame(scratch);
  GrayImage out(img.width(), img.height());
  morph_into(img, out, dilate, scratch);
  return out;
}

[[nodiscard]] GrayImage morph_arena(const GrayImage& img, bool dilate,
                                    Arena& arena) {
  GrayImage out(arena, img.width(), img.height());
  morph_into(img, out, dilate, arena);
  return out;
}

/// Per-glyph-cell foreground count used by both normalize_glyph overloads,
/// so the float fast path and the double compatibility path stay in sync.
struct CellCount {
  std::size_t ink = 0;
  std::size_t total = 0;
};

[[nodiscard]] CellCount count_cell(const GrayImage& img, const Rect& clipped,
                                   int gx, int gy, int size) noexcept {
  // Map the grid cell to a pixel block in the bounding box.
  const int x0 = clipped.x + gx * clipped.w / size;
  const int x1 = std::max(x0 + 1, clipped.x + (gx + 1) * clipped.w / size);
  const int y0 = clipped.y + gy * clipped.h / size;
  const int y1 = std::max(y0 + 1, clipped.y + (gy + 1) * clipped.h / size);
  const int x_end = std::min(x1, clipped.x + clipped.w);
  const int y_end = std::min(y1, clipped.y + clipped.h);
  CellCount count;
  for (int y = y0; y < y_end; ++y) {
    const std::size_t span = static_cast<std::size_t>(x_end - x0);
    count.ink += simd::count_eq_u8(img.row(y) + x0, span, 255);
    count.total += span;
  }
  return count;
}

}  // namespace

GrayImage upscale_bilinear(const GrayImage& img, int factor) {
  if (factor < 1) throw std::invalid_argument("upscale: factor < 1");
  if (factor == 1 || img.empty()) return img;
  Arena& scratch = Arena::thread_local_arena();
  const Arena::Frame frame(scratch);
  GrayImage out(img.width() * factor, img.height() * factor);
  upscale_into(img, factor, out, scratch);
  return out;
}

GrayImage upscale_bilinear(const GrayImage& img, int factor, Arena& arena) {
  if (factor < 1) throw std::invalid_argument("upscale: factor < 1");
  if (factor == 1 || img.empty()) {
    GrayImage out(arena, img.width(), img.height());
    if (!img.empty()) std::memcpy(out.data(), img.data(), img.size());
    return out;
  }
  GrayImage out(arena, img.width() * factor, img.height() * factor);
  upscale_into(img, factor, out, arena);
  return out;
}

GrayImage gaussian_blur(const GrayImage& img, double sigma) {
  if (sigma <= 0.0 || img.empty()) return img;
  Arena& scratch = Arena::thread_local_arena();
  const Arena::Frame frame(scratch);
  const BlurKernel kernel = make_blur_kernel(sigma);
  GrayImage out(img.width(), img.height());
  blur_into(img, kernel, out, scratch);
  return out;
}

GrayImage gaussian_blur(const GrayImage& img, double sigma, Arena& arena) {
  if (sigma <= 0.0 || img.empty()) {
    GrayImage out(arena, img.width(), img.height());
    if (!img.empty()) std::memcpy(out.data(), img.data(), img.size());
    return out;
  }
  const BlurKernel kernel = make_blur_kernel(sigma);
  GrayImage out(arena, img.width(), img.height());
  blur_into(img, kernel, out, arena);
  return out;
}

std::uint8_t otsu_threshold(const GrayImage& img) {
  std::uint64_t histogram[256];
  util::simd::histogram_u8(img.data(), img.size(), histogram);
  const double total = static_cast<double>(img.size());
  if (total == 0.0) return 127;

  double sum_all = 0.0;
  for (int i = 0; i < 256; ++i) sum_all += i * static_cast<double>(histogram[i]);

  double sum_bg = 0.0;
  double weight_bg = 0.0;
  double best_variance = -1.0;
  std::uint8_t best_threshold = 127;
  for (int t = 0; t < 256; ++t) {
    weight_bg += static_cast<double>(histogram[t]);
    if (weight_bg == 0.0) continue;
    const double weight_fg = total - weight_bg;
    if (weight_fg == 0.0) break;
    sum_bg += t * static_cast<double>(histogram[t]);
    const double mean_bg = sum_bg / weight_bg;
    const double mean_fg = (sum_all - sum_bg) / weight_fg;
    const double variance =
        weight_bg * weight_fg * (mean_bg - mean_fg) * (mean_bg - mean_fg);
    if (variance > best_variance) {
      best_variance = variance;
      best_threshold = static_cast<std::uint8_t>(t);
    }
  }
  return best_threshold;
}

GrayImage binarize(const GrayImage& img, std::uint8_t threshold) {
  GrayImage out(img.width(), img.height());
  util::simd::binarize_u8(img.data(), out.data(), img.size(), threshold);
  return out;
}

GrayImage binarize(const GrayImage& img, std::uint8_t threshold,
                   Arena& arena) {
  GrayImage out(arena, img.width(), img.height());
  util::simd::binarize_u8(img.data(), out.data(), img.size(), threshold);
  return out;
}

void binarize_inplace(GrayImage& img, std::uint8_t threshold) noexcept {
  util::simd::binarize_u8(img.data(), img.data(), img.size(), threshold);
}

GrayImage dilate3x3(const GrayImage& img) { return morph_heap(img, true); }
GrayImage dilate3x3(const GrayImage& img, Arena& arena) {
  return morph_arena(img, true, arena);
}
GrayImage erode3x3(const GrayImage& img) { return morph_heap(img, false); }
GrayImage erode3x3(const GrayImage& img, Arena& arena) {
  return morph_arena(img, false, arena);
}

GrayImage invert(const GrayImage& img) {
  GrayImage out(img.width(), img.height());
  util::simd::invert_u8(img.data(), out.data(), img.size());
  return out;
}

void invert_inplace(GrayImage& img) noexcept {
  util::simd::invert_u8(img.data(), img.data(), img.size());
}

double foreground_ratio(const GrayImage& img) noexcept {
  if (img.size() == 0) return 0.0;
  const std::size_t count =
      util::simd::count_eq_u8(img.data(), img.size(), 255);
  return static_cast<double>(count) / static_cast<double>(img.size());
}

std::vector<Component> connected_components(const GrayImage& img,
                                            int min_area) {
  std::vector<Component> components;
  if (img.empty()) return components;
  const int w = img.width();
  const int h = img.height();
  std::vector<int> labels(static_cast<std::size_t>(w) * h, -1);

  std::vector<std::pair<int, int>> stack;
  int next_label = 0;
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* const row = img.row(y);
    int* const label_row = labels.data() + static_cast<std::size_t>(y) * w;
    int x = 0;
    while (x < w) {
      // SIMD label scan: skip background 16 pixels per compare — thumbnails
      // are mostly background after binarization.
      const std::size_t skip = util::simd::find_eq_u8(
          row + x, static_cast<std::size_t>(w - x), 255);
      x += static_cast<int>(skip);
      if (x >= w) break;
      if (label_row[x] != -1) {
        ++x;
        continue;
      }
      // Flood fill (8-connected).
      Component comp;
      int min_x = x, max_x = x, min_y = y, max_y = y;
      stack.clear();
      stack.emplace_back(x, y);
      label_row[x] = next_label;
      while (!stack.empty()) {
        const auto [cx, cy] = stack.back();
        stack.pop_back();
        ++comp.area;
        min_x = std::min(min_x, cx);
        max_x = std::max(max_x, cx);
        min_y = std::min(min_y, cy);
        max_y = std::max(max_y, cy);
        for (int dy = -1; dy <= 1; ++dy) {
          const int ny = cy + dy;
          if (ny < 0 || ny >= h) continue;
          const std::uint8_t* const nrow = img.row(ny);
          int* const nlabels = labels.data() + static_cast<std::size_t>(ny) * w;
          for (int dx = -1; dx <= 1; ++dx) {
            const int nx = cx + dx;
            if (nx < 0 || nx >= w) continue;
            if (nrow[nx] == 255 && nlabels[nx] == -1) {
              nlabels[nx] = next_label;
              stack.emplace_back(nx, ny);
            }
          }
        }
      }
      comp.bounds = Rect{min_x, min_y, max_x - min_x + 1, max_y - min_y + 1};
      if (comp.area >= min_area) components.push_back(comp);
      ++next_label;
      ++x;
    }
  }
  std::sort(components.begin(), components.end(),
            [](const Component& a, const Component& b) {
              return a.bounds.x < b.bounds.x;
            });
  return components;
}

void normalize_glyph(const GrayImage& img, const Rect& bounds, int size,
                     std::span<float> out) noexcept {
  const std::size_t cells = static_cast<std::size_t>(size) * size;
  std::fill(out.begin(), out.begin() + cells, 0.0f);
  const Rect clipped = bounds.intersect(Rect{0, 0, img.width(), img.height()});
  if (clipped.empty()) return;
  for (int gy = 0; gy < size; ++gy) {
    for (int gx = 0; gx < size; ++gx) {
      const CellCount cell = count_cell(img, clipped, gx, gy, size);
      out[static_cast<std::size_t>(gy) * size + gx] =
          cell.total > 0
              ? static_cast<float>(cell.ink) / static_cast<float>(cell.total)
              : 0.0f;
    }
  }
}

std::vector<double> normalize_glyph(const GrayImage& img, const Rect& bounds,
                                    int size) {
  std::vector<double> grid(static_cast<std::size_t>(size) * size, 0.0);
  const Rect clipped = bounds.intersect(Rect{0, 0, img.width(), img.height()});
  if (clipped.empty()) return grid;
  for (int gy = 0; gy < size; ++gy) {
    for (int gx = 0; gx < size; ++gx) {
      const CellCount cell = count_cell(img, clipped, gx, gy, size);
      grid[static_cast<std::size_t>(gy) * size + gx] =
          cell.total > 0
              ? static_cast<double>(cell.ink) / static_cast<double>(cell.total)
              : 0.0;
    }
  }
  return grid;
}

}  // namespace tero::image
