#include "image/ops.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace tero::image {

GrayImage upscale_bilinear(const GrayImage& img, int factor) {
  if (factor < 1) throw std::invalid_argument("upscale: factor < 1");
  if (factor == 1 || img.empty()) return img;
  GrayImage out(img.width() * factor, img.height() * factor);
  for (int y = 0; y < out.height(); ++y) {
    const double sy = (y + 0.5) / factor - 0.5;
    const int y0 = std::clamp(static_cast<int>(std::floor(sy)), 0,
                              img.height() - 1);
    const int y1 = std::min(y0 + 1, img.height() - 1);
    const double fy = std::clamp(sy - y0, 0.0, 1.0);
    for (int x = 0; x < out.width(); ++x) {
      const double sx = (x + 0.5) / factor - 0.5;
      const int x0 = std::clamp(static_cast<int>(std::floor(sx)), 0,
                                img.width() - 1);
      const int x1 = std::min(x0 + 1, img.width() - 1);
      const double fx = std::clamp(sx - x0, 0.0, 1.0);
      const double top = img.at(x0, y0) * (1 - fx) + img.at(x1, y0) * fx;
      const double bottom = img.at(x0, y1) * (1 - fx) + img.at(x1, y1) * fx;
      out.set(x, y,
              static_cast<std::uint8_t>(
                  std::clamp(top * (1 - fy) + bottom * fy, 0.0, 255.0)));
    }
  }
  return out;
}

GrayImage gaussian_blur(const GrayImage& img, double sigma) {
  if (sigma <= 0.0 || img.empty()) return img;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<double> kernel(2 * radius + 1);
  double total = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    kernel[i + radius] = std::exp(-0.5 * (i * i) / (sigma * sigma));
    total += kernel[i + radius];
  }
  for (double& k : kernel) k /= total;

  GrayImage horizontal(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      double sum = 0.0;
      for (int i = -radius; i <= radius; ++i) {
        const int sx = std::clamp(x + i, 0, img.width() - 1);
        sum += kernel[i + radius] * img.at(sx, y);
      }
      horizontal.set(x, y,
                     static_cast<std::uint8_t>(std::clamp(sum, 0.0, 255.0)));
    }
  }
  GrayImage out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      double sum = 0.0;
      for (int i = -radius; i <= radius; ++i) {
        const int sy = std::clamp(y + i, 0, img.height() - 1);
        sum += kernel[i + radius] * horizontal.at(x, sy);
      }
      out.set(x, y, static_cast<std::uint8_t>(std::clamp(sum, 0.0, 255.0)));
    }
  }
  return out;
}

std::uint8_t otsu_threshold(const GrayImage& img) {
  std::array<std::uint64_t, 256> histogram{};
  for (std::uint8_t p : img.pixels()) ++histogram[p];
  const double total = static_cast<double>(img.pixels().size());
  if (total == 0.0) return 127;

  double sum_all = 0.0;
  for (int i = 0; i < 256; ++i) sum_all += i * static_cast<double>(histogram[i]);

  double sum_bg = 0.0;
  double weight_bg = 0.0;
  double best_variance = -1.0;
  std::uint8_t best_threshold = 127;
  for (int t = 0; t < 256; ++t) {
    weight_bg += static_cast<double>(histogram[t]);
    if (weight_bg == 0.0) continue;
    const double weight_fg = total - weight_bg;
    if (weight_fg == 0.0) break;
    sum_bg += t * static_cast<double>(histogram[t]);
    const double mean_bg = sum_bg / weight_bg;
    const double mean_fg = (sum_all - sum_bg) / weight_fg;
    const double variance =
        weight_bg * weight_fg * (mean_bg - mean_fg) * (mean_bg - mean_fg);
    if (variance > best_variance) {
      best_variance = variance;
      best_threshold = static_cast<std::uint8_t>(t);
    }
  }
  return best_threshold;
}

GrayImage binarize(const GrayImage& img, std::uint8_t threshold) {
  GrayImage out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out.set(x, y, img.at(x, y) > threshold ? 255 : 0);
    }
  }
  return out;
}

namespace {

GrayImage morphology3x3(const GrayImage& img, bool dilate) {
  GrayImage out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      bool hit = !dilate;
      for (int dy = -1; dy <= 1 && (dilate ? !hit : hit); ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const bool fg = img.at_clamped(x + dx, y + dy) == 255;
          if (dilate && fg) {
            hit = true;
            break;
          }
          if (!dilate && !fg) {
            hit = false;
            break;
          }
        }
      }
      out.set(x, y, hit ? 255 : 0);
    }
  }
  return out;
}

}  // namespace

GrayImage dilate3x3(const GrayImage& img) { return morphology3x3(img, true); }
GrayImage erode3x3(const GrayImage& img) { return morphology3x3(img, false); }

GrayImage invert(const GrayImage& img) {
  GrayImage out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out.set(x, y, static_cast<std::uint8_t>(255 - img.at(x, y)));
    }
  }
  return out;
}

double foreground_ratio(const GrayImage& img) noexcept {
  if (img.pixels().empty()) return 0.0;
  std::size_t count = 0;
  for (std::uint8_t p : img.pixels()) {
    if (p == 255) ++count;
  }
  return static_cast<double>(count) /
         static_cast<double>(img.pixels().size());
}

std::vector<Component> connected_components(const GrayImage& img,
                                            int min_area) {
  std::vector<Component> components;
  if (img.empty()) return components;
  std::vector<int> labels(
      static_cast<std::size_t>(img.width()) * img.height(), -1);
  auto index = [&](int x, int y) {
    return static_cast<std::size_t>(y) * img.width() + x;
  };

  std::vector<std::pair<int, int>> stack;
  int next_label = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (img.at(x, y) != 255 || labels[index(x, y)] != -1) continue;
      // Flood fill (8-connected).
      Component comp;
      comp.bounds = Rect{x, y, 1, 1};
      int min_x = x, max_x = x, min_y = y, max_y = y;
      stack.clear();
      stack.emplace_back(x, y);
      labels[index(x, y)] = next_label;
      while (!stack.empty()) {
        const auto [cx, cy] = stack.back();
        stack.pop_back();
        ++comp.area;
        min_x = std::min(min_x, cx);
        max_x = std::max(max_x, cx);
        min_y = std::min(min_y, cy);
        max_y = std::max(max_y, cy);
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int nx = cx + dx;
            const int ny = cy + dy;
            if (nx < 0 || ny < 0 || nx >= img.width() || ny >= img.height()) {
              continue;
            }
            if (img.at(nx, ny) == 255 && labels[index(nx, ny)] == -1) {
              labels[index(nx, ny)] = next_label;
              stack.emplace_back(nx, ny);
            }
          }
        }
      }
      comp.bounds = Rect{min_x, min_y, max_x - min_x + 1, max_y - min_y + 1};
      if (comp.area >= min_area) components.push_back(comp);
      ++next_label;
    }
  }
  std::sort(components.begin(), components.end(),
            [](const Component& a, const Component& b) {
              return a.bounds.x < b.bounds.x;
            });
  return components;
}

std::vector<double> normalize_glyph(const GrayImage& img, const Rect& bounds,
                                    int size) {
  std::vector<double> grid(static_cast<std::size_t>(size) * size, 0.0);
  const Rect clipped = bounds.intersect(Rect{0, 0, img.width(), img.height()});
  if (clipped.empty()) return grid;
  for (int gy = 0; gy < size; ++gy) {
    for (int gx = 0; gx < size; ++gx) {
      // Map the grid cell to a pixel block in the bounding box.
      const int x0 = clipped.x + gx * clipped.w / size;
      const int x1 = std::max(x0 + 1, clipped.x + (gx + 1) * clipped.w / size);
      const int y0 = clipped.y + gy * clipped.h / size;
      const int y1 = std::max(y0 + 1, clipped.y + (gy + 1) * clipped.h / size);
      double ink = 0.0;
      int count = 0;
      for (int y = y0; y < y1 && y < clipped.y + clipped.h; ++y) {
        for (int x = x0; x < x1 && x < clipped.x + clipped.w; ++x) {
          ink += img.at(x, y) == 255 ? 1.0 : 0.0;
          ++count;
        }
      }
      grid[static_cast<std::size_t>(gy) * size + gx] =
          count > 0 ? ink / count : 0.0;
    }
  }
  return grid;
}

}  // namespace tero::image
