#pragma once

#include <array>
#include <optional>
#include <string>

namespace tero::image {

/// The 5x7 bitmap font used both to *render* synthetic game UIs and to build
/// the OCR engines' reference prototypes. Rows are 5-character strings of
/// '#' (ink) and '.' (background).
struct Glyph {
  char character = ' ';
  std::array<std::string, 7> rows;
};

inline constexpr int kGlyphWidth = 5;
inline constexpr int kGlyphHeight = 7;

/// Glyph lookup, or nullopt for characters outside the font. The font covers
/// digits, the lowercase letters games put around latency ("ms", "ping",
/// "latency"), ':' (clocks), and the uppercase letters OCR classically
/// confuses with digits: B~8, S~5/8, O~0, A~4 (§3.2).
[[nodiscard]] std::optional<Glyph> find_glyph(char character);

/// Every character the font defines, digits first.
[[nodiscard]] const std::string& font_alphabet();

}  // namespace tero::image
