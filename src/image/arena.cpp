#include "image/arena.hpp"

namespace tero::image {

std::uint8_t* Arena::allocate(std::size_t bytes) {
  const std::size_t aligned = (bytes + kAlignment - 1) & ~(kAlignment - 1);
  // Advance through retained blocks before growing the chain.
  while (active_ < blocks_.size()) {
    Block& block = blocks_[active_];
    if (block.used + aligned <= block.capacity) {
      std::uint8_t* out = block.data.get() + block.used;
      block.used += aligned;
      const std::size_t total = used();
      if (total > high_water_) high_water_ = total;
      return out;
    }
    if (active_ + 1 == blocks_.size()) break;
    ++active_;
  }
  const std::size_t capacity = aligned > block_bytes_ ? aligned : block_bytes_;
  Block block;
  // operator new guarantees alignment only up to max_align_t; over-allocate
  // and round the base up to kAlignment so SIMD loads see aligned rows.
  block.data = std::make_unique<std::uint8_t[]>(capacity + kAlignment);
  block.capacity = capacity;
  block.used = 0;
  blocks_.push_back(std::move(block));
  active_ = blocks_.size() - 1;
  Block& fresh = blocks_.back();
  const auto address = reinterpret_cast<std::uintptr_t>(fresh.data.get());
  fresh.base =
      (kAlignment - (address & (kAlignment - 1))) & (kAlignment - 1);
  fresh.used = fresh.base;  // permanently skip the unaligned prefix
  std::uint8_t* out = fresh.data.get() + fresh.used;
  fresh.used += aligned;
  const std::size_t total = used();
  if (total > high_water_) high_water_ = total;
  return out;
}

std::size_t Arena::used() const noexcept {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.used;
  return total;
}

std::size_t Arena::reserved() const noexcept {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.capacity;
  return total;
}

void Arena::rewind(std::size_t block, std::size_t offset) noexcept {
  if (blocks_.empty()) return;
  for (std::size_t i = block + 1; i < blocks_.size(); ++i) {
    blocks_[i].used = blocks_[i].base;
  }
  Block& target = blocks_[block];
  target.used = offset > target.base ? offset : target.base;
  active_ = block;
}

Arena& Arena::thread_local_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace tero::image
