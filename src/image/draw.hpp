#pragma once

#include <string_view>

#include "image/image.hpp"
#include "util/rng.hpp"

namespace tero::image {

/// Text rendering options for the synthetic-thumbnail generator. Games
/// display latency at ~75 dpi (§3.2), which at our 5x7 font corresponds to
/// small integer scales; `noise_stddev` models compression artifacts and
/// `foreground`/`background` model the UI contrast (a too-light font is the
/// paper's top cause of missed measurements, Fig. 6b).
struct TextStyle {
  int scale = 2;                  ///< integer pixel scale of the 5x7 font
  std::uint8_t foreground = 255;  ///< ink intensity
  std::uint8_t background = 16;   ///< panel intensity
  double noise_stddev = 0.0;      ///< additive Gaussian pixel noise
  int letter_spacing = 1;         ///< unscaled columns between glyphs
};

/// Width in pixels that `text` occupies when drawn with `style`.
[[nodiscard]] int text_width(std::string_view text, const TextStyle& style);
[[nodiscard]] int text_height(const TextStyle& style);

/// Draw `text` with its top-left corner at (x, y). Characters without a
/// glyph render as spaces. Returns the x coordinate just past the text.
int draw_text(GrayImage& img, int x, int y, std::string_view text,
              const TextStyle& style);

/// Add iid Gaussian noise to every pixel (clamped to [0, 255]).
void add_noise(GrayImage& img, double stddev, util::Rng& rng);

}  // namespace tero::image
