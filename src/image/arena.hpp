#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tero::image {

/// Bump allocator for the per-thumbnail extraction fast path (DESIGN.md
/// §12). The OCR preprocessing chain builds half a dozen full-size image
/// temporaries per thumbnail; routed through the global allocator inside
/// `parallel_for` those allocations serialize on the heap lock and scatter
/// across the address space. An Arena instead hands out pointers from a
/// chain of large blocks with a single pointer bump, and a `Frame` resets
/// the whole chain in O(blocks) when the thumbnail is done — blocks are
/// retained, so the steady state performs zero heap allocations.
///
/// Not thread-safe by design: use `thread_local_arena()` to get this
/// thread's instance (worker threads each own one for the lifetime of the
/// thread). Memory handed out is valid until the enclosing Frame is
/// destroyed; arena-backed `GrayImage`s must not outlive their Frame.
class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 256 * 1024;
  static constexpr std::size_t kAlignment = 16;  ///< SIMD-load friendly

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < kAlignment ? kAlignment : block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` (16-byte aligned). Never returns nullptr; grows
  /// the block chain when the active block is exhausted.
  [[nodiscard]] std::uint8_t* allocate(std::size_t bytes);

  /// Bytes currently handed out across all blocks.
  [[nodiscard]] std::size_t used() const noexcept;
  /// Bytes reserved from the heap (block capacity), ever.
  [[nodiscard]] std::size_t reserved() const noexcept;
  /// High-water mark of used() over the arena's lifetime.
  [[nodiscard]] std::size_t high_water() const noexcept {
    return high_water_;
  }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }

  /// RAII frame: records the bump position on entry and rewinds to it on
  /// exit, releasing every allocation made inside the frame at once.
  /// Frames nest (destroy in reverse order of construction).
  class Frame {
   public:
    explicit Frame(Arena& arena) noexcept
        : arena_(&arena),
          block_(arena.active_),
          offset_(arena.blocks_.empty() ? 0
                                        : arena.blocks_[arena.active_].used) {}
    ~Frame() { arena_->rewind(block_, offset_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Arena* arena_;
    std::size_t block_;
    std::size_t offset_;
  };

  /// This thread's arena (created on first use, lives for the thread).
  [[nodiscard]] static Arena& thread_local_arena();

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
    std::size_t base = 0;  ///< aligned start offset; used never rewinds below
  };

  void rewind(std::size_t block, std::size_t offset) noexcept;

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace tero::image
