#pragma once

#include <compare>
#include <string>

namespace tero::geo {

/// A point on the globe, in degrees.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance between two points, in kilometres (haversine on a
/// spherical Earth, R = 6371.0088 km — sufficient for the ~10 km accuracy the
/// paper's "corrected distance" needs).
[[nodiscard]] double haversine_km(LatLon a, LatLon b) noexcept;

/// Geolocation granularity Tero works at (§3.1): never finer than a city.
enum class Granularity { kCountry, kRegion, kCity };

/// A {city, region, country} tuple as output by the location module. Empty
/// fields mean "unknown at this granularity"; `country` is always set for a
/// valid location.
struct Location {
  std::string city;
  std::string region;
  std::string country;

  [[nodiscard]] bool valid() const noexcept { return !country.empty(); }
  [[nodiscard]] Granularity granularity() const noexcept;

  /// True if this location and `other` agree on every field they both set,
  /// e.g. {"", "California", "US"} is compatible with
  /// {"Los Angeles", "California", "US"}.
  [[nodiscard]] bool compatible_with(const Location& other) const noexcept;

  /// True if this location sets every field `other` sets with equal values
  /// and at least one more (it is strictly more specific).
  [[nodiscard]] bool subsumes(const Location& other) const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Location&, const Location&) = default;
  friend std::strong_ordering operator<=>(const Location&,
                                          const Location&) = default;
};

/// The paper's "corrected distance" (§3.3.3, [44]): geodesic distance between
/// the geometric centres of streamer location and server location, plus the
/// average distance of any point in the streamer's location from that
/// location's geometric centre (so a streamer and server in the same city
/// still get a non-zero distance).
[[nodiscard]] double corrected_distance_km(LatLon streamer_center,
                                           double streamer_mean_radius_km,
                                           LatLon server_center) noexcept;

}  // namespace tero::geo
