#include "geo/servers.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/strings.hpp"

namespace tero::geo {
namespace {

GameServer server(std::string city, std::string country,
                  std::vector<std::string> countries,
                  std::vector<std::string> continents) {
  GameServer s;
  s.city = std::move(city);
  s.country = std::move(country);
  s.countries_served = std::move(countries);
  s.continents_served = std::move(continents);
  return s;
}

// The Middle-East game-region in our world model.
const std::vector<std::string> kMiddleEast = {
    "Turkey", "Saudi Arabia", "United Arab Emirates", "Georgia"};
// Countries routed to the LoL Miami server (northern Latin America).
const std::vector<std::string> kLatamNorth = {
    "Mexico", "Colombia", "Ecuador", "Peru", "El Salvador",
    "Jamaica", "Honduras", "Costa Rica", "Nicaragua"};
// Countries routed to the LoL Santiago server (southern Latin America).
const std::vector<std::string> kLatamSouth = {"Chile", "Argentina", "Bolivia"};

std::vector<GameServer> riot_servers() {
  // Table 6, League of Legends block (shared by Teamfight Tactics).
  return {
      server("Amsterdam", "Netherlands", {}, {"EU", "AF"}),
      server("Chicago", "United States", {"United States", "Canada"}, {}),
      server("Sao Paulo", "Brazil", {"Brazil"}, {}),
      server("Miami", "United States", kLatamNorth, {}),
      server("Santiago", "Chile", kLatamSouth, {}),
      server("Sydney", "Australia", {}, {"OC"}),
      server("Istanbul", "Turkey", kMiddleEast, {}),
      server("Seoul", "South Korea", {"South Korea"}, {}),
      server("Tokyo", "Japan", {"Japan"}, {}),
  };
}

std::vector<GameServer> dota2_servers() {
  return {
      server("Ashburn", "United States", {}, {"NA"}),
      server("Seattle", "United States", {}, {"NA"}),
      server("Vienna", "Austria", {}, {"EU", "AF"}),
      server("Luxembourg City", "Luxembourg", {}, {"EU"}),
      server("Santiago", "Chile", {}, {"SA"}),
      server("Lima", "Peru", {}, {"SA"}),
      server("Dubai", "United Arab Emirates", kMiddleEast, {}),
      server("Sydney", "Australia", {}, {"OC"}),
      server("Tokyo", "Japan", {}, {"AS"}),
  };
}

std::vector<GameServer> hoyo_servers() {
  // Genshin Impact (Table 6): Americas / Europe+Middle East / Asia.
  return {
      server("Ashburn", "United States", {}, {"NA", "SA"}),
      server("Frankfurt", "Germany", kMiddleEast, {"EU", "AF"}),
      server("Tokyo", "Japan", {}, {"AS"}),
  };
}

std::vector<GameServer> lost_ark_servers() {
  return {
      server("Ashburn", "United States", {}, {"NA", "SA"}),
      server("Frankfurt", "Germany", kMiddleEast, {"EU", "AF"}),
      server("Seoul", "South Korea", {}, {"AS"}),
  };
}

std::vector<GameServer> among_us_servers() {
  // Table 6: California/Texas serve Americas and Oceania; Frankfurt serves
  // Europe and Middle East; Tokyo serves Asia.
  return {
      server("Los Angeles", "United States", {}, {"NA", "SA", "OC"}),
      server("Dallas", "United States", {}, {"NA", "SA", "OC"}),
      server("Frankfurt", "Germany", kMiddleEast, {"EU", "AF"}),
      server("Tokyo", "Japan", {}, {"AS"}),
  };
}

std::vector<GameServer> cod_servers() {
  // Table 7 (Call of Duty: Warzone / Modern Warfare).
  std::vector<GameServer> servers_list = {
      server("Salt Lake City", "United States", {}, {"NA"}),
      server("Los Angeles", "United States", {}, {"NA"}),
      server("San Francisco", "United States", {}, {"NA"}),
      server("Dallas", "United States", {}, {"NA"}),
      server("St. Louis", "United States", {}, {"NA"}),
      server("Columbus", "United States", {}, {"NA"}),
      server("New York City", "United States", {}, {"NA"}),
      server("Chicago", "United States", {}, {"NA"}),
      server("Washington", "United States", {}, {"NA"}),
      server("Atlanta", "United States", {}, {"NA"}),
      server("London", "United Kingdom", {}, {"EU"}),
      server("Frankfurt", "Germany", {"Turkey"}, {"EU", "AF"}),
      server("Amsterdam", "Netherlands", {}, {"EU"}),
      server("Brussels", "Belgium", {}, {"EU"}),
      server("Paris", "France", {}, {"EU"}),
      server("Madrid", "Spain", {}, {"EU"}),
      server("Stockholm", "Sweden", {}, {"EU"}),
      server("Rome", "Italy", {}, {"EU"}),
      server("Santiago", "Chile", {}, {"SA"}),
      server("Lima", "Peru", {}, {"SA"}),
      server("Sao Paulo", "Brazil", {}, {"SA"}),
      server("Riyadh", "Saudi Arabia",
             {"Saudi Arabia", "United Arab Emirates", "Georgia"}, {}),
      server("Sydney", "Australia", {}, {"OC"}),
      server("Tokyo", "Japan", {}, {"AS"}),
  };
  return servers_list;
}

Game make_game(std::string name, std::vector<GameServer> servers,
               int stable_len_minutes = 30) {
  Game g;
  g.name = std::move(name);
  g.servers = std::move(servers);
  g.stable_len_minutes = stable_len_minutes;
  return g;
}

}  // namespace

GameCatalog::GameCatalog(std::vector<Game> games, const Gazetteer& gazetteer)
    : games_(std::move(games)), gazetteer_(&gazetteer) {
  for (auto& game : games_) {
    for (auto& srv : game.servers) {
      const Place* place = gazetteer_->resolve(
          Location{srv.city, "", srv.country});
      if (place == nullptr) {
        throw std::invalid_argument("GameCatalog: unknown server city " +
                                    srv.city);
      }
      srv.center = place->center;
    }
  }
}

const GameCatalog& GameCatalog::builtin() {
  static const GameCatalog instance{
      {
          make_game("League of Legends", riot_servers(), 30),
          make_game("Teamfight Tactics", riot_servers(), 35),
          make_game("Call of Duty Warzone", cod_servers(), 25),
          make_game("Call of Duty Modern Warfare", cod_servers(), 25),
          make_game("Genshin Impact", hoyo_servers(), 30),
          make_game("Dota 2", dota2_servers(), 40),
          make_game("Among Us", among_us_servers(), 15),
          make_game("Lost Ark", lost_ark_servers(), 30),
          // The one game whose provider discloses no server locations
          // (App. C covers 8 of the 9 games).
          make_game("Apex Legends", {}, 20),
      },
      Gazetteer::world()};
  return instance;
}

const Game* GameCatalog::find(std::string_view name) const {
  for (const auto& game : games_) {
    if (util::iequals(game.name, name)) return &game;
  }
  return nullptr;
}

const GameServer* GameCatalog::primary_server(const Game& game,
                                              const Location& loc) const {
  if (!game.servers_known()) return nullptr;
  const Place* place = gazetteer_->resolve(loc);
  if (place == nullptr) return nullptr;
  const std::string& streamer_country =
      place->kind == PlaceKind::kCountry ? place->name : place->country;

  auto pick_closest = [&](auto&& serves) -> const GameServer* {
    const GameServer* best = nullptr;
    double best_distance = std::numeric_limits<double>::infinity();
    for (const auto& srv : game.servers) {
      if (!serves(srv)) continue;
      const double d = corrected_distance_km(
          place->center, place->mean_radius_km, srv.center);
      if (d < best_distance) {
        best_distance = d;
        best = &srv;
      }
    }
    return best;
  };

  // Explicit country assignment wins over continent fallback.
  if (const GameServer* by_country = pick_closest([&](const GameServer& s) {
        return std::any_of(s.countries_served.begin(),
                           s.countries_served.end(),
                           [&](const std::string& c) {
                             return util::iequals(c, streamer_country);
                           });
      })) {
    return by_country;
  }
  return pick_closest([&](const GameServer& s) {
    return std::any_of(s.continents_served.begin(), s.continents_served.end(),
                       [&](const std::string& c) {
                         return util::iequals(c, place->continent);
                       });
  });
}

double GameCatalog::distance_to_primary_km(const Game& game,
                                           const Location& loc) const {
  const GameServer* srv = primary_server(game, loc);
  if (srv == nullptr) return -1.0;
  const Place* place = gazetteer_->resolve(loc);
  return corrected_distance_km(place->center, place->mean_radius_km,
                               srv->center);
}

}  // namespace tero::geo
