#include "geo/geo.hpp"

#include <cmath>
#include <numbers>

namespace tero::geo {
namespace {

constexpr double kEarthRadiusKm = 6371.0088;

double deg_to_rad(double deg) noexcept {
  return deg * std::numbers::pi / 180.0;
}

}  // namespace

double haversine_km(LatLon a, LatLon b) noexcept {
  const double phi1 = deg_to_rad(a.lat_deg);
  const double phi2 = deg_to_rad(b.lat_deg);
  const double dphi = deg_to_rad(b.lat_deg - a.lat_deg);
  const double dlambda = deg_to_rad(b.lon_deg - a.lon_deg);
  const double sin_dphi = std::sin(dphi / 2.0);
  const double sin_dlambda = std::sin(dlambda / 2.0);
  const double h = sin_dphi * sin_dphi +
                   std::cos(phi1) * std::cos(phi2) * sin_dlambda * sin_dlambda;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

Granularity Location::granularity() const noexcept {
  if (!city.empty()) return Granularity::kCity;
  if (!region.empty()) return Granularity::kRegion;
  return Granularity::kCountry;
}

bool Location::compatible_with(const Location& other) const noexcept {
  if (!country.empty() && !other.country.empty() && country != other.country) {
    return false;
  }
  if (!region.empty() && !other.region.empty() && region != other.region) {
    return false;
  }
  if (!city.empty() && !other.city.empty() && city != other.city) {
    return false;
  }
  return true;
}

bool Location::subsumes(const Location& other) const noexcept {
  if (!compatible_with(other)) return false;
  auto rank = [](const Location& l) {
    return (l.country.empty() ? 0 : 1) + (l.region.empty() ? 0 : 1) +
           (l.city.empty() ? 0 : 1);
  };
  // Every field other sets must be set here too (compatibility already
  // guarantees equality when both are set).
  if (!other.country.empty() && country.empty()) return false;
  if (!other.region.empty() && region.empty()) return false;
  if (!other.city.empty() && city.empty()) return false;
  return rank(*this) > rank(other);
}

std::string Location::to_string() const {
  std::string out;
  if (!city.empty()) out += city + ", ";
  if (!region.empty()) out += region + ", ";
  out += country.empty() ? "?" : country;
  return out;
}

double corrected_distance_km(LatLon streamer_center,
                             double streamer_mean_radius_km,
                             LatLon server_center) noexcept {
  return haversine_km(streamer_center, server_center) +
         streamer_mean_radius_km;
}

}  // namespace tero::geo
