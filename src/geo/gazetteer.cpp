#include "geo/gazetteer.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace tero::geo {

Location Place::location() const {
  switch (kind) {
    case PlaceKind::kCity:
      return Location{name, region, country};
    case PlaceKind::kRegion:
      return Location{"", name, country};
    case PlaceKind::kCountry:
      return Location{"", "", name};
  }
  return {};
}

Gazetteer::Gazetteer(std::vector<Place> places,
                     std::vector<ContinentShare> shares)
    : places_(std::move(places)), shares_(std::move(shares)) {}

const Gazetteer& Gazetteer::world() {
  static const Gazetteer instance{builtin_places(),
                                  builtin_continent_shares()};
  return instance;
}

std::vector<const Place*> Gazetteer::find_all(std::string_view name) const {
  std::vector<const Place*> matches;
  for (const auto& place : places_) {
    if (util::iequals(place.name, name)) {
      matches.push_back(&place);
      continue;
    }
    for (const auto& alias : place.aliases) {
      if (util::iequals(alias, name)) {
        matches.push_back(&place);
        break;
      }
    }
  }
  return matches;
}

const Place* Gazetteer::find(std::string_view name, PlaceKind kind) const {
  const Place* found = nullptr;
  for (const Place* place : find_all(name)) {
    if (place->kind != kind) continue;
    if (found != nullptr) return nullptr;  // ambiguous within kind
    found = place;
  }
  return found;
}

const Place* Gazetteer::find_any(std::string_view name) const {
  const auto matches = find_all(name);
  for (auto kind :
       {PlaceKind::kCity, PlaceKind::kRegion, PlaceKind::kCountry}) {
    for (const Place* place : matches) {
      if (place->kind == kind) return place;
    }
  }
  return nullptr;
}

const Place* Gazetteer::resolve(const Location& loc) const {
  if (!loc.city.empty()) {
    for (const auto& place : places_) {
      if (place.kind == PlaceKind::kCity &&
          util::iequals(place.name, loc.city) &&
          (loc.country.empty() || util::iequals(place.country, loc.country))) {
        return &place;
      }
    }
  }
  if (!loc.region.empty()) {
    for (const auto& place : places_) {
      if (place.kind == PlaceKind::kRegion &&
          util::iequals(place.name, loc.region) &&
          (loc.country.empty() || util::iequals(place.country, loc.country))) {
        return &place;
      }
    }
  }
  if (!loc.country.empty()) {
    for (const auto& place : places_) {
      if (place.kind == PlaceKind::kCountry &&
          util::iequals(place.name, loc.country)) {
        return &place;
      }
    }
  }
  return nullptr;
}

LatLon Gazetteer::center_of(const Location& loc) const {
  const Place* place = resolve(loc);
  if (place == nullptr) {
    throw std::out_of_range("Gazetteer: unknown location " + loc.to_string());
  }
  return place->center;
}

double Gazetteer::mean_radius_of(const Location& loc) const {
  const Place* place = resolve(loc);
  if (place == nullptr) {
    throw std::out_of_range("Gazetteer: unknown location " + loc.to_string());
  }
  return place->mean_radius_km;
}

std::vector<const Place*> Gazetteer::all_of(PlaceKind kind) const {
  std::vector<const Place*> out;
  for (const auto& place : places_) {
    if (place.kind == kind) out.push_back(&place);
  }
  return out;
}

std::vector<const Place*> Gazetteer::regions_of(
    std::string_view country) const {
  std::vector<const Place*> out;
  for (const auto& place : places_) {
    if (place.kind == PlaceKind::kRegion &&
        util::iequals(place.country, country)) {
      out.push_back(&place);
    }
  }
  return out;
}

std::vector<const Place*> Gazetteer::cities_of(std::string_view region,
                                               std::string_view country) const {
  std::vector<const Place*> out;
  for (const auto& place : places_) {
    if (place.kind != PlaceKind::kCity) continue;
    if (!country.empty() && !util::iequals(place.country, country)) continue;
    if (!region.empty() && !util::iequals(place.region, region)) continue;
    out.push_back(&place);
  }
  return out;
}

}  // namespace tero::geo
