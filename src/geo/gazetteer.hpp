#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/geo.hpp"

namespace tero::geo {

enum class PlaceKind { kCity, kRegion, kCountry };

/// One gazetteer entry. Regions are the largest sub-division of a country
/// (a US state, a Swiss canton, a French province — §3.3.2); cities belong to
/// a region (possibly empty for small countries) and a country.
struct Place {
  std::string name;
  PlaceKind kind = PlaceKind::kCountry;
  std::string region;     ///< parent region (cities only; may be empty)
  std::string country;    ///< parent country (cities and regions)
  std::string continent;  ///< "NA", "SA", "EU", "AS", "OC", "AF"
  LatLon center;
  double mean_radius_km = 0.0;  ///< avg distance of a point from the centre
  double weight = 0.0;          ///< relative streamer-population weight
  std::vector<std::string> aliases;

  [[nodiscard]] Location location() const;
};

/// Static share-of-world data used by Fig. 7 (internet users & population by
/// continent, from the paper's source [5]).
struct ContinentShare {
  std::string continent;
  double internet_users = 0.0;  ///< fraction of world Internet users
  double population = 0.0;      ///< fraction of world population
};

/// A synthetic-but-realistic world database: ~45 countries, the regions and
/// cities the paper's figures reference, real-ish coordinates so geodesic
/// distances (and hence latency baselines) are plausible. Name lookup is
/// case-insensitive and alias-aware; names may be ambiguous (e.g. "Georgia"
/// is both a US state and a country) — exactly the ambiguity that makes
/// geoparsing hard (§3.1).
class Gazetteer {
 public:
  /// The process-wide world database (immutable after construction).
  static const Gazetteer& world();

  [[nodiscard]] std::span<const Place> places() const noexcept {
    return places_;
  }
  [[nodiscard]] std::span<const ContinentShare> continent_shares()
      const noexcept {
    return shares_;
  }

  /// All entries whose name or alias equals `name` (case-insensitive).
  [[nodiscard]] std::vector<const Place*> find_all(std::string_view name) const;

  /// The unique match of the given kind, or nullptr if none/ambiguous.
  [[nodiscard]] const Place* find(std::string_view name, PlaceKind kind) const;

  /// First match of any kind preferring city > region > country, or nullptr.
  [[nodiscard]] const Place* find_any(std::string_view name) const;

  /// Most specific place matching a location tuple, or nullptr.
  [[nodiscard]] const Place* resolve(const Location& loc) const;

  /// Geometric centre / mean radius of a location tuple (falls back through
  /// city -> region -> country). Throws std::out_of_range if unknown.
  [[nodiscard]] LatLon center_of(const Location& loc) const;
  [[nodiscard]] double mean_radius_of(const Location& loc) const;

  /// All places of one kind.
  [[nodiscard]] std::vector<const Place*> all_of(PlaceKind kind) const;

  /// Regions belonging to a country / cities belonging to a region.
  [[nodiscard]] std::vector<const Place*> regions_of(
      std::string_view country) const;
  [[nodiscard]] std::vector<const Place*> cities_of(
      std::string_view region, std::string_view country) const;

  explicit Gazetteer(std::vector<Place> places,
                     std::vector<ContinentShare> shares);

 private:
  std::vector<Place> places_;
  std::vector<ContinentShare> shares_;
};

/// The raw data backing Gazetteer::world() (defined in gazetteer_data.cpp).
[[nodiscard]] std::vector<Place> builtin_places();
[[nodiscard]] std::vector<ContinentShare> builtin_continent_shares();

}  // namespace tero::geo
