#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/gazetteer.hpp"
#include "geo/geo.hpp"

namespace tero::geo {

/// One game server deployment site (Tables 6-7 of the paper). A server
/// serves explicit countries (highest priority) and/or whole continents.
struct GameServer {
  std::string city;          ///< gazetteer city name
  std::string country;       ///< disambiguates the city
  LatLon center;             ///< resolved from the gazetteer
  std::vector<std::string> countries_served;   ///< explicit assignments
  std::vector<std::string> continents_served;  ///< fallback assignments
};

/// A game processed by Tero (App. C). `servers` may be empty when the
/// provider discloses no server locations (1 of the 9 games in the paper).
struct Game {
  std::string name;
  std::vector<GameServer> servers;
  /// Minimum time a player must play on one server before switching
  /// (StableLen is game-dependent; §3.3.1 / App. I settles on ~30 min).
  int stable_len_minutes = 30;
  /// Typical on-screen latency display resolution (dots per inch); the paper
  /// reports a 75 dpi average, which is what breaks out-of-the-box OCR.
  double display_dpi = 75.0;

  [[nodiscard]] bool servers_known() const noexcept {
    return !servers.empty();
  }
};

/// The nine-game catalog with the paper's server tables, plus the
/// primary-server rule from §3.3.3: explicit country assignment wins;
/// otherwise any server serving the streamer's continent; ties broken by
/// smallest corrected distance.
class GameCatalog {
 public:
  /// The built-in catalog resolved against Gazetteer::world().
  static const GameCatalog& builtin();

  [[nodiscard]] std::span<const Game> games() const noexcept { return games_; }
  [[nodiscard]] const Game* find(std::string_view name) const;

  /// The primary server for streamers at `loc` playing `game`, or nullptr if
  /// the game's servers are unknown or none serves that area.
  [[nodiscard]] const GameServer* primary_server(const Game& game,
                                                 const Location& loc) const;

  /// Corrected distance (km) between `loc` and its primary server for
  /// `game`; negative if no server applies.
  [[nodiscard]] double distance_to_primary_km(const Game& game,
                                              const Location& loc) const;

  explicit GameCatalog(std::vector<Game> games, const Gazetteer& gazetteer);

 private:
  std::vector<Game> games_;
  const Gazetteer* gazetteer_;
};

}  // namespace tero::geo
