// The built-in world database. Coordinates are approximate real-world values
// so geodesic distances (and the latency baselines derived from them) are
// plausible; weights encode the continent skew of Twitch streamers (Fig. 7).
#include "geo/gazetteer.hpp"

namespace tero::geo {
namespace {

Place country(std::string name, std::string continent, double lat, double lon,
              double radius_km, double weight,
              std::vector<std::string> aliases = {}) {
  Place p;
  p.name = std::move(name);
  p.kind = PlaceKind::kCountry;
  p.continent = std::move(continent);
  p.center = {lat, lon};
  p.mean_radius_km = radius_km;
  p.weight = weight;
  p.aliases = std::move(aliases);
  return p;
}

Place region(std::string name, std::string country_name,
             std::string continent, double lat, double lon, double radius_km,
             double weight, std::vector<std::string> aliases = {}) {
  Place p;
  p.name = std::move(name);
  p.kind = PlaceKind::kRegion;
  p.country = std::move(country_name);
  p.continent = std::move(continent);
  p.center = {lat, lon};
  p.mean_radius_km = radius_km;
  p.weight = weight;
  p.aliases = std::move(aliases);
  return p;
}

Place city(std::string name, std::string region_name,
           std::string country_name, std::string continent, double lat,
           double lon, double weight,
           std::vector<std::string> aliases = {}) {
  Place p;
  p.name = std::move(name);
  p.kind = PlaceKind::kCity;
  p.region = std::move(region_name);
  p.country = std::move(country_name);
  p.continent = std::move(continent);
  p.center = {lat, lon};
  p.mean_radius_km = 15.0;
  p.weight = weight;
  p.aliases = std::move(aliases);
  return p;
}

}  // namespace

std::vector<Place> builtin_places() {
  std::vector<Place> places;

  // ---- Countries -----------------------------------------------------------
  places.push_back(country("United States", "NA", 39.8, -98.6, 1600, 28,
                           {"USA", "US", "America",
                            "United States of America"}));
  places.push_back(country("Canada", "NA", 56.1, -106.3, 1500, 6));
  places.push_back(country("Mexico", "NA", 23.6, -102.5, 800, 5));
  places.push_back(country("El Salvador", "NA", 13.8, -88.9, 80, 0.4));
  places.push_back(country("Jamaica", "NA", 18.1, -77.3, 70, 0.3));
  places.push_back(country("Honduras", "NA", 14.8, -86.6, 150, 0.3));
  places.push_back(country("Costa Rica", "NA", 9.7, -84.2, 100, 0.4));
  places.push_back(country("Nicaragua", "NA", 12.9, -85.2, 150, 0.2));

  places.push_back(country("Brazil", "SA", -14.2, -51.9, 1300, 8));
  places.push_back(country("Argentina", "SA", -38.4, -63.6, 1100, 4));
  places.push_back(country("Chile", "SA", -35.7, -71.5, 900, 3));
  places.push_back(country("Bolivia", "SA", -16.3, -63.6, 500, 0.5));
  places.push_back(country("Colombia", "SA", 4.6, -74.1, 500, 2.5));
  places.push_back(country("Ecuador", "SA", -1.8, -78.2, 250, 0.8));
  places.push_back(country("Peru", "SA", -9.2, -75.0, 500, 1.5));

  places.push_back(country("Netherlands", "EU", 52.1, 5.3, 120, 2,
                           {"Holland", "The Netherlands"}));
  places.push_back(country("Germany", "EU", 51.2, 10.4, 300, 4.5));
  places.push_back(country("France", "EU", 46.6, 2.2, 350, 4));
  places.push_back(country("United Kingdom", "EU", 54.0, -2.5, 300, 4,
                           {"UK", "Britain", "England", "Great Britain"}));
  places.push_back(country("Spain", "EU", 40.4, -3.7, 350, 3));
  places.push_back(country("Italy", "EU", 42.8, 12.8, 350, 3));
  places.push_back(country("Poland", "EU", 52.0, 19.4, 250, 2));
  places.push_back(country("Switzerland", "EU", 46.8, 8.2, 100, 1));
  places.push_back(country("Austria", "EU", 47.6, 14.1, 150, 0.8));
  places.push_back(country("Denmark", "EU", 56.0, 10.0, 120, 0.7));
  places.push_back(country("Belgium", "EU", 50.6, 4.7, 90, 0.8));
  places.push_back(country("Greece", "EU", 39.1, 22.9, 250, 0.7));
  places.push_back(country("Sweden", "EU", 62.2, 17.6, 400, 1));
  places.push_back(country("Portugal", "EU", 39.6, -8.0, 200, 0.8));
  places.push_back(country("Luxembourg", "EU", 49.8, 6.1, 30, 0.1));

  places.push_back(
      country("South Korea", "AS", 36.5, 127.8, 200, 2.5, {"Korea"}));
  places.push_back(country("Japan", "AS", 36.2, 138.3, 500, 2.5));
  places.push_back(country("Turkey", "AS", 39.0, 35.2, 500, 1.5));
  places.push_back(country("Saudi Arabia", "AS", 24.2, 45.1, 700, 0.8));
  places.push_back(country("United Arab Emirates", "AS", 24.0, 54.0, 200, 0.3,
                           {"UAE"}));
  // Deliberately ambiguous with the US state of the same name (§3.1).
  places.push_back(country("Georgia", "AS", 42.3, 43.4, 200, 0.1));

  // The rest of Asia: populous, but Twitch's market share there is tiny —
  // China bans Twitch outright and India streams on YouTube (§5.1) — so
  // streamer weights are near zero while these places still exist for
  // geoparsing and coverage accounting.
  places.push_back(country("India", "AS", 20.6, 79.0, 1200, 0.15));
  places.push_back(country("China", "AS", 35.9, 104.2, 1800, 0.0));
  places.push_back(country("Taiwan", "AS", 23.7, 121.0, 150, 0.5));
  places.push_back(country("Philippines", "AS", 12.9, 121.8, 500, 0.4));
  places.push_back(country("Thailand", "AS", 15.9, 100.9, 450, 0.35));
  places.push_back(country("Vietnam", "AS", 14.1, 108.3, 500, 0.25));
  places.push_back(country("Indonesia", "AS", -0.8, 113.9, 1100, 0.3));
  places.push_back(country("Malaysia", "AS", 4.2, 102.0, 400, 0.25));
  places.push_back(country("Singapore", "AS", 1.35, 103.82, 25, 0.3));

  places.push_back(country("Australia", "OC", -25.3, 133.8, 1500, 1.5));
  places.push_back(country("New Zealand", "OC", -41.8, 172.8, 400, 0.4));

  places.push_back(country("South Africa", "AF", -30.6, 22.9, 700, 0.4));
  places.push_back(country("Egypt", "AF", 26.8, 30.8, 500, 0.2));
  places.push_back(country("Nigeria", "AF", 9.1, 8.7, 500, 0.1));
  places.push_back(country("Morocco", "AF", 31.8, -7.1, 350, 0.1));
  places.push_back(country("Kenya", "AF", 0.0, 37.9, 350, 0.05));

  places.push_back(country("Norway", "EU", 64.6, 12.7, 450, 0.6));
  places.push_back(country("Finland", "EU", 64.0, 26.0, 400, 0.6));
  places.push_back(country("Ireland", "EU", 53.2, -8.2, 130, 0.4));
  places.push_back(country("Czechia", "EU", 49.8, 15.5, 150, 0.6,
                           {"Czech Republic"}));
  places.push_back(country("Romania", "EU", 45.9, 24.9, 250, 0.7));
  places.push_back(country("Hungary", "EU", 47.2, 19.5, 140, 0.5));

  // ---- Regions -------------------------------------------------------------
  const std::string us = "United States";
  places.push_back(region("California", us, "NA", 36.8, -119.4, 350, 5));
  places.push_back(region("Illinois", us, "NA", 40.0, -89.2, 200, 1.5));
  places.push_back(region("Hawaii", us, "NA", 20.8, -156.3, 150, 0.3));
  places.push_back(region("Texas", us, "NA", 31.5, -99.3, 400, 3));
  places.push_back(region("Georgia", us, "NA", 32.6, -83.4, 180, 1.2));
  places.push_back(region("Kentucky", us, "NA", 37.5, -85.3, 180, 0.5));
  places.push_back(region("Minnesota", us, "NA", 46.3, -94.3, 220, 0.7));
  places.push_back(region("Missouri", us, "NA", 38.4, -92.5, 200, 0.7));
  places.push_back(region("North Carolina", us, "NA", 35.5, -79.4, 200, 1.2));
  places.push_back(region("Pennsylvania", us, "NA", 40.9, -77.8, 180, 1.3));
  places.push_back(region("Tennessee", us, "NA", 35.9, -86.4, 190, 0.8));
  places.push_back(region("Virginia", us, "NA", 37.5, -78.9, 180, 1.0));
  places.push_back(region("Massachusetts", us, "NA", 42.3, -71.8, 90, 0.9));
  places.push_back(region("New Jersey", us, "NA", 40.1, -74.7, 80, 0.9));
  places.push_back(region("Oklahoma", us, "NA", 35.6, -97.5, 220, 0.4));
  places.push_back(region("District of Columbia", us, "NA", 38.9, -77.0, 15,
                          0.3, {"DC"}));
  places.push_back(region("New York", us, "NA", 43.0, -75.5, 200, 2, {"NY"}));
  places.push_back(region("Florida", us, "NA", 28.6, -82.5, 280, 1.5));
  places.push_back(region("Utah", us, "NA", 39.3, -111.7, 220, 0.4));
  places.push_back(region("Washington", us, "NA", 47.4, -120.5, 220, 0.9));
  places.push_back(region("Ohio", us, "NA", 40.3, -82.8, 180, 0.9));
  places.push_back(region("Michigan", us, "NA", 44.3, -85.4, 230, 0.9));

  places.push_back(region("Ontario", "Canada", "NA", 47.0, -84.0, 450, 1.5));
  places.push_back(region("Quebec", "Canada", "NA", 50.0, -72.0, 500, 1.0));
  places.push_back(
      region("British Columbia", "Canada", "NA", 54.0, -125.0, 500, 0.6));

  places.push_back(region("Chiapas", "Mexico", "NA", 16.5, -92.5, 120, 0.3));
  places.push_back(region("Tabasco", "Mexico", "NA", 18.0, -92.6, 90, 0.2));
  places.push_back(region("Veracruz", "Mexico", "NA", 19.2, -96.4, 180, 0.4));
  places.push_back(
      region("Tamaulipas", "Mexico", "NA", 24.3, -98.6, 180, 0.3));
  places.push_back(region("Campeche", "Mexico", "NA", 18.9, -90.4, 120, 0.15));
  places.push_back(
      region("Quintana Roo", "Mexico", "NA", 19.6, -88.0, 120, 0.2));
  places.push_back(region("Yucatan", "Mexico", "NA", 20.7, -89.0, 110, 0.25));

  places.push_back(
      region("Magdalena", "Colombia", "SA", 10.4, -74.4, 90, 0.15));
  places.push_back(
      region("Atlantico", "Colombia", "SA", 10.7, -75.0, 40, 0.2));
  places.push_back(region("Bolivar", "Colombia", "SA", 8.6, -74.0, 150, 0.2));

  places.push_back(region("Francisco Morazan", "Honduras", "NA", 14.2, -87.2,
                          50, 0.15));

  places.push_back(
      region("Ile-de-France", "France", "EU", 48.7, 2.5, 50, 1.2));
  places.push_back(region("Catalunya", "Spain", "EU", 41.8, 1.6, 90, 0.9,
                          {"Catalonia"}));
  places.push_back(
      region("Buenos Aires", "Argentina", "SA", -36.0, -60.0, 300, 1.5));
  places.push_back(
      region("Sao Paulo", "Brazil", "SA", -22.0, -48.5, 250, 2.5));
  places.push_back(
      region("Geneva", "Switzerland", "EU", 46.2, 6.1, 15, 0.2));

  // ---- Cities --------------------------------------------------------------
  places.push_back(city("Amsterdam", "", "Netherlands", "EU", 52.37, 4.90, 1));
  places.push_back(
      city("Chicago", "Illinois", us, "NA", 41.88, -87.63, 1));
  places.push_back(
      city("Sao Paulo", "Sao Paulo", "Brazil", "SA", -23.55, -46.63, 1.5));
  places.push_back(city("Miami", "Florida", us, "NA", 25.76, -80.19, 0.8));
  places.push_back(city("Santiago", "", "Chile", "SA", -33.45, -70.67, 1.2));
  places.push_back(city("Sydney", "", "Australia", "OC", -33.87, 151.21, 0.8));
  places.push_back(city("Istanbul", "", "Turkey", "AS", 41.01, 28.98, 0.9));
  places.push_back(city("Seoul", "", "South Korea", "AS", 37.57, 126.98, 1.3));
  places.push_back(city("Tokyo", "", "Japan", "AS", 35.68, 139.69, 1.3));
  places.push_back(city("Ashburn", "Virginia", us, "NA", 39.04, -77.49, 0.2));
  places.push_back(
      city("Seattle", "Washington", us, "NA", 47.61, -122.33, 0.7));
  places.push_back(city("Vienna", "", "Austria", "EU", 48.21, 16.37, 0.5));
  places.push_back(
      city("Luxembourg City", "", "Luxembourg", "EU", 49.61, 6.13, 0.1));
  places.push_back(city("Lima", "", "Peru", "SA", -12.05, -77.04, 0.9));
  places.push_back(
      city("Dubai", "", "United Arab Emirates", "AS", 25.20, 55.27, 0.2));
  places.push_back(city("Frankfurt", "", "Germany", "EU", 50.11, 8.68, 0.7));
  places.push_back(
      city("Los Angeles", "California", us, "NA", 34.05, -118.24, 1.5));
  places.push_back(city("Dallas", "Texas", us, "NA", 32.78, -96.80, 0.9));
  places.push_back(
      city("Salt Lake City", "Utah", us, "NA", 40.76, -111.89, 0.3));
  places.push_back(
      city("San Francisco", "California", us, "NA", 37.77, -122.42, 0.9));
  places.push_back(city("St. Louis", "Missouri", us, "NA", 38.63, -90.20, 0.4,
                        {"Saint Louis"}));
  places.push_back(city("Columbus", "Ohio", us, "NA", 39.96, -83.00, 0.4));
  places.push_back(city("New York City", "New York", us, "NA", 40.71, -74.01,
                        1.8, {"New York"}));
  places.push_back(city("Washington", "District of Columbia", us, "NA", 38.91,
                        -77.04, 0.5, {"Washington DC", "Washington D.C."}));
  places.push_back(city("Atlanta", "Georgia", us, "NA", 33.75, -84.39, 0.8));
  places.push_back(
      city("London", "", "United Kingdom", "EU", 51.51, -0.13, 1.8));
  places.push_back(city("Brussels", "", "Belgium", "EU", 50.85, 4.35, 0.5));
  places.push_back(
      city("Paris", "Ile-de-France", "France", "EU", 48.86, 2.35, 1.6));
  places.push_back(city("Madrid", "", "Spain", "EU", 40.42, -3.70, 1.2));
  places.push_back(city("Stockholm", "", "Sweden", "EU", 59.33, 18.07, 0.6));
  places.push_back(city("Rome", "", "Italy", "EU", 41.90, 12.50, 1.0));
  places.push_back(
      city("Riyadh", "", "Saudi Arabia", "AS", 24.71, 46.68, 0.4));
  places.push_back(city("Detroit", "Michigan", us, "NA", 42.33, -83.05, 0.5));
  places.push_back(city("Athens", "", "Greece", "EU", 37.98, 23.73, 0.5));
  places.push_back(
      city("Barcelona", "Catalunya", "Spain", "EU", 41.39, 2.17, 1.0));
  places.push_back(
      city("Toronto", "Ontario", "Canada", "NA", 43.65, -79.38, 1.0));
  places.push_back(city("Honolulu", "Hawaii", us, "NA", 21.31, -157.86, 0.2));
  places.push_back(
      city("Geneva", "Geneva", "Switzerland", "EU", 46.20, 6.14, 0.3));
  places.push_back(city("Zurich", "", "Switzerland", "EU", 47.37, 8.54, 0.4));
  places.push_back(
      city("Montreal", "Quebec", "Canada", "NA", 45.50, -73.57, 0.8));
  places.push_back(city("La Paz", "", "Bolivia", "SA", -16.49, -68.12, 0.3));
  places.push_back(city("Bogota", "", "Colombia", "SA", 4.71, -74.07, 1.0));
  places.push_back(city("Quito", "", "Ecuador", "SA", -0.18, -78.47, 0.5));
  places.push_back(
      city("San Salvador", "", "El Salvador", "NA", 13.69, -89.22, 0.3));
  places.push_back(city("Kingston", "", "Jamaica", "NA", 17.97, -76.79, 0.2));
  places.push_back(city("Tegucigalpa", "Francisco Morazan", "Honduras", "NA",
                        14.07, -87.19, 0.2));
  places.push_back(
      city("San Jose", "", "Costa Rica", "NA", 9.93, -84.08, 0.3));
  places.push_back(city("Managua", "", "Nicaragua", "NA", 12.11, -86.24, 0.2));
  places.push_back(city("Buenos Aires", "Buenos Aires", "Argentina", "SA",
                        -34.60, -58.38, 1.4));
  places.push_back(city("Taipei", "", "Taiwan", "AS", 25.03, 121.57, 0.4));
  places.push_back(city("Manila", "", "Philippines", "AS", 14.60, 120.98,
                        0.3));
  places.push_back(city("Bangkok", "", "Thailand", "AS", 13.76, 100.50, 0.3));
  places.push_back(city("Mumbai", "", "India", "AS", 19.08, 72.88, 0.1));
  places.push_back(city("Oslo", "", "Norway", "EU", 59.91, 10.75, 0.4));
  places.push_back(city("Helsinki", "", "Finland", "EU", 60.17, 24.94, 0.4));
  places.push_back(city("Dublin", "", "Ireland", "EU", 53.35, -6.26, 0.35));
  places.push_back(city("Prague", "", "Czechia", "EU", 50.08, 14.44, 0.4));
  places.push_back(city("Bucharest", "", "Romania", "EU", 44.43, 26.10, 0.4));
  places.push_back(city("Budapest", "", "Hungary", "EU", 47.50, 19.04, 0.35));
  places.push_back(
      city("Lisbon", "", "Portugal", "EU", 38.72, -9.14, 0.45));
  places.push_back(
      city("Auckland", "", "New Zealand", "OC", -36.85, 174.76, 0.25));
  places.push_back(city("Melbourne", "", "Australia", "OC", -37.81, 144.96,
                        0.6));
  places.push_back(
      city("Cape Town", "", "South Africa", "AF", -33.92, 18.42, 0.15));
  places.push_back(city("Cairo", "", "Egypt", "AF", 30.04, 31.24, 0.1));

  return places;
}

std::vector<ContinentShare> builtin_continent_shares() {
  // Fractions of world Internet users and population by continent,
  // approximating the paper's source [5] (internetlivestats).
  return {
      {"AS", 0.538, 0.595}, {"AF", 0.115, 0.172}, {"EU", 0.148, 0.096},
      {"NA", 0.080, 0.047}, {"SA", 0.100, 0.055}, {"OC", 0.007, 0.005},
  };
}

}  // namespace tero::geo
