// Google-benchmark microbenchmarks for the hot paths: thumbnail OCR,
// stream cleaning, clustering, the shared-anomaly test, PELT, Wasserstein,
// and Probit fitting. These back the throughput claims in DESIGN.md (the
// noise channel exists because full OCR costs ~ms per thumbnail).
//
// Besides the console report, the run writes BENCH_perf_micro.json
// (benchmark name -> {median_ms, threads, throughput}) so CI can diff
// performance across commits; see main() at the bottom.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "analysis/anomalies.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "analysis/clusters.hpp"
#include "anomaly/pelt.hpp"
#include "image/ops.hpp"
#include "ocr/engine.hpp"
#include "ocr/extractor.hpp"
#include "ocr/preprocess.hpp"
#include "stats/distributions.hpp"
#include "stats/probit.hpp"
#include "stats/wasserstein.hpp"
#include "synth/sessions.hpp"
#include "synth/thumbnail.hpp"
#include "synth/world.hpp"
#include "tero/pipeline.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

using namespace tero;

namespace {

/// Cycle counter for the bytes/cycle stage counters; 0 where unavailable
/// (the counter is then omitted from the JSON).
inline std::uint64_t cycles_now() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return 0;
#endif
}

void BM_OcrExtract(benchmark::State& state) {
  const auto& spec = ocr::ui_spec_for("League of Legends");
  const synth::ThumbnailRenderer renderer;
  const ocr::LatencyExtractor extractor;
  util::Rng rng(1);
  const auto thumbnail =
      renderer.render_with(spec, 87, synth::Corruption::kNone, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(thumbnail.image, spec));
  }
}
BENCHMARK(BM_OcrExtract);

// ---------------------------------------------------------------------------
// Per-stage extraction microbenches (DESIGN.md §12). Each has a SIMD (/1)
// and a forced-scalar (/0) variant so the vectorization win is visible per
// kernel, and each reports bytes/cycle (rdtsc) plus an events/s rate that
// main() forwards into BENCH_perf_micro.json for the CI perf gate.
// ---------------------------------------------------------------------------

// A 4x-upscaled latency crop is the shape every stage actually sees.
constexpr int kStageW = 360;
constexpr int kStageH = 80;

image::GrayImage stage_gray() {
  image::GrayImage img(kStageW, kStageH);
  std::mt19937 gen(17);
  std::uniform_int_distribution<int> dist(0, 255);
  for (int y = 0; y < img.height(); ++y) {
    std::uint8_t* row = img.row(y);
    for (int x = 0; x < img.width(); ++x) {
      row[x] = static_cast<std::uint8_t>(dist(gen));
    }
  }
  return img;
}

image::GrayImage stage_binary() {
  // Realistic ink density (~15%) so morphology/CC touch real structure.
  image::GrayImage img(kStageW, kStageH);
  std::mt19937 gen(19);
  std::bernoulli_distribution dist(0.15);
  for (int y = 0; y < img.height(); ++y) {
    std::uint8_t* row = img.row(y);
    for (int x = 0; x < img.width(); ++x) {
      row[x] = dist(gen) ? 255 : 0;
    }
  }
  return img;
}

/// Shared skeleton: toggles dispatch from the /0-/1 benchmark argument,
/// accumulates rdtsc around the body, and emits the stage counters.
template <typename Body>
void stage_loop(benchmark::State& state, double bytes_per_iter, Body&& body) {
  util::simd::set_enabled(state.range(0) != 0);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const std::uint64_t t0 = cycles_now();
    body();
    cycles += cycles_now() - t0;
  }
  util::simd::apply_mode(util::simd::Mode::kAuto);
  const double iters = static_cast<double>(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(iters * bytes_per_iter));
  state.counters["events/s"] =
      benchmark::Counter(iters, benchmark::Counter::kIsRate);
  if (cycles > 0) {
    state.counters["bytes/cycle"] = benchmark::Counter(
        iters * bytes_per_iter / static_cast<double>(cycles));
  }
}

void BM_ImgBinarize(benchmark::State& state) {
  const image::GrayImage img = stage_gray();
  stage_loop(state, static_cast<double>(img.size()), [&] {
    benchmark::DoNotOptimize(image::binarize(img, 127));
  });
}
BENCHMARK(BM_ImgBinarize)->Arg(1)->Arg(0);

void BM_ImgInvert(benchmark::State& state) {
  image::GrayImage img = stage_binary();
  stage_loop(state, static_cast<double>(img.size()), [&] {
    image::invert_inplace(img);
    benchmark::DoNotOptimize(img.data());
  });
}
BENCHMARK(BM_ImgInvert)->Arg(1)->Arg(0);

void BM_ImgBlur(benchmark::State& state) {
  const image::GrayImage img = stage_gray();
  stage_loop(state, static_cast<double>(img.size()), [&] {
    benchmark::DoNotOptimize(image::gaussian_blur(img, 1.0));
  });
}
BENCHMARK(BM_ImgBlur)->Arg(1)->Arg(0);

void BM_ImgOtsu(benchmark::State& state) {
  const image::GrayImage img = stage_gray();
  stage_loop(state, static_cast<double>(img.size()), [&] {
    benchmark::DoNotOptimize(image::otsu_threshold(img));
  });
}
BENCHMARK(BM_ImgOtsu)->Arg(1)->Arg(0);

void BM_ImgMorphClose(benchmark::State& state) {
  const image::GrayImage img = stage_binary();
  stage_loop(state, 2.0 * static_cast<double>(img.size()), [&] {
    benchmark::DoNotOptimize(image::erode3x3(image::dilate3x3(img)));
  });
}
BENCHMARK(BM_ImgMorphClose)->Arg(1)->Arg(0);

void BM_ImgForegroundRatio(benchmark::State& state) {
  const image::GrayImage img = stage_binary();
  stage_loop(state, static_cast<double>(img.size()), [&] {
    benchmark::DoNotOptimize(image::foreground_ratio(img));
  });
}
BENCHMARK(BM_ImgForegroundRatio)->Arg(1)->Arg(0);

void BM_ImgConnectedComponents(benchmark::State& state) {
  const image::GrayImage img = stage_binary();
  stage_loop(state, static_cast<double>(img.size()), [&] {
    benchmark::DoNotOptimize(image::connected_components(img, 2));
  });
}
BENCHMARK(BM_ImgConnectedComponents)->Arg(1)->Arg(0);

void BM_GlyphNormalize(benchmark::State& state) {
  const image::GrayImage img = stage_binary();
  const image::Rect bounds{4, 8, 24, 40};  // a plausible glyph box
  alignas(16) float grid[16 * 16];
  stage_loop(state,
             static_cast<double>(bounds.w) * static_cast<double>(bounds.h),
             [&] {
               image::normalize_glyph(img, bounds, 16, grid);
               benchmark::DoNotOptimize(grid);
             });
}
BENCHMARK(BM_GlyphNormalize)->Arg(1)->Arg(0);

/// One engine's recognize() over a realistic preprocessed crop: glyph
/// segmentation + normalization + the SoA match loop.
void ocr_match_bench(benchmark::State& state, std::size_t engine_index) {
  const auto& spec = ocr::ui_spec_for("League of Legends");
  const synth::ThumbnailRenderer renderer;
  util::Rng rng(23);
  const auto thumbnail =
      renderer.render_with(spec, 87, synth::Corruption::kNone, rng);
  const auto binary =
      ocr::preprocess(thumbnail.image.crop(spec.latency_region), {});
  const auto engines = ocr::make_builtin_engines();
  const auto& engine = *engines.at(engine_index);
  stage_loop(state, static_cast<double>(binary.size()), [&] {
    benchmark::DoNotOptimize(engine.recognize(binary));
  });
}

void BM_OcrMatchTemplate(benchmark::State& state) {
  ocr_match_bench(state, 0);
}
BENCHMARK(BM_OcrMatchTemplate)->Arg(1)->Arg(0);

void BM_OcrMatchZoning(benchmark::State& state) { ocr_match_bench(state, 1); }
BENCHMARK(BM_OcrMatchZoning)->Arg(1)->Arg(0);

void BM_OcrMatchProjection(benchmark::State& state) {
  ocr_match_bench(state, 2);
}
BENCHMARK(BM_OcrMatchProjection)->Arg(1)->Arg(0);

analysis::Stream make_noisy_stream(std::size_t n) {
  util::Rng rng(2);
  analysis::Stream stream;
  stream.streamer = "u";
  stream.game = "g";
  for (std::size_t i = 0; i < n; ++i) {
    analysis::Measurement m;
    m.time_s = i * 300.0;
    m.latency_ms = 45 + static_cast<int>(rng.normal(0, 3));
    if (rng.bernoulli(0.02)) m.latency_ms += 80;  // spikes
    if (rng.bernoulli(0.02)) m.latency_ms = 5;    // glitches
    stream.points.push_back(m);
  }
  return stream;
}

void BM_CleanStream(benchmark::State& state) {
  const auto stream = make_noisy_stream(
      static_cast<std::size_t>(state.range(0)));
  const analysis::AnalysisConfig config;
  for (auto _ : state) {
    auto copy = stream;
    benchmark::DoNotOptimize(
        analysis::clean_stream(std::move(copy), config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CleanStream)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ClusterStreamer(benchmark::State& state) {
  const analysis::AnalysisConfig config;
  const auto clean =
      analysis::clean_stream(make_noisy_stream(2000), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::cluster_streamer(clean, config));
  }
}
BENCHMARK(BM_ClusterStreamer);

void BM_Pelt(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> series;
  double level = 50;
  for (int i = 0; i < state.range(0); ++i) {
    if (i % 200 == 0) level = rng.uniform(40, 100);
    series.push_back(level + rng.normal(0, 3));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(anomaly::pelt_changepoints(series, 40.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Pelt)->Arg(1000)->Arg(5000);

void BM_Wasserstein(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(rng.normal(0, 1));
    b.push_back(rng.normal(0.5, 1.2));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::wasserstein1(a, b));
  }
}
BENCHMARK(BM_Wasserstein)->Arg(100)->Arg(1000);

// Pipeline scaling over the work-stealing pool: one fixed synthetic world,
// full-OCR extraction (the expensive exact code path), threads = 1/2/4/8.
// Speedup should be near-linear until the core count; the thread count never
// changes the output (see Determinism tests), only the wall clock.
void BM_PipelineFullOcr(benchmark::State& state) {
  static const synth::World world = [] {
    synth::WorldConfig config;
    config.seed = 7;
    config.p_twitter = 1.0;
    config.p_twitter_backlink = 1.0;
    config.p_twitter_location = 1.0;
    config.games = {"League of Legends"};
    config.focus_locations = {geo::Location{"", "Illinois", "United States"},
                              geo::Location{"", "", "Poland"}};
    config.streamers_per_focus = 20;
    return synth::World(config);
  }();
  static const std::vector<synth::TrueStream> streams = [] {
    synth::BehaviorConfig behavior;
    behavior.days = 2;
    synth::SessionGenerator generator(world, behavior, 11);
    return generator.generate();
  }();

  core::TeroConfig config;
  config.use_full_ocr = true;
  config.threads = static_cast<std::size_t>(state.range(0));
  core::Pipeline pipeline(config);
  std::size_t thumbnails = 0;
  for (auto _ : state) {
    const auto dataset = pipeline.run(world, streams);
    thumbnails = dataset.funnel.thumbnails;
    benchmark::DoNotOptimize(dataset);
  }
  state.counters["thumbnails/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(thumbnails),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineFullOcr)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The same scaling through the cheap noise channel: stages (b)/(c) dominate
// here, so this tracks the analysis-side parallelism rather than OCR.
void BM_PipelineNoise(benchmark::State& state) {
  static const synth::World world = [] {
    synth::WorldConfig config;
    config.seed = 7;
    config.p_twitter = 1.0;
    config.p_twitter_backlink = 1.0;
    config.p_twitter_location = 1.0;
    config.games = {"League of Legends"};
    config.focus_locations = {geo::Location{"", "Illinois", "United States"},
                              geo::Location{"", "", "Poland"}};
    config.streamers_per_focus = 150;
    return synth::World(config);
  }();
  static const std::vector<synth::TrueStream> streams = [] {
    synth::BehaviorConfig behavior;
    behavior.days = 7;
    synth::SessionGenerator generator(world, behavior, 11);
    return generator.generate();
  }();

  core::TeroConfig config;
  config.use_full_ocr = false;
  config.p_latency_visible = 1.0;
  config.threads = static_cast<std::size_t>(state.range(0));
  core::Pipeline pipeline(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(world, streams));
  }
}
BENCHMARK(BM_PipelineNoise)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The same pipeline with a live metrics registry + trace-less sinks: the
// difference against BM_PipelineNoise is the observability overhead when
// enabled. With sinks left null (BM_PipelineNoise) the instrumented hot
// paths cost one untaken branch per event, which should be within noise.
void BM_PipelineNoiseMetrics(benchmark::State& state) {
  static const synth::World world = [] {
    synth::WorldConfig config;
    config.seed = 7;
    config.p_twitter = 1.0;
    config.p_twitter_backlink = 1.0;
    config.p_twitter_location = 1.0;
    config.games = {"League of Legends"};
    config.focus_locations = {geo::Location{"", "Illinois", "United States"},
                              geo::Location{"", "", "Poland"}};
    config.streamers_per_focus = 150;
    return synth::World(config);
  }();
  static const std::vector<synth::TrueStream> streams = [] {
    synth::BehaviorConfig behavior;
    behavior.days = 7;
    synth::SessionGenerator generator(world, behavior, 11);
    return generator.generate();
  }();

  obs::MetricsRegistry registry;
  core::TeroConfig config;
  config.use_full_ocr = false;
  config.p_latency_visible = 1.0;
  config.threads = static_cast<std::size_t>(state.range(0));
  config.metrics = &registry;
  core::Pipeline pipeline(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(world, streams));
  }
}
BENCHMARK(BM_PipelineNoiseMetrics)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Raw pool overhead: tiny tasks through parallel_for vs the inline path.
void BM_ParallelForOverhead(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::vector<double> out(10'000);
  for (auto _ : state) {
    pool.parallel_for(0, out.size(), 64, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4)->UseRealTime();

// Fault-layer overhead (DESIGN.md §11). The contract mirrors the obs one:
// with no injector the call site holds a nullptr FaultPoint* and a crossing
// costs a single predictable branch (BM_FaultPointAbsent); with an injector
// whose plan does not mention the point, hit() still runs its bookkeeping
// (BM_FaultPointDisabled) — the delta between the two is the price of
// arming injection without any matching rules. BM_FaultPointActive adds a
// firing rule for scale. ci.sh chaos-smoke asserts the disabled case stays
// cheap in absolute terms (see the throughput gate there).
void fault_point_loop(benchmark::State& state, fault::FaultPoint* point) {
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      if (point != nullptr) {
        acc += static_cast<std::uint64_t>(point->hit().kind);
      }
      acc += static_cast<std::uint64_t>(i);  // the "real work" baseline
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void BM_FaultPointAbsent(benchmark::State& state) {
  fault_point_loop(state, nullptr);
}
BENCHMARK(BM_FaultPointAbsent);

void BM_FaultPointDisabled(benchmark::State& state) {
  fault::FaultInjector injector(
      fault::FaultPlan::parse("some.other.point=error@1"));
  fault_point_loop(state, &injector.point("bench.point"));
}
BENCHMARK(BM_FaultPointDisabled);

void BM_FaultPointActive(benchmark::State& state) {
  fault::FaultInjector injector(
      fault::FaultPlan::parse("bench.point=error@0.01"));
  fault_point_loop(state, &injector.point("bench.point"));
}
BENCHMARK(BM_FaultPointActive);

void BM_ProbitFit(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> x;
  std::vector<int> y;
  for (int i = 0; i < state.range(0); ++i) {
    const double xi = static_cast<double>(rng.uniform_int(0, 10));
    x.push_back(xi);
    y.push_back(rng.bernoulli(stats::normal_cdf(-1.5 + 0.1 * xi)) ? 1 : 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::probit_fit_single(x, y));
  }
}
BENCHMARK(BM_ProbitFit)->Arg(1000)->Arg(10000);

// Captures every per-repetition run while still printing the usual console
// report, so main() can reduce them to medians for BENCH_perf_micro.json.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Sample {
    double ms = 0.0;
    double throughput = 0.0;      ///< items/s if reported, else runs/s
    double events_per_s = 0.0;    ///< stage "events/s" counter, 0 if absent
    double bytes_per_cycle = 0.0; ///< stage rdtsc counter, 0 if absent
    int threads = 1;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.run_type == Run::RT_Aggregate) continue;
      Sample sample;
      if (run.iterations > 0) {
        sample.ms = run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e3;
      }
      // Rate counters (items_per_second, thumbnails/s) arrive finalized.
      // bytes_per_second (from SetBytesProcessed) sorts first alphabetically
      // but is NOT the stage throughput — prefer items_per_second, then any
      // other rate counter, and use bytes_per_second only as a last resort.
      double bytes_rate = 0.0;
      for (const auto& [name, counter] : run.counters) {
        if (name == "events/s") sample.events_per_s = counter.value;
        if (name == "bytes/cycle") sample.bytes_per_cycle = counter.value;
        if ((counter.flags & benchmark::Counter::kIsRate) == 0) continue;
        if (name == "items_per_second") {
          sample.throughput = counter.value;
        } else if (name == "bytes_per_second") {
          bytes_rate = counter.value;
        } else if (sample.throughput == 0.0) {
          sample.throughput = counter.value;
        }
      }
      if (sample.throughput == 0.0) sample.throughput = bytes_rate;
      if (sample.throughput == 0.0 && sample.ms > 0.0) {
        sample.throughput = 1e3 / sample.ms;
      }
      if (sample.events_per_s == 0.0 && sample.ms > 0.0) {
        sample.events_per_s = 1e3 / sample.ms;
      }
      const std::string name = run.benchmark_name();
      sample.threads = pool_threads(name);
      samples_[name].push_back(sample);
    }
  }

  /// name -> {median_ms, threads, throughput-at-median}.
  [[nodiscard]] std::map<std::string, Sample> medians() const {
    std::map<std::string, Sample> out;
    for (const auto& [name, samples] : samples_) {
      std::vector<Sample> sorted = samples;
      std::sort(sorted.begin(), sorted.end(),
                [](const Sample& a, const Sample& b) { return a.ms < b.ms; });
      out[name] = sorted[sorted.size() / 2];
    }
    return out;
  }

 private:
  /// The pool-scaling benchmarks encode the worker count as their first
  /// argument ("BM_PipelineNoise/4/real_time"); everything else is serial.
  static int pool_threads(const std::string& name) {
    if (name.rfind("BM_Pipeline", 0) != 0 &&
        name.rfind("BM_ParallelForOverhead", 0) != 0) {
      return 1;
    }
    const auto slash = name.find('/');
    if (slash == std::string::npos) return 1;
    const int threads = std::atoi(name.c_str() + slash + 1);
    return threads > 0 ? threads : 1;
  }

  std::map<std::string, std::vector<Sample>> samples_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::ofstream out("BENCH_perf_micro.json");
  out << "{\n";
  const auto medians = reporter.medians();
  std::size_t written = 0;
  for (const auto& [name, sample] : medians) {
    out << "  \"" << name << "\": {\"median_ms\": " << sample.ms
        << ", \"threads\": " << sample.threads
        << ", \"throughput\": " << sample.throughput
        << ", \"events_per_s\": " << sample.events_per_s
        << ", \"bytes_per_cycle\": " << sample.bytes_per_cycle << "}";
    out << (++written < medians.size() ? ",\n" : "\n");
  }
  out << "}\n";
  return 0;
}
