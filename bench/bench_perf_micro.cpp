// Google-benchmark microbenchmarks for the hot paths: thumbnail OCR,
// stream cleaning, clustering, the shared-anomaly test, PELT, Wasserstein,
// and Probit fitting. These back the throughput claims in DESIGN.md (the
// noise channel exists because full OCR costs ~ms per thumbnail).

#include <benchmark/benchmark.h>

#include "analysis/anomalies.hpp"
#include "analysis/clusters.hpp"
#include "anomaly/pelt.hpp"
#include "ocr/extractor.hpp"
#include "stats/distributions.hpp"
#include "stats/probit.hpp"
#include "stats/wasserstein.hpp"
#include "synth/thumbnail.hpp"
#include "util/rng.hpp"

using namespace tero;

namespace {

void BM_OcrExtract(benchmark::State& state) {
  const auto& spec = ocr::ui_spec_for("League of Legends");
  const synth::ThumbnailRenderer renderer;
  const ocr::LatencyExtractor extractor;
  util::Rng rng(1);
  const auto thumbnail =
      renderer.render_with(spec, 87, synth::Corruption::kNone, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(thumbnail.image, spec));
  }
}
BENCHMARK(BM_OcrExtract);

analysis::Stream make_noisy_stream(std::size_t n) {
  util::Rng rng(2);
  analysis::Stream stream;
  stream.streamer = "u";
  stream.game = "g";
  for (std::size_t i = 0; i < n; ++i) {
    analysis::Measurement m;
    m.time_s = i * 300.0;
    m.latency_ms = 45 + static_cast<int>(rng.normal(0, 3));
    if (rng.bernoulli(0.02)) m.latency_ms += 80;  // spikes
    if (rng.bernoulli(0.02)) m.latency_ms = 5;    // glitches
    stream.points.push_back(m);
  }
  return stream;
}

void BM_CleanStream(benchmark::State& state) {
  const auto stream = make_noisy_stream(
      static_cast<std::size_t>(state.range(0)));
  const analysis::AnalysisConfig config;
  for (auto _ : state) {
    auto copy = stream;
    benchmark::DoNotOptimize(
        analysis::clean_stream(std::move(copy), config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CleanStream)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ClusterStreamer(benchmark::State& state) {
  const analysis::AnalysisConfig config;
  const auto clean =
      analysis::clean_stream(make_noisy_stream(2000), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::cluster_streamer(clean, config));
  }
}
BENCHMARK(BM_ClusterStreamer);

void BM_Pelt(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> series;
  double level = 50;
  for (int i = 0; i < state.range(0); ++i) {
    if (i % 200 == 0) level = rng.uniform(40, 100);
    series.push_back(level + rng.normal(0, 3));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(anomaly::pelt_changepoints(series, 40.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Pelt)->Arg(1000)->Arg(5000);

void BM_Wasserstein(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(rng.normal(0, 1));
    b.push_back(rng.normal(0.5, 1.2));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::wasserstein1(a, b));
  }
}
BENCHMARK(BM_Wasserstein)->Arg(100)->Arg(1000);

void BM_ProbitFit(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> x;
  std::vector<int> y;
  for (int i = 0; i < state.range(0); ++i) {
    const double xi = static_cast<double>(rng.uniform_int(0, 10));
    x.push_back(xi);
    y.push_back(rng.bernoulli(stats::normal_cdf(-1.5 + 0.1 * xi)) ? 1 : 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::probit_fit_single(x, y));
  }
}
BENCHMARK(BM_ProbitFit)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
