// Google-benchmark microbenchmarks for the hot paths: thumbnail OCR,
// stream cleaning, clustering, the shared-anomaly test, PELT, Wasserstein,
// and Probit fitting. These back the throughput claims in DESIGN.md (the
// noise channel exists because full OCR costs ~ms per thumbnail).
//
// Besides the console report, the run writes BENCH_perf_micro.json
// (benchmark name -> {median_ms, threads, throughput}) so CI can diff
// performance across commits; see main() at the bottom.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/anomalies.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "analysis/clusters.hpp"
#include "anomaly/pelt.hpp"
#include "ocr/extractor.hpp"
#include "stats/distributions.hpp"
#include "stats/probit.hpp"
#include "stats/wasserstein.hpp"
#include "synth/sessions.hpp"
#include "synth/thumbnail.hpp"
#include "synth/world.hpp"
#include "tero/pipeline.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace tero;

namespace {

void BM_OcrExtract(benchmark::State& state) {
  const auto& spec = ocr::ui_spec_for("League of Legends");
  const synth::ThumbnailRenderer renderer;
  const ocr::LatencyExtractor extractor;
  util::Rng rng(1);
  const auto thumbnail =
      renderer.render_with(spec, 87, synth::Corruption::kNone, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(thumbnail.image, spec));
  }
}
BENCHMARK(BM_OcrExtract);

analysis::Stream make_noisy_stream(std::size_t n) {
  util::Rng rng(2);
  analysis::Stream stream;
  stream.streamer = "u";
  stream.game = "g";
  for (std::size_t i = 0; i < n; ++i) {
    analysis::Measurement m;
    m.time_s = i * 300.0;
    m.latency_ms = 45 + static_cast<int>(rng.normal(0, 3));
    if (rng.bernoulli(0.02)) m.latency_ms += 80;  // spikes
    if (rng.bernoulli(0.02)) m.latency_ms = 5;    // glitches
    stream.points.push_back(m);
  }
  return stream;
}

void BM_CleanStream(benchmark::State& state) {
  const auto stream = make_noisy_stream(
      static_cast<std::size_t>(state.range(0)));
  const analysis::AnalysisConfig config;
  for (auto _ : state) {
    auto copy = stream;
    benchmark::DoNotOptimize(
        analysis::clean_stream(std::move(copy), config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CleanStream)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ClusterStreamer(benchmark::State& state) {
  const analysis::AnalysisConfig config;
  const auto clean =
      analysis::clean_stream(make_noisy_stream(2000), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::cluster_streamer(clean, config));
  }
}
BENCHMARK(BM_ClusterStreamer);

void BM_Pelt(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> series;
  double level = 50;
  for (int i = 0; i < state.range(0); ++i) {
    if (i % 200 == 0) level = rng.uniform(40, 100);
    series.push_back(level + rng.normal(0, 3));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(anomaly::pelt_changepoints(series, 40.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Pelt)->Arg(1000)->Arg(5000);

void BM_Wasserstein(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(rng.normal(0, 1));
    b.push_back(rng.normal(0.5, 1.2));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::wasserstein1(a, b));
  }
}
BENCHMARK(BM_Wasserstein)->Arg(100)->Arg(1000);

// Pipeline scaling over the work-stealing pool: one fixed synthetic world,
// full-OCR extraction (the expensive exact code path), threads = 1/2/4/8.
// Speedup should be near-linear until the core count; the thread count never
// changes the output (see Determinism tests), only the wall clock.
void BM_PipelineFullOcr(benchmark::State& state) {
  static const synth::World world = [] {
    synth::WorldConfig config;
    config.seed = 7;
    config.p_twitter = 1.0;
    config.p_twitter_backlink = 1.0;
    config.p_twitter_location = 1.0;
    config.games = {"League of Legends"};
    config.focus_locations = {geo::Location{"", "Illinois", "United States"},
                              geo::Location{"", "", "Poland"}};
    config.streamers_per_focus = 20;
    return synth::World(config);
  }();
  static const std::vector<synth::TrueStream> streams = [] {
    synth::BehaviorConfig behavior;
    behavior.days = 2;
    synth::SessionGenerator generator(world, behavior, 11);
    return generator.generate();
  }();

  core::TeroConfig config;
  config.use_full_ocr = true;
  config.threads = static_cast<std::size_t>(state.range(0));
  core::Pipeline pipeline(config);
  std::size_t thumbnails = 0;
  for (auto _ : state) {
    const auto dataset = pipeline.run(world, streams);
    thumbnails = dataset.funnel.thumbnails;
    benchmark::DoNotOptimize(dataset);
  }
  state.counters["thumbnails/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(thumbnails),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineFullOcr)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The same scaling through the cheap noise channel: stages (b)/(c) dominate
// here, so this tracks the analysis-side parallelism rather than OCR.
void BM_PipelineNoise(benchmark::State& state) {
  static const synth::World world = [] {
    synth::WorldConfig config;
    config.seed = 7;
    config.p_twitter = 1.0;
    config.p_twitter_backlink = 1.0;
    config.p_twitter_location = 1.0;
    config.games = {"League of Legends"};
    config.focus_locations = {geo::Location{"", "Illinois", "United States"},
                              geo::Location{"", "", "Poland"}};
    config.streamers_per_focus = 150;
    return synth::World(config);
  }();
  static const std::vector<synth::TrueStream> streams = [] {
    synth::BehaviorConfig behavior;
    behavior.days = 7;
    synth::SessionGenerator generator(world, behavior, 11);
    return generator.generate();
  }();

  core::TeroConfig config;
  config.use_full_ocr = false;
  config.p_latency_visible = 1.0;
  config.threads = static_cast<std::size_t>(state.range(0));
  core::Pipeline pipeline(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(world, streams));
  }
}
BENCHMARK(BM_PipelineNoise)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The same pipeline with a live metrics registry + trace-less sinks: the
// difference against BM_PipelineNoise is the observability overhead when
// enabled. With sinks left null (BM_PipelineNoise) the instrumented hot
// paths cost one untaken branch per event, which should be within noise.
void BM_PipelineNoiseMetrics(benchmark::State& state) {
  static const synth::World world = [] {
    synth::WorldConfig config;
    config.seed = 7;
    config.p_twitter = 1.0;
    config.p_twitter_backlink = 1.0;
    config.p_twitter_location = 1.0;
    config.games = {"League of Legends"};
    config.focus_locations = {geo::Location{"", "Illinois", "United States"},
                              geo::Location{"", "", "Poland"}};
    config.streamers_per_focus = 150;
    return synth::World(config);
  }();
  static const std::vector<synth::TrueStream> streams = [] {
    synth::BehaviorConfig behavior;
    behavior.days = 7;
    synth::SessionGenerator generator(world, behavior, 11);
    return generator.generate();
  }();

  obs::MetricsRegistry registry;
  core::TeroConfig config;
  config.use_full_ocr = false;
  config.p_latency_visible = 1.0;
  config.threads = static_cast<std::size_t>(state.range(0));
  config.metrics = &registry;
  core::Pipeline pipeline(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(world, streams));
  }
}
BENCHMARK(BM_PipelineNoiseMetrics)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Raw pool overhead: tiny tasks through parallel_for vs the inline path.
void BM_ParallelForOverhead(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::vector<double> out(10'000);
  for (auto _ : state) {
    pool.parallel_for(0, out.size(), 64, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4)->UseRealTime();

// Fault-layer overhead (DESIGN.md §11). The contract mirrors the obs one:
// with no injector the call site holds a nullptr FaultPoint* and a crossing
// costs a single predictable branch (BM_FaultPointAbsent); with an injector
// whose plan does not mention the point, hit() still runs its bookkeeping
// (BM_FaultPointDisabled) — the delta between the two is the price of
// arming injection without any matching rules. BM_FaultPointActive adds a
// firing rule for scale. ci.sh chaos-smoke asserts the disabled case stays
// cheap in absolute terms (see the throughput gate there).
void fault_point_loop(benchmark::State& state, fault::FaultPoint* point) {
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      if (point != nullptr) {
        acc += static_cast<std::uint64_t>(point->hit().kind);
      }
      acc += static_cast<std::uint64_t>(i);  // the "real work" baseline
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void BM_FaultPointAbsent(benchmark::State& state) {
  fault_point_loop(state, nullptr);
}
BENCHMARK(BM_FaultPointAbsent);

void BM_FaultPointDisabled(benchmark::State& state) {
  fault::FaultInjector injector(
      fault::FaultPlan::parse("some.other.point=error@1"));
  fault_point_loop(state, &injector.point("bench.point"));
}
BENCHMARK(BM_FaultPointDisabled);

void BM_FaultPointActive(benchmark::State& state) {
  fault::FaultInjector injector(
      fault::FaultPlan::parse("bench.point=error@0.01"));
  fault_point_loop(state, &injector.point("bench.point"));
}
BENCHMARK(BM_FaultPointActive);

void BM_ProbitFit(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> x;
  std::vector<int> y;
  for (int i = 0; i < state.range(0); ++i) {
    const double xi = static_cast<double>(rng.uniform_int(0, 10));
    x.push_back(xi);
    y.push_back(rng.bernoulli(stats::normal_cdf(-1.5 + 0.1 * xi)) ? 1 : 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::probit_fit_single(x, y));
  }
}
BENCHMARK(BM_ProbitFit)->Arg(1000)->Arg(10000);

// Captures every per-repetition run while still printing the usual console
// report, so main() can reduce them to medians for BENCH_perf_micro.json.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Sample {
    double ms = 0.0;
    double throughput = 0.0;  ///< items/s if reported, else runs/s
    int threads = 1;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.run_type == Run::RT_Aggregate) continue;
      Sample sample;
      if (run.iterations > 0) {
        sample.ms = run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e3;
      }
      // Rate counters (items_per_second, thumbnails/s) arrive finalized.
      for (const auto& [name, counter] : run.counters) {
        if ((counter.flags & benchmark::Counter::kIsRate) != 0) {
          sample.throughput = counter.value;
          break;
        }
      }
      if (sample.throughput == 0.0 && sample.ms > 0.0) {
        sample.throughput = 1e3 / sample.ms;
      }
      const std::string name = run.benchmark_name();
      sample.threads = pool_threads(name);
      samples_[name].push_back(sample);
    }
  }

  /// name -> {median_ms, threads, throughput-at-median}.
  [[nodiscard]] std::map<std::string, Sample> medians() const {
    std::map<std::string, Sample> out;
    for (const auto& [name, samples] : samples_) {
      std::vector<Sample> sorted = samples;
      std::sort(sorted.begin(), sorted.end(),
                [](const Sample& a, const Sample& b) { return a.ms < b.ms; });
      out[name] = sorted[sorted.size() / 2];
    }
    return out;
  }

 private:
  /// The pool-scaling benchmarks encode the worker count as their first
  /// argument ("BM_PipelineNoise/4/real_time"); everything else is serial.
  static int pool_threads(const std::string& name) {
    if (name.rfind("BM_Pipeline", 0) != 0 &&
        name.rfind("BM_ParallelForOverhead", 0) != 0) {
      return 1;
    }
    const auto slash = name.find('/');
    if (slash == std::string::npos) return 1;
    const int threads = std::atoi(name.c_str() + slash + 1);
    return threads > 0 ? threads : 1;
  }

  std::map<std::string, std::vector<Sample>> samples_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::ofstream out("BENCH_perf_micro.json");
  out << "{\n";
  const auto medians = reporter.medians();
  std::size_t written = 0;
  for (const auto& [name, sample] : medians) {
    out << "  \"" << name << "\": {\"median_ms\": " << sample.ms
        << ", \"threads\": " << sample.threads
        << ", \"throughput\": " << sample.throughput << "}";
    out << (++written < medians.size() ? ",\n" : "\n");
  }
  out << "}\n";
  return 0;
}
