// Reproduces Fig. 13 (App. F): the CDF of time between consecutively
// downloaded thumbnails of one streamer.
//
// Paper shape: inter-arrivals live in the 300-400 s band (5-minute cadence
// plus up to a minute of jitter); the 90th percentile is ~6 minutes, which
// is where the 12-minute shared-anomaly window comes from.

#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "download/system.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  bench::header("Fig. 13: CDF of thumbnail inter-arrival time");

  util::EventLoop loop;
  download::SimulatedCdn cdn(loop, util::Rng(13));
  for (int i = 0; i < 25; ++i) {
    cdn.add_session({"s" + std::to_string(i), i * 30.0, 12 * 3600.0});
  }
  store::KvStore kv;
  download::DownloadConfig config;
  config.num_downloaders = 4;
  download::DownloadSystem system(loop, cdn, kv, config, util::Rng(14));
  system.start();
  loop.run_until(12 * 3600.0);

  auto gaps = system.interarrival_times();
  std::sort(gaps.begin(), gaps.end());
  util::Table table({"percentile", "inter-arrival [s]"});
  for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    table.add_row({util::fmt_double(pct, 0),
                   util::fmt_double(stats::percentile_sorted(gaps, pct), 1)});
  }
  table.print(std::cout);

  bench::note("");
  bench::note("samples: " + std::to_string(gaps.size()) +
              ", thumbnails generated: " +
              std::to_string(cdn.thumbnails_generated()) + ", downloaded: " +
              std::to_string(system.downloads().size()));
  bench::note(
      "Paper shape check: mass between 300 and 400 s; 90th percentile ~360 s "
      "(6 min) — the basis for the 12-minute shared-anomaly window (App. F).");
  return 0;
}
