// Reproduces Fig. 8: the CDF of the "uneven-ness" score — how unevenly
// latency measurements from one location spread across a 5-minute interval,
// as a function of how many streamers were active.
//
// Paper shape: with 3+ active streamers per interval the distribution leans
// uniform (score below ~0.5) about 80% of the time; more streamers ->
// more even.

#include <algorithm>
#include <iostream>
#include <map>
#include <set>

#include "bench/common.hpp"
#include "stats/wasserstein.hpp"
#include "synth/sessions.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  bench::header("Fig. 8: uneven-ness of measurement times per 5-min interval");

  const synth::World world(bench::focus_world(
      {geo::Location{"", "California", "United States"}}, 120));
  synth::BehaviorConfig behavior;
  behavior.days = 10;
  synth::SessionGenerator generator(world, behavior, 88);
  const auto streams = generator.generate();

  // Bucket measurement timestamps into 5-minute wall-clock intervals.
  constexpr double kInterval = 300.0;
  std::map<long, std::vector<double>> interval_times;
  std::map<long, std::set<std::size_t>> interval_streamers;
  for (const auto& stream : streams) {
    for (const auto& point : stream.points) {
      const long bucket = static_cast<long>(point.t / kInterval);
      interval_times[bucket].push_back(point.t);
      interval_streamers[bucket].insert(stream.streamer_index);
    }
  }

  // Group scores by active-streamer count.
  std::map<int, std::vector<double>> scores_by_count;
  for (const auto& [bucket, times] : interval_times) {
    const int active =
        static_cast<int>(interval_streamers[bucket].size());
    if (times.size() < 2) continue;
    const double start = bucket * kInterval;
    const double score =
        stats::unevenness_score(times, start, start + kInterval);
    const int group = std::min(active, 5);
    scores_by_count[group].push_back(score);
  }

  util::Table table({"streamers/interval", "intervals", "score p50",
                     "score p80", "P[score < 0.5]"});
  for (auto& [count, scores] : scores_by_count) {
    if (scores.size() < 10) continue;
    std::sort(scores.begin(), scores.end());
    const double below_half = stats::ecdf(scores, 0.5);
    table.add_row({(count >= 5 ? ">=5" : std::to_string(count)),
                   std::to_string(scores.size()),
                   util::fmt_double(stats::percentile_sorted(scores, 50), 2),
                   util::fmt_double(stats::percentile_sorted(scores, 80), 2),
                   util::fmt_percent(below_half, 0)});
  }
  table.print(std::cout);

  bench::note("");
  bench::note(
      "Paper shape check: measurements are spread roughly uniformly (no "
      "thumbnail bursts); with 3 active streamers, ~80% of intervals lean "
      "uniform, and the score falls as the streamer count grows.");
  return 0;
}
