#pragma once

// Shared helpers for the reproduction benches: focus-world construction,
// per-location aggregation, and boxplot row printing.

#include <iostream>
#include <string>
#include <vector>

#include "stats/descriptive.hpp"
#include "tero/pipeline.hpp"
#include "util/table.hpp"

namespace tero::bench {

/// A world whose streamers all live at the given locations and are all
/// locatable (Twitter profile + backlink + location field): the regional
/// figures compare *located* populations of equal size (50 per location in
/// the paper, §5.2).
inline synth::WorldConfig focus_world(
    std::vector<geo::Location> locations, std::size_t per_location = 50,
    std::vector<std::string> games = {"League of Legends"},
    std::uint64_t seed = 42) {
  synth::WorldConfig config;
  config.seed = seed;
  config.games = std::move(games);
  config.focus_locations = std::move(locations);
  config.streamers_per_focus = per_location;
  config.p_twitter = 1.0;
  config.p_twitter_backlink = 1.0;
  config.p_twitter_location = 1.0;
  config.p_false_location = 0.0;  // equal-size located populations
  return config;
}

/// Fast pipeline configuration for the large regional sweeps: dense
/// visibility + calibrated noise channel (see DESIGN.md substitutions).
inline core::TeroConfig fast_pipeline(std::uint64_t seed = 1) {
  core::TeroConfig config;
  config.p_latency_visible = 1.0;
  config.use_full_ocr = false;
  config.seed = seed;
  return config;
}

/// Aggregate all entries compatible with `focus` into one {location, game}
/// product keyed at the focus's own granularity.
inline std::optional<core::LocationGameAggregate> aggregate_for(
    const std::vector<core::StreamerGameEntry>& entries,
    const geo::Location& focus, const std::string& game,
    const analysis::AnalysisConfig& config) {
  std::vector<core::StreamerGameEntry> filtered;
  for (const auto& entry : entries) {
    // The located tuple must be at least as specific as the focus: a
    // country-level location cannot contribute to a regional distribution
    // (it is *compatible* with every region of that country).
    if (entry.game == game &&
        (entry.location == focus || entry.location.subsumes(focus))) {
      filtered.push_back(entry);
      filtered.back().location = focus;
    }
  }
  if (filtered.empty()) return std::nullopt;
  auto aggregates =
      core::aggregate_entries(filtered, config, focus.granularity());
  if (aggregates.empty()) return std::nullopt;
  return aggregates.front();
}

/// "p5 | p25 [p50] p75 | p95" cell for boxplot rows.
inline std::string boxplot_cell(const stats::Boxplot& box) {
  return util::fmt_double(box.p5, 0) + " | " + util::fmt_double(box.p25, 0) +
         " [" + util::fmt_double(box.p50, 0) + "] " +
         util::fmt_double(box.p75, 0) + " | " + util::fmt_double(box.p95, 0);
}

inline void header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

}  // namespace tero::bench
