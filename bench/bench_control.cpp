// Closed-loop overload control benchmark (DESIGN.md §16): the policy-vs-SLO
// frontier. Three policies — static baseline, reactive multi-window
// burn-rate, predictive slope-extrapolation — each swept over offered load
// from 0.1x to 10x of nominal capacity under the standard chaos plan (node
// kill, replication delay, tsdb read errors). Sections:
//
//   frontier    — policy x multiplier grid: shed/denied/stale fractions,
//                 p99, SLO good fraction, peak ladder rung and fleet size.
//   comparison  — the acceptance gate numbers: at 2x and 4x the reactive
//                 policy must shed measurably less than the static baseline,
//                 and its ladder must have engaged before its first shed.
//   determinism — the reactive 4x cell at 1 thread vs the machine width:
//                 decision log bytes, decision digest and response checksum
//                 must match exactly.
//
// Writes BENCH_control.json (parse-checked by scripts/ci.sh control-smoke
// via bench_json_check; the comparison and determinism fields are awk gates
// there too).
//
//   bench_control [--tiny]
//
// --tiny shrinks the grid and virtual duration to CI-smoke scale (~1 s).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "control/controller.hpp"
#include "control/sweep.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "synth/sessions.hpp"
#include "tero/pipeline.hpp"
#include "util/thread_pool.hpp"

using namespace tero;

namespace {

std::vector<serve::SnapshotEntry> build_entries(bool tiny) {
  synth::WorldConfig world_config;
  world_config.seed = 13;
  world_config.num_streamers = tiny ? 60 : 240;
  world_config.p_twitter = 0.9;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = tiny ? 3 : 5;
  synth::SessionGenerator generator(world, behavior, 3);
  const auto streams = generator.generate();

  core::TeroConfig config = bench::fast_pipeline(13);
  core::Pipeline pipeline(config);
  const core::Dataset dataset = pipeline.run(world, streams);
  return serve::entries_from(dataset);
}

control::SweepConfig cell_config(bool tiny, control::Policy policy,
                                 double multiplier, std::uint64_t seed) {
  control::SweepConfig config;
  config.seed = seed;
  config.load_multiplier = multiplier;
  config.controller.policy = policy;
  if (tiny) {
    config.duration_s = 2.5;
    config.publish_every_s = 0.5;
    config.controller.shard_unit_qps = 400.0;
    config.controller.min_shards = 2;
    config.controller.initial_shards = 2;
    config.controller.max_shards = 4;
    config.controller.base_channel_capacity = 1024;
    config.controller.min_channel_capacity = 64;
  } else {
    config.duration_s = 8.0;
    config.publish_every_s = 1.0;
    config.controller.shard_unit_qps = 1000.0;
    config.controller.min_shards = 2;
    config.controller.initial_shards = 4;
    config.controller.max_shards = 8;
  }
  return config;
}

std::string hex64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string mult_key(double multiplier) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", multiplier);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  constexpr std::uint64_t kSeed = 21;
  const std::size_t hw = util::ThreadPool::resolve(0);
  const std::size_t wide = hw > 1 ? hw : 2;
  util::ThreadPool pool(wide);

  bench::header("control: snapshot build");
  const auto entries = build_entries(tiny);
  const std::vector<double> multipliers =
      tiny ? std::vector<double>{0.5, 2.0, 4.0}
           : std::vector<double>{0.1, 0.5, 1.0, 2.0, 4.0, 10.0};
  const control::Policy policies[] = {control::Policy::kStatic,
                                      control::Policy::kReactive,
                                      control::Policy::kPredictive};
  bench::note("snapshot entries: " + std::to_string(entries.size()) +
              ", chaos plan: shard kill + repl delay + tsdb errors, seed " +
              std::to_string(kSeed));

  // ---- frontier: policy x offered-load grid -------------------------------
  bench::header("control: policy-vs-SLO frontier (0.1x -> 10x offered load)");
  struct Cell {
    control::Policy policy;
    double multiplier;
    control::SweepReport report;
  };
  std::vector<Cell> cells;
  util::Table table({"policy", "mult", "shed", "denied", "stale", "p99 ms",
                     "slo good", "level", "shards", "ladder ms", "shed ms"});
  for (const control::Policy policy : policies) {
    for (const double multiplier : multipliers) {
      const control::SweepReport report = control::run_control_sweep(
          entries, cell_config(tiny, policy, multiplier, kSeed), &pool);
      table.add_row(
          {std::string(control::to_string(policy)), mult_key(multiplier),
           util::fmt_percent(report.shed_fraction, 2),
           util::fmt_percent(report.denied_fraction, 2),
           util::fmt_percent(report.stale_fraction, 2),
           util::fmt_double(report.p99_ms, 2),
           util::fmt_percent(report.slo_good_fraction, 2),
           std::to_string(report.max_level),
           std::to_string(report.peak_shards),
           std::to_string(report.first_ladder_ms),
           std::to_string(report.first_shed_ms)});
      cells.push_back({policy, multiplier, report});
    }
  }
  table.print(std::cout);

  const auto cell = [&](control::Policy policy,
                        double multiplier) -> const control::SweepReport& {
    for (const Cell& c : cells) {
      if (c.policy == policy && c.multiplier == multiplier) return c.report;
    }
    throw std::logic_error("missing frontier cell");
  };

  // ---- comparison: the acceptance-gate numbers ----------------------------
  bench::header("control: reactive vs static under overload");
  const control::SweepReport& static_2x = cell(control::Policy::kStatic, 2.0);
  const control::SweepReport& static_4x = cell(control::Policy::kStatic, 4.0);
  const control::SweepReport& reactive_2x =
      cell(control::Policy::kReactive, 2.0);
  const control::SweepReport& reactive_4x =
      cell(control::Policy::kReactive, 4.0);
  const control::SweepReport& predictive_4x =
      cell(control::Policy::kPredictive, 4.0);
  const bool improved_2x =
      reactive_2x.shed_fraction < static_2x.shed_fraction;
  const bool improved_4x =
      reactive_4x.shed_fraction < static_4x.shed_fraction;
  const bool ladder_first = reactive_4x.ladder_engaged_before_shed;
  bench::note("2x: static sheds " +
              util::fmt_percent(static_2x.shed_fraction, 2) +
              ", reactive sheds " +
              util::fmt_percent(reactive_2x.shed_fraction, 2) +
              (improved_2x ? " (improved)" : " (NOT IMPROVED)"));
  bench::note("4x: static sheds " +
              util::fmt_percent(static_4x.shed_fraction, 2) +
              ", reactive sheds " +
              util::fmt_percent(reactive_4x.shed_fraction, 2) +
              (improved_4x ? " (improved)" : " (NOT IMPROVED)"));
  bench::note(std::string("reactive 4x ladder engaged ") +
              (ladder_first ? "before" : "AFTER") + " the first shed (" +
              std::to_string(reactive_4x.first_ladder_ms) + " ms vs " +
              std::to_string(reactive_4x.first_shed_ms) + " ms)");

  // ---- determinism: decision log across thread counts ---------------------
  bench::header("control: decision-log determinism (1 thread vs " +
                std::to_string(wide) + ")");
  const control::SweepConfig det_config =
      cell_config(tiny, control::Policy::kReactive, 4.0, kSeed);
  const auto det_start = std::chrono::steady_clock::now();
  const control::SweepReport serial =
      control::run_control_sweep(entries, det_config, nullptr);
  const double serial_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - det_start)
                               .count();
  const auto wide_start = std::chrono::steady_clock::now();
  const control::SweepReport threaded =
      control::run_control_sweep(entries, det_config, &pool);
  const double wide_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wide_start)
                             .count();
  const bool log_match = serial.decision_log == threaded.decision_log &&
                         serial.decision_digest == threaded.decision_digest;
  const bool checksum_match = serial.checksum == threaded.checksum;
  bench::note(std::string("decision log (") +
              std::to_string(serial.ticks) + " ticks) " +
              (log_match ? "byte-identical" : "MISMATCH") +
              ", response checksum " +
              (checksum_match ? "match" : "MISMATCH"));
  bench::note("digest " + hex64(serial.decision_digest) + ", checksum " +
              hex64(serial.checksum));

  // ---- machine-readable report --------------------------------------------
  std::ofstream out("BENCH_control.json");
  out << "{\n";
  out << "  \"frontier\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const control::SweepReport& r = c.report;
    out << "    {\"policy\": \"" << control::to_string(c.policy)
        << "\", \"multiplier\": " << c.multiplier
        << ", \"offered_qps\": " << r.offered_qps
        << ", \"issued\": " << r.issued
        << ", \"shed_fraction\": " << r.shed_fraction
        << ", \"denied_fraction\": " << r.denied_fraction
        << ", \"stale_fraction\": " << r.stale_fraction
        << ", \"brownout\": " << r.brownout
        << ", \"unavailable\": " << r.unavailable
        << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
        << ", \"slo_good_fraction\": " << r.slo_good_fraction
        << ", \"slo_fired\": " << (r.slo_fired ? "true" : "false")
        << ", \"max_level\": " << r.max_level
        << ", \"peak_shards\": " << r.peak_shards
        << ", \"min_channel_capacity\": " << r.min_channel_capacity
        << ", \"first_ladder_ms\": " << r.first_ladder_ms
        << ", \"first_shed_ms\": " << r.first_shed_ms
        << ", \"ladder_engaged_before_shed\": "
        << (r.ladder_engaged_before_shed ? "true" : "false")
        << ", \"ticks\": " << r.ticks << ", \"checksum\": \""
        << hex64(r.checksum) << "\", \"decision_digest\": \""
        << hex64(r.decision_digest) << "\"}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"comparison\": {"
      << "\"static_shed_2x\": " << static_2x.shed_fraction
      << ", \"reactive_shed_2x\": " << reactive_2x.shed_fraction
      << ", \"improved_2x\": " << (improved_2x ? "true" : "false")
      << ", \"static_shed_4x\": " << static_4x.shed_fraction
      << ", \"reactive_shed_4x\": " << reactive_4x.shed_fraction
      << ", \"predictive_shed_4x\": " << predictive_4x.shed_fraction
      << ", \"improved_4x\": " << (improved_4x ? "true" : "false")
      << ", \"static_slo_good_4x\": " << static_4x.slo_good_fraction
      << ", \"reactive_slo_good_4x\": " << reactive_4x.slo_good_fraction
      << "},\n";
  out << "  \"ladder\": {"
      << "\"first_ladder_ms\": " << reactive_4x.first_ladder_ms
      << ", \"first_shed_ms\": " << reactive_4x.first_shed_ms
      << ", \"engaged_before_shed\": " << (ladder_first ? "true" : "false")
      << ", \"max_level\": " << reactive_4x.max_level << "},\n";
  out << "  \"determinism\": {\"threads_wide\": " << wide
      << ", \"log_match\": " << (log_match ? "true" : "false")
      << ", \"checksum_match\": " << (checksum_match ? "true" : "false")
      << ", \"decision_digest\": \"" << hex64(serial.decision_digest)
      << "\", \"checksum\": \"" << hex64(serial.checksum)
      << "\", \"ticks\": " << serial.ticks
      << ", \"serial_ms\": " << serial_ms << ", \"wide_ms\": " << wide_ms
      << "}\n";
  out << "}\n";
  bench::note("wrote BENCH_control.json");

  return improved_4x && ladder_first && log_match && checksum_match ? 0 : 1;
}
