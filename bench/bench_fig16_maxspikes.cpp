// Reproduces Fig. 16 (App. I): the MaxSpikes quality filter — the
// distribution of per-user spike proportions, and how the allowed spike
// proportion trades off discarded spikes/points against the spikes and
// shared anomalies that remain.
//
// Paper shape: most users have low spike proportions (the CDF of spike
// share rises steeply); lowering MaxSpikes discards spikes much faster than
// datapoints; detected spikes and shared anomalies grow with the allowance.

#include <iostream>

#include "analysis/anomalies.hpp"
#include "analysis/shared.hpp"
#include "bench/common.hpp"
#include "synth/sessions.hpp"
#include "tero/channel.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  bench::header("Fig. 16: the MaxSpikes quality filter");

  // One region, one game, with a few shared events to count.
  const synth::World world(bench::focus_world(
      {geo::Location{"", "California", "United States"}}, 150));
  synth::BehaviorConfig behavior;
  behavior.days = 12;
  behavior.shared_events_per_region_day = 0.3;
  synth::SessionGenerator generator(world, behavior, 61);
  const auto true_streams = generator.generate();

  auto channel = core::make_noise_channel();
  util::Rng rng(62);
  analysis::AnalysisConfig config;

  struct UserData {
    analysis::CleanResult clean;
  };
  std::map<std::size_t, std::vector<analysis::Stream>> by_streamer;
  for (const auto& true_stream : true_streams) {
    analysis::Stream stream;
    stream.streamer = std::to_string(true_stream.streamer_index);
    stream.game = true_stream.game;
    for (const auto& point : true_stream.points) {
      if (auto m = channel->extract(point, ocr::ui_spec_for(stream.game),
                                    rng)) {
        stream.points.push_back(*m);
      }
    }
    if (!stream.points.empty()) {
      by_streamer[true_stream.streamer_index].push_back(std::move(stream));
    }
  }
  std::vector<UserData> users;
  for (auto& [streamer, streams] : by_streamer) {
    UserData user;
    user.clean = analysis::clean_streamer_game(std::move(streams), config);
    if (!user.clean.discarded_entirely) users.push_back(std::move(user));
  }

  // (a) CDF of per-user spike proportion.
  std::vector<double> proportions;
  for (const auto& user : users) {
    proportions.push_back(user.clean.spike_fraction());
  }
  bench::note("(a) per-user spike proportion:");
  util::Table cdf({"percentile", "spike proportion"});
  for (double pct : {25.0, 50.0, 75.0, 90.0, 99.0}) {
    cdf.add_row({util::fmt_double(pct, 0),
                 util::fmt_percent(stats::percentile(proportions, pct), 1)});
  }
  cdf.print(std::cout);

  // (b)(c) sweep MaxSpikes.
  std::size_t total_spike_points = 0;
  std::size_t total_points = 0;
  std::size_t total_spikes = 0;
  for (const auto& user : users) {
    total_spike_points += user.clean.spike_points;
    total_points += user.clean.points_retained + user.clean.spike_points;
    total_spikes += user.clean.spikes.size();
  }
  bench::note("");
  bench::note("(b)(c) effect of the allowed spike proportion:");
  util::Table sweep({"MaxSpikes", "spikes discarded", "points discarded",
                     "spikes kept", "shared anomalies"});
  for (double max_spikes : {0.05, 0.15, 0.25, 0.5, 0.75}) {
    std::size_t spikes_kept = 0;
    std::size_t spike_points_kept = 0;
    std::size_t points_kept = 0;
    std::vector<analysis::StreamerActivity> activities;
    for (const auto& user : users) {
      if (user.clean.spike_fraction() > max_spikes) continue;
      spikes_kept += user.clean.spikes.size();
      spike_points_kept += user.clean.spike_points;
      points_kept += user.clean.points_retained + user.clean.spike_points;
      analysis::StreamerActivity activity;
      activity.streamer = std::to_string(activities.size());
      for (const auto& stream : user.clean.retained) {
        for (const auto& point : stream.points) {
          activity.measurement_times.push_back(point.time_s);
        }
      }
      activity.spikes = user.clean.spikes;
      activities.push_back(std::move(activity));
    }
    const auto shared = analysis::find_shared_anomalies(activities, config);
    sweep.add_row(
        {util::fmt_percent(max_spikes, 0),
         util::fmt_percent(
             1.0 - static_cast<double>(spike_points_kept) /
                       std::max<std::size_t>(1, total_spike_points)),
         util::fmt_percent(1.0 - static_cast<double>(points_kept) /
                                     std::max<std::size_t>(1, total_points)),
         std::to_string(spikes_kept),
         std::to_string(shared.anomalies.size())});
  }
  sweep.print(std::cout);

  bench::note("");
  bench::note(
      "Paper shape check: tightening MaxSpikes discards spikes far faster "
      "than datapoints (the filter targets mislabeled/custom-UI streamers); "
      "kept spikes and shared anomalies grow with the allowance (Fig. 16c).");
  return 0;
}
