// Reproduces Figs. 17-18 (App. J): overlap between the spikes/glitches found
// by Tero's QoE-based technique and by the unsupervised baselines (MCD, LOF,
// Isolation Forests) — plus the PELT runtime note.
//
// Paper shape: for spikes, ~70% of significant anomalies are common or
// QoE-only (baselines add up to ~20% extra, much of it level shifts that
// are really server/location changes); for glitches the baselines flag
// substantially more than QoE; PELT is reported not to finish in useful
// time on their data.

#include <chrono>
#include <iostream>

#include "analysis/anomalies.hpp"
#include "anomaly/detector.hpp"
#include "anomaly/pelt.hpp"
#include "bench/common.hpp"
#include "synth/sessions.hpp"
#include "tero/channel.hpp"
#include "util/table.hpp"

using namespace tero;

namespace {

struct Overlap {
  std::size_t common = 0;
  std::size_t only_detector = 0;
  std::size_t only_qoe = 0;
  /// Detector-only hits sitting in QoE-stable segments: level shifts
  /// (server/location changes) that "should not be considered as spikes"
  /// (App. J reports 28-91% of missed spikes are these).
  std::size_t only_detector_level_shift = 0;

  [[nodiscard]] std::size_t total() const {
    return common + only_detector + only_qoe;
  }
};

}  // namespace

int main() {
  bench::header("Figs. 17-18: QoE-based detection vs anomaly-detection "
                "baselines");

  const synth::World world(bench::focus_world(
      {geo::Location{"", "California", "United States"}}, 120));
  synth::BehaviorConfig behavior;
  behavior.days = 10;
  behavior.p_alt_preference = 0.05;  // fewer habitual level shifts
  synth::SessionGenerator generator(world, behavior, 71);
  const auto true_streams = generator.generate();

  auto channel = core::make_noise_channel();
  util::Rng rng(72);
  analysis::AnalysisConfig config;
  constexpr double kSignificance = 15.0;  // ms from the stream mean

  std::vector<std::unique_ptr<anomaly::AnomalyDetector>> detectors;
  detectors.push_back(anomaly::make_mcd());
  detectors.push_back(anomaly::make_lof());
  detectors.push_back(anomaly::make_iforest());
  std::vector<Overlap> spikes(detectors.size());
  std::vector<Overlap> glitches(detectors.size());

  for (const auto& true_stream : true_streams) {
    analysis::Stream stream;
    stream.streamer = "s";
    stream.game = true_stream.game;
    for (const auto& point : true_stream.points) {
      if (auto m = channel->extract(point, ocr::ui_spec_for(stream.game),
                                    rng)) {
        stream.points.push_back(*m);
      }
    }
    if (stream.points.size() < 12) continue;

    // QoE-based point labels.
    const auto segments = analysis::classify_segments(stream, config);
    std::vector<int> qoe_label(stream.points.size(), 0);  // 1 spike, -1 glitch
    for (const auto& segment : segments) {
      int label = 0;
      if (segment.flag == analysis::SegmentFlag::kSpike) label = 1;
      if (segment.flag == analysis::SegmentFlag::kGlitch ||
          segment.flag == analysis::SegmentFlag::kDiscarded) {
        label = -1;
      }
      for (std::size_t p = segment.first; p <= segment.last; ++p) {
        qoe_label[p] = label;
      }
    }

    std::vector<double> series;
    series.reserve(stream.points.size());
    double mean = 0.0;
    for (const auto& point : stream.points) {
      series.push_back(point.latency_ms);
      mean += point.latency_ms;
    }
    mean /= static_cast<double>(series.size());

    for (std::size_t d = 0; d < detectors.size(); ++d) {
      const auto flags = detectors[d]->detect(series);
      for (std::size_t i = 0; i < series.size(); ++i) {
        const double deviation = series[i] - mean;
        if (std::abs(deviation) < kSignificance) continue;  // insignificant
        const bool detector_hit = flags[i];
        // Anomaly detection has no spike/glitch notion: split by the mean.
        const bool is_spike_side = deviation > 0;
        const bool qoe_hit =
            is_spike_side ? qoe_label[i] == 1 : qoe_label[i] == -1;
        auto& bucket = is_spike_side ? spikes[d] : glitches[d];
        if (detector_hit && qoe_hit) {
          ++bucket.common;
        } else if (detector_hit) {
          ++bucket.only_detector;
          if (qoe_label[i] == 0 && is_spike_side) {
            ++bucket.only_detector_level_shift;
          }
        } else if (qoe_hit) {
          ++bucket.only_qoe;
        }
      }
    }
  }

  auto print_overlaps = [&](const std::string& title,
                            const std::vector<Overlap>& overlaps) {
    bench::note("");
    bench::note(title);
    util::Table table({"technique", "common", "only anomaly-detection",
                       "only QoE-based", "AD-only that are level shifts"});
    for (std::size_t d = 0; d < detectors.size(); ++d) {
      const auto& overlap = overlaps[d];
      const double total = std::max<std::size_t>(1, overlap.total());
      const double ad_only =
          std::max<std::size_t>(1, overlap.only_detector);
      table.add_row({detectors[d]->name(),
                     util::fmt_percent(overlap.common / total, 0),
                     util::fmt_percent(overlap.only_detector / total, 0),
                     util::fmt_percent(overlap.only_qoe / total, 0),
                     util::fmt_percent(
                         overlap.only_detector_level_shift / ad_only, 0)});
    }
    table.print(std::cout);
  };
  print_overlaps("Fig. 18 (significant spikes):", spikes);
  print_overlaps("Fig. 17 (significant glitches):", glitches);

  // PELT runtime scaling (the paper gave up on it).
  bench::note("");
  bench::note("PELT changepoint runtime (the paper's PELT run never "
              "finished in useful time; ours is exact-pruned):");
  util::Table pelt_table({"series length", "runtime [ms]", "changepoints"});
  util::Rng pelt_rng(73);
  for (std::size_t n : {1000u, 5000u, 20000u}) {
    std::vector<double> series;
    series.reserve(n);
    double level = 50.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 500 == 0) level = pelt_rng.uniform(40.0, 120.0);
      series.push_back(level + pelt_rng.normal(0, 3.0));
    }
    const auto start = std::chrono::steady_clock::now();
    const auto changepoints = anomaly::pelt_changepoints(series, 40.0);
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    pelt_table.add_row({std::to_string(n), util::fmt_double(elapsed, 1),
                        std::to_string(changepoints.size())});
  }
  pelt_table.print(std::cout);

  bench::note("");
  bench::note(
      "Paper shape check: baselines and QoE agree on the bulk of "
      "significant spikes, with each finding some the other misses; for "
      "glitches the baselines over-flag relative to QoE (they lack the "
      "notion of explainable server/location changes and of significance, "
      "App. J).");
  return 0;
}
