// Reproduces Fig. 9: League-of-Legends latency distributions for the
// locations with the best and worst absolute (9a) and distance-normalized
// (9b) latency, 50 streamers per location.
//
// Paper shape: best absolute latency at locations < 500 km from their
// server (Korea, Illinois, Netherlands, Chile); Bolivia (1,968 km) as bad
// as Hawaii (6,832 km); Greece ~25 ms worse than Saudi Arabia at similar
// distance; Turkey's normalized latency terrible at only 371 km.

#include <iostream>

#include "bench/common.hpp"
#include "synth/sessions.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  bench::header("Fig. 9: LoL latency distributions, best/worst locations");

  const std::vector<std::pair<std::string, geo::Location>> locations = {
      {"Asia-Best:  Korea", {"", "", "South Korea"}},
      {"US-Best:    Illinois", {"", "Illinois", "United States"}},
      {"EU-Best:    Netherlands", {"", "", "Netherlands"}},
      {"Latam-Best: Chile", {"", "", "Chile"}},
      {"Latam-Worst: Bolivia", {"", "", "Bolivia"}},
      {"EU-Worst:   Greece", {"", "", "Greece"}},
      {"Asia-Worst: Saudi Arabia", {"", "", "Saudi Arabia"}},
      {"US-Worst:   Hawaii", {"", "Hawaii", "United States"}},
      {"(9b) Turkey", {"", "", "Turkey"}},
      {"(9b) Brazil", {"", "", "Brazil"}},
      {"(9b) Belgium", {"", "", "Belgium"}},
      {"(9b) Ecuador", {"", "", "Ecuador"}},
  };

  std::vector<geo::Location> focus;
  for (const auto& [label, location] : locations) focus.push_back(location);
  const synth::World world(bench::focus_world(focus, 50));
  synth::BehaviorConfig behavior;
  behavior.days = 10;
  synth::SessionGenerator generator(world, behavior, 9);
  const auto streams = generator.generate();
  core::Pipeline pipeline(bench::fast_pipeline());
  core::Dataset dataset = pipeline.run(world, streams);

  util::Table table({"location", "p5|p25[p50]p75|p95 [ms]", "server",
                     "corrected dist [km]", "median/1000km"});
  for (const auto& [label, location] : locations) {
    const auto aggregate = bench::aggregate_for(
        dataset.entries, location, "League of Legends",
        pipeline.config().analysis);
    if (!aggregate.has_value() || !aggregate->box.has_value()) {
      table.add_row({label, "(no data)"});
      continue;
    }
    const double normalized =
        aggregate->avg_corrected_distance_km > 0
            ? aggregate->box->p50 /
                  (aggregate->avg_corrected_distance_km / 1000.0)
            : 0.0;
    table.add_row({label, bench::boxplot_cell(*aggregate->box),
                   aggregate->server_city,
                   util::fmt_double(aggregate->avg_corrected_distance_km, 0),
                   util::fmt_double(normalized, 1)});
  }
  table.print(std::cout);

  bench::note("");
  bench::note(
      "Paper shape check: the four sub-500km locations (Korea, Illinois, "
      "Netherlands, Chile) lead; Bolivia's 75th percentile rivals Hawaii's "
      "despite 3.5x less distance; Greece ~25 ms above Saudi Arabia at a "
      "comparable distance; Turkey's distance-normalized latency is the "
      "worst of the set (371 km from Istanbul).");
  return 0;
}
