// Extension (§6, last paragraph): "while it is reasonable to assume that
// latency spikes affect game retention, we think it is interesting to put
// specific numbers on retention rate as a function of latency."
//
// This bench does exactly that over the synthetic population: the
// probability that a streamer keeps playing the same game at stream end
// ("retention"), bucketed by the number and size of the latency spikes
// Tero detected in the stream, plus the same curve against the stream's
// median latency level.

#include <iostream>

#include "analysis/anomalies.hpp"
#include "bench/common.hpp"
#include "stats/descriptive.hpp"
#include "synth/sessions.hpp"
#include "tero/channel.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  bench::header("Extension: game retention as a function of latency (Sec. 6)");

  synth::WorldConfig world_config;
  world_config.num_streamers = 3000;
  world_config.seed = 66;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = 16;
  synth::SessionGenerator generator(world, behavior, 67);
  const auto true_streams = generator.generate();

  auto channel = core::make_noise_channel();
  util::Rng rng(68);
  analysis::AnalysisConfig config;

  struct StreamSummary {
    int spikes = 0;
    double max_spike_ms = 0.0;
    double median_ms = 0.0;
    bool retained = false;  // did NOT change game at stream end
  };
  std::vector<StreamSummary> summaries;
  for (const auto& true_stream : true_streams) {
    analysis::Stream stream;
    stream.streamer = "s";
    stream.game = true_stream.game;
    for (const auto& point : true_stream.points) {
      if (auto m = channel->extract(point, ocr::ui_spec_for(stream.game),
                                    rng)) {
        stream.points.push_back(*m);
      }
    }
    if (stream.points.size() < 6) continue;
    StreamSummary summary;
    std::vector<double> values;
    for (const auto& point : stream.points) {
      values.push_back(point.latency_ms);
    }
    summary.median_ms = stats::percentile(values, 50.0);
    const auto clean = analysis::clean_stream(std::move(stream), config);
    summary.spikes = static_cast<int>(clean.spikes.size());
    for (const auto& spike : clean.spikes) {
      summary.max_spike_ms = std::max(summary.max_spike_ms,
                                      spike.magnitude_ms());
    }
    summary.retained = !true_stream.ended_with_game_change;
    summaries.push_back(summary);
  }
  bench::note("streams analyzed: " + std::to_string(summaries.size()));

  // Retention vs detected spike count.
  bench::note("");
  bench::note("Retention rate by spikes detected in the stream:");
  util::Table by_count({"spikes in stream", "streams", "retention"});
  for (int bucket = 0; bucket <= 3; ++bucket) {
    std::size_t total = 0;
    std::size_t kept = 0;
    for (const auto& summary : summaries) {
      const bool in_bucket =
          bucket < 3 ? summary.spikes == bucket : summary.spikes >= 3;
      if (!in_bucket) continue;
      ++total;
      if (summary.retained) ++kept;
    }
    if (total == 0) continue;
    by_count.add_row({bucket < 3 ? std::to_string(bucket) : ">=3",
                      std::to_string(total),
                      util::fmt_percent(static_cast<double>(kept) / total)});
  }
  by_count.print(std::cout);

  // Retention vs largest spike size.
  bench::note("");
  bench::note("Retention rate by largest spike magnitude:");
  util::Table by_size({"largest spike", "streams", "retention"});
  const std::vector<std::pair<double, double>> bands = {
      {0.0, 0.5}, {8.0, 20.0}, {20.0, 40.0}, {40.0, 1e9}};
  const std::vector<std::string> labels = {"none", "8-20 ms", "20-40 ms",
                                           ">=40 ms"};
  for (std::size_t b = 0; b < bands.size(); ++b) {
    std::size_t total = 0;
    std::size_t kept = 0;
    for (const auto& summary : summaries) {
      const bool none = summary.spikes == 0;
      const bool in_band =
          b == 0 ? none
                 : (!none && summary.max_spike_ms >= bands[b].first &&
                    summary.max_spike_ms < bands[b].second);
      if (!in_band) continue;
      ++total;
      if (summary.retained) ++kept;
    }
    if (total == 0) continue;
    by_size.add_row({labels[b], std::to_string(total),
                     util::fmt_percent(static_cast<double>(kept) / total)});
  }
  by_size.print(std::cout);

  // Retention vs the stream's base latency level (not spikes): the paper
  // hypothesizes spikes, not levels, drive abandonment — players acclimate
  // to their region's level.
  bench::note("");
  bench::note("Retention rate by stream median latency (level, not spikes):");
  util::Table by_level({"median latency", "streams", "retention"});
  const std::vector<std::pair<double, std::string>> levels = {
      {30.0, "< 30 ms"}, {60.0, "30-60 ms"}, {120.0, "60-120 ms"},
      {1e9, ">= 120 ms"}};
  double previous = 0.0;
  for (const auto& [upper, label] : levels) {
    std::size_t total = 0;
    std::size_t kept = 0;
    for (const auto& summary : summaries) {
      if (summary.median_ms >= previous && summary.median_ms < upper) {
        ++total;
        if (summary.retained) ++kept;
      }
    }
    previous = upper;
    if (total == 0) continue;
    by_level.add_row({label, std::to_string(total),
                      util::fmt_percent(static_cast<double>(kept) / total)});
  }
  by_level.print(std::cout);

  bench::note("");
  bench::note(
      "Expected shape: retention falls with spike count and spike size, but "
      "is nearly flat in the base latency level — players tolerate their "
      "region's level and react to *changes* (the premise behind LatGap and "
      "the spike-centric behaviour analysis).");
  return 0;
}
