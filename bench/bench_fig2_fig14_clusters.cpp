// Reproduces Fig. 2 and Fig. 14: similar-latency clusters per location for
// League of Legends, and their sensitivity to the cluster-merge factor
// (x0.5 / x1.0 / x1.5 LatGap).
//
// Paper shape: most locations have only one or two clusters heavier than
// 10%; smaller merge factors split clusters, larger factors fuse them.

#include <iostream>

#include "bench/common.hpp"
#include "synth/sessions.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  bench::header("Fig. 2 / Fig. 14: latency clusters per location");

  const std::vector<std::pair<std::string, geo::Location>> locations = {
      {"Ile-de-France (FR)", {"", "Ile-de-France", "France"}},
      {"Catalunya (ES)", {"", "Catalunya", "Spain"}},
      {"Buenos Aires (AR)", {"", "Buenos Aires", "Argentina"}},
      {"Sao Paulo (BR)", {"", "Sao Paulo", "Brazil"}},
      {"Ontario (CA)", {"", "Ontario", "Canada"}},
      {"California (US)", {"", "California", "United States"}},
  };
  std::vector<geo::Location> focus;
  for (const auto& [label, location] : locations) focus.push_back(location);

  const synth::World world(bench::focus_world(focus, 50));
  synth::BehaviorConfig behavior;
  behavior.days = 10;
  // More off-primary play so secondary clusters are visible (Fig. 2 shows
  // several per location).
  behavior.p_alt_server_session = 0.12;
  synth::SessionGenerator generator(world, behavior, 33);
  const auto streams = generator.generate();

  for (double factor : {0.5, 1.0, 1.5}) {
    bench::note("");
    bench::note("--- merge factor x" + util::fmt_double(factor, 1) +
                " LatGap ---");
    auto config = bench::fast_pipeline(7);
    config.analysis.cluster_merge_factor = factor;
    core::Pipeline pipeline(config);
    core::Dataset dataset = pipeline.run(world, streams);

    util::Table table({"location", "clusters (center ms @ weight)",
                       ">10% clusters"});
    for (const auto& [label, location] : locations) {
      const auto aggregate =
          bench::aggregate_for(dataset.entries, location,
                               "League of Legends", config.analysis);
      if (!aggregate.has_value()) {
        table.add_row({label, "(no data)"});
        continue;
      }
      std::string cells;
      int heavy = 0;
      for (const auto& cluster : aggregate->clusters) {
        if (!cells.empty()) cells += "  ";
        cells += util::fmt_double(cluster.center(), 0) + "ms@" +
                 util::fmt_percent(cluster.weight, 0);
        if (cluster.weight > 0.10) ++heavy;
      }
      table.add_row({label, cells, std::to_string(heavy)});
    }
    table.print(std::cout);
  }

  bench::note("");
  bench::note(
      "Paper shape check: at x1.0 most locations carry one or two clusters "
      "heavier than 10% (primary server + the occasional alternate crowd); "
      "x0.5 splits them, x1.5 fuses neighbours (Fig. 14).");
  return 0;
}
