// Reproduces Fig. 5: (a) the latency distributions of correctly extracted,
// incorrectly extracted, and missed measurements (checking that misses and
// errors are NOT biased toward high latencies); (b) how many incorrect
// measurements the data-analysis stage discards vs misses.
//
// Paper: the three distributions in 5a overlap (no bias); data analysis
// catches ~70% of incorrect measurements, and what escapes is
// small-perturbation confusion (e.g. 101 -> 107) within LatGap of its
// neighbours (§4.2.3).

#include <iostream>

#include "analysis/anomalies.hpp"
#include "bench/common.hpp"
#include "ocr/extractor.hpp"
#include "synth/sessions.hpp"
#include "synth/thumbnail.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  bench::header("Fig. 5a: error distributions over true latency (full OCR)");

  // Part (a): run the full OCR channel over thumbnails whose true latency
  // spans the realistic range, and histogram outcomes by true latency.
  const auto& spec = ocr::ui_spec_for("League of Legends");
  const synth::ThumbnailRenderer renderer;
  const ocr::LatencyExtractor extractor;
  util::Rng rng(51);

  constexpr int kBins = 6;
  constexpr int kBinWidth = 50;  // 0-300 ms
  int correct[kBins] = {};
  int incorrect[kBins] = {};
  int missing[kBins] = {};
  constexpr int kThumbs = 1500;
  for (int i = 0; i < kThumbs; ++i) {
    const int truth = static_cast<int>(rng.uniform_int(8, 299));
    const int bin = std::min(kBins - 1, truth / kBinWidth);
    const auto rendered = renderer.render(spec, truth, rng);
    if (!rendered.latency_visible) continue;
    const auto reading = extractor.extract(rendered.image, spec);
    if (!reading.primary.has_value()) {
      ++missing[bin];
    } else if (*reading.primary == truth) {
      ++correct[bin];
    } else {
      ++incorrect[bin];
    }
  }
  util::Table hist({"true latency bin", "correct", "incorrect", "missing",
                    "miss rate"});
  for (int b = 0; b < kBins; ++b) {
    const int total = correct[b] + incorrect[b] + missing[b];
    hist.add_row({std::to_string(b * kBinWidth) + "-" +
                      std::to_string((b + 1) * kBinWidth) + " ms",
                  std::to_string(correct[b]), std::to_string(incorrect[b]),
                  std::to_string(missing[b]),
                  total > 0 ? util::fmt_percent(
                                  static_cast<double>(missing[b]) / total)
                            : "-"});
  }
  hist.print(std::cout);
  bench::note(
      "Paper shape check: miss/error rates are flat across latency bins — "
      "no bias of missing/incorrect measurements toward high latencies.");

  // Part (b): pump noisy streams through the data-analysis module and see
  // which incorrect measurements it discards/corrects vs misses.
  bench::header("Fig. 5b: incorrect measurements caught by data-analysis");
  // A latency-diverse population (20-150 ms bases) so digit drops span the
  // caught/escaped boundary like the paper's data does.
  const synth::World world(bench::focus_world(
      {geo::Location{"", "Illinois", "United States"},
       geo::Location{"", "", "Bolivia"},
       geo::Location{"", "", "Saudi Arabia"},
       geo::Location{"", "Hawaii", "United States"}},
      40));
  synth::BehaviorConfig behavior;
  behavior.days = 10;
  synth::SessionGenerator generator(world, behavior, 52);
  const auto streams = generator.generate();

  auto channel = core::make_noise_channel();
  analysis::AnalysisConfig analysis_config;
  util::Rng channel_rng(53);
  std::size_t injected_wrong = 0;
  std::size_t caught = 0;     // discarded or corrected
  std::size_t escaped = 0;    // retained with the wrong value
  std::size_t escaped_small = 0;  // escaped and within LatGap of truth
  for (const auto& true_stream : streams) {
    analysis::Stream stream;
    stream.streamer = "s";
    stream.game = true_stream.game;
    std::vector<int> truths;
    for (const auto& point : true_stream.points) {
      if (auto m = channel->extract(point, ocr::ui_spec_for(stream.game),
                                    channel_rng)) {
        stream.points.push_back(*m);
        truths.push_back(point.latency_ms);
      }
    }
    std::vector<std::pair<double, int>> wrong_by_time;  // (time, truth)
    for (std::size_t i = 0; i < stream.points.size(); ++i) {
      if (stream.points[i].latency_ms != truths[i]) {
        ++injected_wrong;
        wrong_by_time.emplace_back(stream.points[i].time_s, truths[i]);
      }
    }
    const auto clean = analysis::clean_stream(std::move(stream),
                                              analysis_config);
    // A wrong measurement "escaped" if a retained point at its timestamp
    // still differs from the truth.
    for (const auto& [t, truth] : wrong_by_time) {
      bool retained_wrong = false;
      bool retained_small = false;
      for (const auto& retained : clean.retained) {
        for (const auto& point : retained.points) {
          if (point.time_s == t && point.latency_ms != truth) {
            retained_wrong = true;
            retained_small = std::abs(point.latency_ms - truth) <=
                             analysis_config.lat_gap_ms;
          }
        }
      }
      if (retained_wrong) {
        ++escaped;
        if (retained_small) ++escaped_small;
      } else {
        ++caught;
      }
    }
  }
  const double escape_rate =
      injected_wrong > 0 ? static_cast<double>(escaped) / injected_wrong : 0;
  util::Table summary({"metric", "measured", "paper"});
  summary.add_row({"incorrect measurements injected",
                   std::to_string(injected_wrong), "-"});
  summary.add_row({"caught (discarded/corrected)",
                   util::fmt_percent(1.0 - escape_rate), "~70%"});
  summary.add_row({"escaped data-analysis", util::fmt_percent(escape_rate),
                   "~30%"});
  summary.add_row(
      {"escapees within LatGap of truth",
       escaped > 0 ? util::fmt_percent(static_cast<double>(escaped_small) /
                                       escaped)
                   : "-",
       ">50% (e.g. 101 read as 107)"});
  summary.print(std::cout);
  return 0;
}
