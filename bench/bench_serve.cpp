// Serving-layer benchmark (DESIGN.md §9): throughput scaling of the sharded
// QueryService with shard/thread count, cache effectiveness, and the
// admission-control overload story. Writes BENCH_serve.json (parse-checked
// by scripts/ci.sh bench-smoke via bench_json_check).
//
//   bench_serve [--tiny]
//
// --tiny shrinks the world and query counts to CI-smoke scale (~1 s).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "serve/loadgen.hpp"
#include "serve/service.hpp"
#include "synth/sessions.hpp"
#include "tero/pipeline.hpp"
#include "util/thread_pool.hpp"

using namespace tero;

namespace {

struct ClosedLoopRow {
  std::size_t shards = 0;
  std::size_t threads = 0;
  serve::LoadTestReport report;
  double hit_rate = 0.0;
};

std::vector<serve::SnapshotEntry> build_entries(bool tiny) {
  synth::WorldConfig world_config;
  world_config.seed = 11;
  world_config.num_streamers = tiny ? 60 : 240;
  world_config.p_twitter = 0.9;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = tiny ? 3 : 5;
  synth::SessionGenerator generator(world, behavior, 3);
  const auto streams = generator.generate();

  core::TeroConfig config = bench::fast_pipeline(11);
  core::Pipeline pipeline(config);
  const core::Dataset dataset = pipeline.run(world, streams);
  return serve::entries_from(dataset);
}

ClosedLoopRow run_closed(const std::vector<serve::SnapshotEntry>& entries,
                         std::size_t shards, std::size_t threads,
                         std::size_t queries, bool with_metrics) {
  obs::MetricsRegistry registry;
  serve::ServeConfig config;
  config.shards = shards;
  if (with_metrics) config.metrics = &registry;
  serve::QueryService service(config);
  service.publish(std::vector<serve::SnapshotEntry>(entries));

  serve::LoadGenConfig load;
  load.queries = queries;
  load.threads = threads;
  load.seed = 99;

  util::ThreadPool pool(threads);
  ClosedLoopRow row;
  row.shards = shards;
  row.threads = threads;
  row.report =
      serve::run_loadtest(service, load, threads > 1 ? &pool : nullptr);
  const double lookups =
      static_cast<double>(service.cache_hits() + service.cache_misses());
  if (lookups > 0) {
    row.hit_rate = static_cast<double>(service.cache_hits()) / lookups;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  const std::size_t queries = tiny ? 20000 : 400000;
  const std::size_t hw = util::ThreadPool::resolve(0);

  bench::header("serve: snapshot build");
  const auto entries = build_entries(tiny);
  bench::note("snapshot entries: " + std::to_string(entries.size()) +
              ", queries per run: " + std::to_string(queries));

  // ---- closed loop: throughput vs shards and threads -----------------------
  bench::header("serve: closed-loop throughput (no metrics attached)");
  std::vector<ClosedLoopRow> rows;
  util::Table table({"shards", "threads", "kqps", "hit rate", "checksum"});
  const std::vector<std::size_t> shard_counts = tiny
                                                    ? std::vector<std::size_t>{1, 4}
                                                    : std::vector<std::size_t>{1, 2, 4, 8};
  std::vector<std::size_t> thread_counts{1};
  if (hw >= 4) thread_counts.push_back(4);
  if (hw > 4) {
    thread_counts.push_back(hw);
  } else if (hw <= 2) {
    // Even on small machines, exercise the concurrent path (and show the
    // checksum staying put) with an oversubscribed pool.
    thread_counts.push_back(2);
  }
  for (const std::size_t shards : shard_counts) {
    for (const std::size_t threads : thread_counts) {
      ClosedLoopRow row = run_closed(entries, shards, threads, queries,
                                     /*with_metrics=*/false);
      char checksum[32];
      std::snprintf(checksum, sizeof(checksum), "%016llx",
                    static_cast<unsigned long long>(row.report.checksum));
      table.add_row({std::to_string(shards), std::to_string(threads),
                     util::fmt_double(row.report.achieved_qps / 1e3, 1),
                     util::fmt_percent(row.hit_rate, 1), checksum});
      rows.push_back(std::move(row));
    }
  }
  table.print(std::cout);
  bench::note("all checksums must match: responses are pure functions of "
              "(query, snapshot), so shard/thread layout cannot change "
              "results");

  // ---- service latency under metrics (one mid-size config) ----------------
  bench::header("serve: service latency (metrics attached)");
  const ClosedLoopRow latency_row =
      run_closed(entries, 4, hw >= 4 ? 4 : hw, queries / 4,
                 /*with_metrics=*/true);
  bench::note("p50/p95/p99: " +
              util::fmt_double(latency_row.report.p50_ms * 1e3, 1) + " / " +
              util::fmt_double(latency_row.report.p95_ms * 1e3, 1) + " / " +
              util::fmt_double(latency_row.report.p99_ms * 1e3, 1) + " us");

  // ---- open loop: overload with admission control --------------------------
  // Offer twice the measured single-shard capacity but admit only a
  // quarter of the offered rate: the bucket sheds the excess and the p99 of
  // *served* queries stays in the same range as the unloaded run.
  bench::header("serve: open-loop overload (admission control)");
  const double capacity_qps = rows.front().report.achieved_qps;
  const double offered_qps = 2.0 * capacity_qps;
  obs::MetricsRegistry registry;
  serve::ServeConfig config;
  config.shards = 4;
  config.admission_rate_qps = offered_qps / 4.0;
  config.admission_burst = 256.0;
  config.metrics = &registry;
  serve::QueryService service(config);
  service.publish(std::vector<serve::SnapshotEntry>(entries));
  serve::LoadGenConfig load;
  load.queries = queries / 2;
  load.threads = hw;
  load.seed = 99;
  load.offered_qps = offered_qps;
  util::ThreadPool pool(hw);
  const auto overload =
      serve::run_loadtest(service, load, hw > 1 ? &pool : nullptr);
  const double shed_fraction =
      overload.issued > 0 ? static_cast<double>(overload.shed) /
                                static_cast<double>(overload.issued)
                          : 0.0;
  bench::note("offered " + util::fmt_double(offered_qps / 1e3, 0) +
              " kqps, admitted cap " +
              util::fmt_double(config.admission_rate_qps / 1e3, 0) +
              " kqps -> shed " + util::fmt_percent(shed_fraction, 1) +
              ", served p99 " +
              util::fmt_double(overload.p99_ms * 1e3, 1) + " us");

  // ---- obs: virtual-time scrape overhead + SLO verdicts --------------------
  // The timeline scrapes happen inside run_loadtest's *serial* replay (after
  // the parallel fan-out), so the honest overhead number times the whole
  // call — scrape-on vs scrape-off, identical load either way. The arms run
  // interleaved (off, on, off, on, ...) and we keep each arm's minimum:
  // back-to-back pairs see the same machine state, so frequency/cache drift
  // cancels instead of landing entirely on whichever arm ran second. The
  // acceptance budget is 5% (recorded in the JSON for the CI trend).
  bench::header("serve: obs timeline overhead (scrape on vs off)");
  const std::size_t obs_queries = queries / 2;
  std::size_t obs_snapshots = 0;
  std::vector<obs::SloStatus> obs_slos;
  std::size_t obs_alerts = 0;
  bool obs_captured = false;
  const auto obs_arm = [&](bool scrape) {
    obs::MetricsRegistry obs_registry;
    obs::TimelineConfig timeline_config;
    timeline_config.prefixes = {"tero.loadgen."};
    obs::MetricsTimeline timeline(obs_registry, timeline_config);
    obs::SloTracker tracker;
    tracker.add(
        "slo latency: p99(tero.loadgen.latency_ms) < 15ms over 10s "
        "window, budget 5%");
    tracker.add(
        "slo degraded: rate(tero.loadgen.unavailable) < 1 over 10s "
        "window, budget 1%");
    tracker.attach(timeline);
    serve::ServeConfig obs_config;
    obs_config.shards = 4;
    serve::QueryService obs_service(obs_config);
    obs_service.publish(std::vector<serve::SnapshotEntry>(entries));
    serve::LoadGenConfig obs_load;
    obs_load.queries = obs_queries;
    obs_load.threads = hw;
    obs_load.seed = 99;
    obs_load.metrics = &obs_registry;  // both arms pay for the counters...
    obs_load.exemplar_seed = 99;
    if (scrape) obs_load.timeline = &timeline;  // ...only one scrapes
    util::ThreadPool obs_pool(hw);
    const auto start = std::chrono::steady_clock::now();
    (void)serve::run_loadtest(obs_service, obs_load,
                              hw > 1 ? &obs_pool : nullptr);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (scrape && !obs_captured) {
      obs_snapshots = timeline.snapshot_count();
      obs_slos = tracker.status();
      obs_alerts = tracker.alerts().size();
      obs_captured = true;
    }
    return ms;
  };
  double scrape_off_ms = 0.0;
  double scrape_on_ms = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const double off = obs_arm(false);
    const double on = obs_arm(true);
    scrape_off_ms = rep == 0 ? off : std::min(scrape_off_ms, off);
    scrape_on_ms = rep == 0 ? on : std::min(scrape_on_ms, on);
  }
  const double scrape_overhead =
      scrape_off_ms > 0.0 ? (scrape_on_ms - scrape_off_ms) / scrape_off_ms
                          : 0.0;
  bench::note("scrape off " + util::fmt_double(scrape_off_ms, 1) +
              " ms, on " + util::fmt_double(scrape_on_ms, 1) + " ms -> " +
              util::fmt_percent(scrape_overhead, 1) + " overhead (budget 5%), " +
              std::to_string(obs_snapshots) + " snapshots, " +
              std::to_string(obs_alerts) + " alert(s)");
  for (const auto& slo : obs_slos) {
    bench::note("  slo " + slo.slo + ": measured " +
                util::fmt_double(slo.measured, 2) + ", burn slow " +
                util::fmt_double(slo.burn_slow, 2) +
                (slo.firing ? " FIRING" : " ok"));
  }

  // ---- machine-readable report --------------------------------------------
  std::ofstream out("BENCH_serve.json");
  out << "{\n  \"closed_loop\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    out << "    {\"shards\": " << row.shards
        << ", \"threads\": " << row.threads
        << ", \"queries\": " << row.report.issued
        << ", \"qps\": " << row.report.achieved_qps
        << ", \"hit_rate\": " << row.hit_rate << ", \"checksum\": \""
        << std::hex << row.report.checksum << std::dec << "\"}"
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ],\n";
  out << "  \"latency\": {\"p50_ms\": " << latency_row.report.p50_ms
      << ", \"p95_ms\": " << latency_row.report.p95_ms
      << ", \"p99_ms\": " << latency_row.report.p99_ms << "},\n";
  out << "  \"overload\": {\"offered_qps\": " << offered_qps
      << ", \"admission_qps\": " << config.admission_rate_qps
      << ", \"shed_fraction\": " << shed_fraction
      << ", \"served_p99_ms\": " << overload.p99_ms << "},\n";
  out << "  \"obs\": {\"scrape_off_ms\": " << scrape_off_ms
      << ", \"scrape_on_ms\": " << scrape_on_ms
      << ", \"overhead_fraction\": " << scrape_overhead
      << ", \"overhead_budget\": 0.05"
      << ", \"snapshots\": " << obs_snapshots
      << ", \"alerts\": " << obs_alerts << ", \"slos\": [";
  for (std::size_t i = 0; i < obs_slos.size(); ++i) {
    const auto& slo = obs_slos[i];
    out << (i > 0 ? ", " : "") << "{\"slo\": \"" << slo.slo
        << "\", \"measured\": " << slo.measured
        << ", \"burn_fast\": " << slo.burn_fast
        << ", \"burn_slow\": " << slo.burn_slow << ", \"firing\": "
        << (slo.firing ? "true" : "false") << "}";
  }
  out << "]}\n";
  out << "}\n";
  bench::note("wrote BENCH_serve.json");
  return 0;
}
