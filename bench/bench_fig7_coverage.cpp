// Reproduces Fig. 7: the distribution of Tero's users by continent compared
// against Internet users and global population.
//
// Paper shape: Tero's users over-represent NA/EU/SA (where Twitch is
// popular) and under-represent Asia (Chinese/Indian platforms compete) and
// Africa, relative to both Internet users and population.

#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "synth/world.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  bench::header("Fig. 7: Tero users vs Internet users vs population");

  synth::WorldConfig config;
  config.num_streamers = 30000;
  config.seed = 7;
  const synth::World world(config);

  std::map<std::string, double> tero_share;
  for (const auto& streamer : world.streamers()) {
    tero_share[streamer.home->continent] += 1.0;
  }
  for (auto& [continent, count] : tero_share) {
    count /= static_cast<double>(world.streamers().size());
  }

  util::Table table({"continent", "Tero users", "Internet users",
                     "population"});
  for (const auto& share : geo::Gazetteer::world().continent_shares()) {
    table.add_row({share.continent,
                   util::fmt_percent(tero_share[share.continent], 1),
                   util::fmt_percent(share.internet_users, 1),
                   util::fmt_percent(share.population, 1)});
  }
  table.print(std::cout);

  bench::note("");
  bench::note(
      "Paper shape check: Tero heavily over-represents NA/EU/SA and "
      "under-represents AS/AF relative to Internet users and population "
      "(Twitch's market is the Americas + Europe + KR/JP; China/India use "
      "competing platforms, §5.1).");
  return 0;
}
