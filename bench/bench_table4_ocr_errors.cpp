// Reproduces Table 4: miss and error rates of the three OCR engines and of
// Tero's combination, over synthetic thumbnails with the paper's corruption
// mix (occlusion, low-contrast fonts, clock overlays, encoder noise).
//
// Paper: EasyOCR 5.75/8.31, PaddleOCR 5.84/9.96, Tesseract 15.52/8.77,
// Tero 28.37/3.7 (% not extracted / % incorrect of extracted). Expected
// *shape*: the combination misses more than any single engine but is 2-3x
// more accurate on what it does extract; digit drops dominate errors.

#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "ocr/extractor.hpp"
#include "synth/thumbnail.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  bench::header("Table 4: OCR miss and error rates");
  constexpr int kThumbnails = 2500;
  const auto& spec = ocr::ui_spec_for("League of Legends");
  const synth::ThumbnailRenderer renderer;
  const ocr::LatencyExtractor extractor;
  util::Rng rng(2024);

  struct Counter {
    int missed = 0;
    int wrong = 0;
    int extracted = 0;
    int digit_drops = 0;
  };
  std::map<std::string, Counter> counters;  // engine name -> counts
  const std::vector<std::string> engine_names = {
      extractor.engines()[0]->name(), extractor.engines()[1]->name(),
      extractor.engines()[2]->name()};

  for (int i = 0; i < kThumbnails; ++i) {
    const int truth = static_cast<int>(rng.uniform_int(8, 299));
    // Roll the corruption mix conditioned on a visible measurement.
    const auto thumbnail = renderer.render_with(
        spec, truth, synth::roll_corruption(renderer.config(), rng), rng);

    auto score = [&](const std::string& name, std::optional<int> value) {
      auto& counter = counters[name];
      if (!value.has_value()) {
        ++counter.missed;
        return;
      }
      ++counter.extracted;
      if (*value != truth) {
        ++counter.wrong;
        const std::string truth_str = std::to_string(truth);
        const std::string got = std::to_string(*value);
        if (got.size() < truth_str.size() &&
            truth_str.compare(truth_str.size() - got.size(), got.size(),
                              got) == 0) {
          ++counter.digit_drops;
        }
      }
    };

    for (std::size_t e = 0; e < engine_names.size(); ++e) {
      score(engine_names[e],
            extractor.extract_with_engine(thumbnail.image, spec, e));
    }
    score("Tero", extractor.extract(thumbnail.image, spec).primary);
  }

  util::Table table(
      {"engine", "not extracted", "incorrect (of extracted)",
       "digit drops (of errors)"});
  auto emit = [&](const std::string& label, const std::string& key) {
    const auto& counter = counters[key];
    const double miss =
        static_cast<double>(counter.missed) / kThumbnails;
    const double error =
        counter.extracted > 0
            ? static_cast<double>(counter.wrong) / counter.extracted
            : 0.0;
    const double drops =
        counter.wrong > 0
            ? static_cast<double>(counter.digit_drops) / counter.wrong
            : 0.0;
    table.add_row({label, util::fmt_percent(miss),
                   util::fmt_percent(error), util::fmt_percent(drops, 1)});
  };
  emit("zonenet   (EasyOCR-like)", engine_names[1]);
  emit("profiler  (PaddleOCR-like)", engine_names[2]);
  emit("templat   (Tesseract-like)", engine_names[0]);
  emit("Tero (2-of-3 vote)", "Tero");
  table.print(std::cout);

  bench::note("");
  bench::note("Paper (Table 4): EasyOCR 5.75/8.31, PaddleOCR 5.84/9.96, "
              "Tesseract 15.52/8.77, Tero 28.37/3.70 (miss%/error%). "
              "Expected shape: combination trades recall for a 2-3x lower "
              "error rate; ~68% of its errors are digit drops (§3.2.1).");
  return 0;
}
