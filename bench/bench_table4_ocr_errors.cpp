// Reproduces Table 4: miss and error rates of the three OCR engines and of
// Tero's combination, over synthetic thumbnails with the paper's corruption
// mix (occlusion, low-contrast fonts, clock overlays, encoder noise).
//
// Paper: EasyOCR 5.75/8.31, PaddleOCR 5.84/9.96, Tesseract 15.52/8.77,
// Tero 28.37/3.7 (% not extracted / % incorrect of extracted). Expected
// *shape*: the combination misses more than any single engine but is 2-3x
// more accurate on what it does extract; digit drops dominate errors.

#include <array>
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "ocr/extractor.hpp"
#include "synth/thumbnail.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace tero;

int main() {
  bench::header("Table 4: OCR miss and error rates");
  constexpr int kThumbnails = 2500;
  const auto& spec = ocr::ui_spec_for("League of Legends");
  const synth::ThumbnailRenderer renderer;
  const ocr::LatencyExtractor extractor;

  struct Counter {
    int missed = 0;
    int wrong = 0;
    int extracted = 0;
    int digit_drops = 0;
  };
  std::map<std::string, Counter> counters;  // engine name -> counts
  const std::vector<std::string> engine_names = {
      extractor.engines()[0]->name(), extractor.engines()[1]->name(),
      extractor.engines()[2]->name()};

  // Rasterize + OCR in parallel: thumbnail i draws from Rng::indexed(seed, i)
  // and fills slot i, so the table is identical for any thread count.
  // Scoring stays serial below.
  struct Readings {
    int truth = 0;
    std::array<std::optional<int>, 3> engines;
    std::optional<int> tero;
  };
  util::ThreadPool pool;  // hardware_concurrency
  const auto readings = util::parallel_map(
      &pool, kThumbnails, 16, [&](std::size_t i) {
        util::Rng rng = util::Rng::indexed(2024, i);
        Readings out;
        out.truth = static_cast<int>(rng.uniform_int(8, 299));
        // Roll the corruption mix conditioned on a visible measurement.
        const auto thumbnail = renderer.render_with(
            spec, out.truth, synth::roll_corruption(renderer.config(), rng),
            rng);
        for (std::size_t e = 0; e < out.engines.size(); ++e) {
          out.engines[e] =
              extractor.extract_with_engine(thumbnail.image, spec, e);
        }
        out.tero = extractor.extract(thumbnail.image, spec).primary;
        return out;
      });

  for (const auto& reading : readings) {
    const int truth = reading.truth;
    auto score = [&](const std::string& name, std::optional<int> value) {
      auto& counter = counters[name];
      if (!value.has_value()) {
        ++counter.missed;
        return;
      }
      ++counter.extracted;
      if (*value != truth) {
        ++counter.wrong;
        const std::string truth_str = std::to_string(truth);
        const std::string got = std::to_string(*value);
        if (got.size() < truth_str.size() &&
            truth_str.compare(truth_str.size() - got.size(), got.size(),
                              got) == 0) {
          ++counter.digit_drops;
        }
      }
    };
    for (std::size_t e = 0; e < engine_names.size(); ++e) {
      score(engine_names[e], reading.engines[e]);
    }
    score("Tero", reading.tero);
  }

  util::Table table(
      {"engine", "not extracted", "incorrect (of extracted)",
       "digit drops (of errors)"});
  auto emit = [&](const std::string& label, const std::string& key) {
    const auto& counter = counters[key];
    const double miss =
        static_cast<double>(counter.missed) / kThumbnails;
    const double error =
        counter.extracted > 0
            ? static_cast<double>(counter.wrong) / counter.extracted
            : 0.0;
    const double drops =
        counter.wrong > 0
            ? static_cast<double>(counter.digit_drops) / counter.wrong
            : 0.0;
    table.add_row({label, util::fmt_percent(miss),
                   util::fmt_percent(error), util::fmt_percent(drops, 1)});
  };
  emit("zonenet   (EasyOCR-like)", engine_names[1]);
  emit("profiler  (PaddleOCR-like)", engine_names[2]);
  emit("templat   (Tesseract-like)", engine_names[0]);
  emit("Tero (2-of-3 vote)", "Tero");
  table.print(std::cout);

  bench::note("");
  bench::note("Paper (Table 4): EasyOCR 5.75/8.31, PaddleOCR 5.84/9.96, "
              "Tesseract 15.52/8.77, Tero 28.37/3.70 (miss%/error%). "
              "Expected shape: combination trades recall for a 2-3x lower "
              "error rate; ~68% of its errors are digit drops (§3.2.1).");
  return 0;
}
