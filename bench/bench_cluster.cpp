// Cluster benchmark (DESIGN.md §14): the deterministic multi-node serving
// cluster under membership churn. Three sweeps:
//
//   determinism — the same churny sweep (kill + join + republish mid-run) at
//                 1 thread and at the machine width; checksum, availability
//                 and the staleness distribution must match bit-for-bit.
//   kill        — single-node kill under full telemetry: availability floor,
//                 bounded staleness, and the breaker burn-rate SLO firing
//                 within one scrape of the kill.
//   join        — live resharding: remap fraction against the 2/n bound and
//                 the full-keyspace ownership audit.
//
// Writes BENCH_cluster.json (parse-checked by scripts/ci.sh cluster-smoke
// via bench_json_check; the availability floor and checksum match are awk
// gates there too).
//
//   bench_cluster [--tiny]
//
// --tiny shrinks the world and query counts to CI-smoke scale (~1 s).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "cluster/cluster.hpp"
#include "cluster/loadgen.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "serve/service.hpp"
#include "synth/sessions.hpp"
#include "tero/pipeline.hpp"
#include "util/thread_pool.hpp"

using namespace tero;

namespace {

std::vector<serve::SnapshotEntry> build_entries(bool tiny) {
  synth::WorldConfig world_config;
  world_config.seed = 11;
  world_config.num_streamers = tiny ? 60 : 240;
  world_config.p_twitter = 0.9;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = tiny ? 3 : 5;
  synth::SessionGenerator generator(world, behavior, 3);
  const auto streams = generator.generate();

  core::TeroConfig config = bench::fast_pipeline(11);
  core::Pipeline pipeline(config);
  const core::Dataset dataset = pipeline.run(world, streams);
  return serve::entries_from(dataset);
}

cluster::ClusterConfig base_config() {
  cluster::ClusterConfig config;
  config.nodes = 5;
  config.replicas = 2;
  config.staleness_budget = 2;
  config.seed = 21;
  return config;
}

std::string hex64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

struct SweepResult {
  cluster::ClusterLoadReport report;
  double wall_ms = 0.0;
};

/// One sweep against a caller-owned fleet. Route state mutates during the
/// sweep, so determinism comparisons rebuild an identical cluster per run.
SweepResult run_sweep(cluster::Cluster& fleet,
                      const std::vector<serve::SnapshotEntry>& entries,
                      const cluster::ClusterLoadConfig& load,
                      std::size_t threads) {
  fleet.publish(std::vector<serve::SnapshotEntry>(entries), 0);
  util::ThreadPool pool(threads);
  SweepResult result;
  const auto start = std::chrono::steady_clock::now();
  result.report =
      cluster::run_cluster_loadtest(fleet, load, threads > 1 ? &pool : nullptr);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  const std::size_t queries = tiny ? 16000 : 120000;
  const std::size_t hw = util::ThreadPool::resolve(0);
  const std::size_t wide = hw > 1 ? hw : 2;

  bench::header("cluster: snapshot build");
  const auto entries = build_entries(tiny);
  bench::note("snapshot entries: " + std::to_string(entries.size()) +
              ", queries per sweep: " + std::to_string(queries) +
              ", fleet: 5 nodes x 2 replicas, budget 2 epochs");

  // ---- determinism: churny sweep at 1 thread vs machine width -------------
  // Kill, join and republish all fire mid-sweep; the serial routing phase
  // fixes every decision before the parallel evaluation runs, so the
  // response checksum and every availability/staleness number must be
  // bit-identical across thread counts.
  bench::header("cluster: determinism under churn (1 thread vs " +
                std::to_string(wide) + ")");
  cluster::ClusterLoadConfig churn;
  churn.queries = queries;
  churn.seed = 21;
  churn.offered_qps = static_cast<double>(queries) / 4.0;  // 4 s virtual
  churn.events = {
      {cluster::ClusterEvent::Kind::kRepublish, 500, 0},
      {cluster::ClusterEvent::Kind::kKill, 1000, 1},
      {cluster::ClusterEvent::Kind::kJoin, 1500, 0},
      {cluster::ClusterEvent::Kind::kRepublish, 2000, 0},
      {cluster::ClusterEvent::Kind::kRestart, 2500, 1},
      {cluster::ClusterEvent::Kind::kRepublish, 3000, 0},
  };
  util::Table det_table(
      {"threads", "kqps", "avail", "stale", "p99 ms", "checksum"});
  cluster::Cluster serial_fleet(base_config());
  cluster::Cluster parallel_fleet(base_config());
  const SweepResult serial = run_sweep(serial_fleet, entries, churn, 1);
  const SweepResult parallel = run_sweep(parallel_fleet, entries, churn, wide);
  for (const auto* result : {&serial, &parallel}) {
    det_table.add_row(
        {result == &serial ? "1" : std::to_string(wide),
         util::fmt_double(static_cast<double>(result->report.issued) /
                              result->wall_ms, 1),
         util::fmt_percent(result->report.availability, 2),
         util::fmt_percent(result->report.stale_fraction, 2),
         util::fmt_double(result->report.p99_ms, 2),
         hex64(result->report.checksum)});
  }
  det_table.print(std::cout);
  const bool checksum_match =
      serial.report.checksum == parallel.report.checksum;
  const bool stats_match =
      serial.report.availability == parallel.report.availability &&
      serial.report.stale_age_hist == parallel.report.stale_age_hist &&
      serial.report.unavailable == parallel.report.unavailable;
  bench::note(std::string("checksums ") +
              (checksum_match ? "match" : "MISMATCH") +
              ", availability/staleness " +
              (stats_match ? "match" : "MISMATCH") +
              " (kill + join + republish all mid-sweep)");

  // ---- kill: availability floor + breaker SLO -----------------------------
  bench::header("cluster: single-node kill (telemetry + breaker SLO)");
  obs::MetricsRegistry registry;
  obs::TimelineConfig timeline_config;
  timeline_config.scrape_every_ms = 1000;
  timeline_config.prefixes = {"tero.cluster.", "tero.fault.breaker"};
  obs::MetricsTimeline timeline(registry, timeline_config);
  obs::SloTracker tracker;
  const std::string slo_name = tracker.add(
      "slo breaker: value(tero.fault.breaker{endpoint=node-1}) < 1 "
      "over 10s window, budget 1%");
  tracker.attach(timeline);

  constexpr std::uint64_t kKillMs = 3000;
  cluster::ClusterLoadConfig kill_load;
  kill_load.queries = queries;
  kill_load.seed = 21;
  kill_load.offered_qps = static_cast<double>(queries) / 8.0;  // 8 s virtual
  kill_load.metrics = &registry;
  kill_load.timeline = &timeline;
  // Republishes after the kill keep the epoch moving, so the dead leader's
  // ranges are served by followers that visibly lag — STALE{age}, never
  // past the budget.
  kill_load.events = {
      {cluster::ClusterEvent::Kind::kKill, kKillMs, 1},
      {cluster::ClusterEvent::Kind::kRepublish, 4000, 0},
      {cluster::ClusterEvent::Kind::kRepublish, 5000, 0},
      {cluster::ClusterEvent::Kind::kRepublish, 6000, 0},
  };
  cluster::ClusterConfig kill_config = base_config();
  kill_config.metrics = &registry;
  cluster::Cluster kill_cluster(kill_config);
  const SweepResult kill_run =
      run_sweep(kill_cluster, entries, kill_load, wide);

  std::uint64_t first_fire_ms = 0;
  for (const auto& alert : tracker.alerts()) {
    if (alert.firing && alert.slo == "breaker") {
      first_fire_ms = alert.t_ms;
      break;
    }
  }
  const bool slo_fired = tracker.fired(slo_name);
  const std::uint64_t fire_delay_ms =
      slo_fired && first_fire_ms > kKillMs ? first_fire_ms - kKillMs : 0;
  bench::note("availability " +
              util::fmt_percent(kill_run.report.availability, 3) +
              ", stale " +
              util::fmt_percent(kill_run.report.stale_fraction, 2) +
              " (max age " + std::to_string(kill_run.report.stale_age_max) +
              ", budget 2), failover attempts " +
              std::to_string(kill_run.report.failover_attempts));
  bench::note(std::string("breaker SLO ") +
              (slo_fired ? "fired " + std::to_string(fire_delay_ms) +
                               " ms after the kill"
                         : "DID NOT FIRE") +
              " (scrape interval 1000 ms)");
  bench::note("repl lag gauge of the dead node: " +
              util::fmt_double(timeline.gauge_value(
                                   "tero.cluster.repl_lag{node=node-1}"), 0) +
              " epochs at last scrape");

  // ---- join: live resharding ----------------------------------------------
  bench::header("cluster: live resharding (join mid-sweep)");
  cluster::ClusterLoadConfig join_load;
  join_load.queries = queries;
  join_load.seed = 21;
  join_load.offered_qps = static_cast<double>(queries) / 4.0;
  join_load.events = {{cluster::ClusterEvent::Kind::kJoin, 2000, 0}};
  cluster::Cluster join_cluster(base_config());
  const SweepResult join_run = run_sweep(join_cluster, entries, join_load, wide);
  const cluster::OwnershipAudit audit = join_cluster.audit();
  const double remap_fraction = join_cluster.last_remap().moved_fraction();
  bench::note("remap fraction " + util::fmt_percent(remap_fraction, 2) +
              " (bound 2/n = " +
              util::fmt_percent(2.0 / static_cast<double>(
                                          join_cluster.node_count()), 2) +
              "), ownership audit " + (audit.ok ? "ok" : "FAILED") + " (" +
              std::to_string(audit.keys) + " keys, " +
              std::to_string(audit.lost) + " lost, " +
              std::to_string(audit.double_owned) + " double-owned)");
  bench::note("availability through the join " +
              util::fmt_percent(join_run.report.availability, 3));

  // ---- machine-readable report --------------------------------------------
  std::ofstream out("BENCH_cluster.json");
  out << "{\n";
  out << "  \"determinism\": {\"threads_wide\": " << wide
      << ", \"checksum_serial\": \"" << hex64(serial.report.checksum)
      << "\", \"checksum_parallel\": \"" << hex64(parallel.report.checksum)
      << "\", \"checksum_match\": " << (checksum_match ? "true" : "false")
      << ", \"stats_match\": " << (stats_match ? "true" : "false")
      << ", \"availability\": " << serial.report.availability
      << ", \"stale_fraction\": " << serial.report.stale_fraction << "},\n";
  out << "  \"kill\": {\"availability\": " << kill_run.report.availability
      << ", \"stale_fraction\": " << kill_run.report.stale_fraction
      << ", \"stale_age_max\": " << kill_run.report.stale_age_max
      << ", \"staleness_budget\": 2"
      << ", \"failover_attempts\": " << kill_run.report.failover_attempts
      << ", \"unavailable\": " << kill_run.report.unavailable
      << ", \"slo_fired\": " << (slo_fired ? "true" : "false")
      << ", \"slo_fire_delay_ms\": " << fire_delay_ms
      << ", \"p50_ms\": " << kill_run.report.p50_ms
      << ", \"p99_ms\": " << kill_run.report.p99_ms << "},\n";
  out << "  \"join\": {\"remap_fraction\": " << remap_fraction
      << ", \"remap_bound\": "
      << 2.0 / static_cast<double>(join_cluster.node_count())
      << ", \"audit_ok\": " << (audit.ok ? "true" : "false")
      << ", \"keys\": " << audit.keys
      << ", \"availability\": " << join_run.report.availability << "},\n";
  out << "  \"throughput\": [\n";
  out << "    {\"threads\": 1, \"kqps\": "
      << static_cast<double>(serial.report.issued) / serial.wall_ms << "},\n";
  out << "    {\"threads\": " << wide << ", \"kqps\": "
      << static_cast<double>(parallel.report.issued) / parallel.wall_ms
      << "}\n";
  out << "  ],\n";
  out << "  \"stale_age_hist\": [";
  for (std::size_t age = 0; age < serial.report.stale_age_hist.size();
       ++age) {
    out << (age > 0 ? ", " : "") << serial.report.stale_age_hist[age];
  }
  out << "]\n";
  out << "}\n";
  bench::note("wrote BENCH_cluster.json");

  return checksum_match && stats_match && audit.ok ? 0 : 1;
}
