// Ablations of the design choices DESIGN.md calls out:
//
//  A) §3.1.2 cluster-outlier rejection (proposed in the paper, not taken):
//     how many mislocated streamers does it remove from the distributions,
//     at what cost in correctly-located streamers?
//  B) 2-of-3 OCR voting vs the best single engine: error rate of what
//     enters the data set.
//  C) The cleanup-discard step (Fig. 1d): how many image-processing errors
//     leak into the retained data when unexplained unstable segments are
//     kept instead of discarded?
//  D) The game-UI crop (§3.2 step 1): extraction with the right spec vs a
//     generic full-frame guess (the game-mislabeling failure mode).

#include <iostream>

#include "analysis/anomalies.hpp"
#include "bench/common.hpp"
#include "ocr/extractor.hpp"
#include "synth/sessions.hpp"
#include "synth/thumbnail.hpp"
#include "tero/channel.hpp"
#include "util/table.hpp"

using namespace tero;

namespace {

void ablation_outlier_rejection() {
  bench::header("Ablation A: cluster-outlier rejection (Sec. 3.1.2)");
  // Controlled mislocation: a well-populated Bolivia aggregate (~120 ms)
  // receives streamers who actually play from Illinois (~18 ms) — the
  // streamers-advertising-false-locations case the paper cannot measure.
  const synth::World world(bench::focus_world(
      {geo::Location{"", "", "Bolivia"},
       geo::Location{"", "Illinois", "United States"}},
      50));
  synth::BehaviorConfig behavior;
  behavior.days = 8;
  synth::SessionGenerator generator(world, behavior, 91);
  const auto streams = generator.generate();
  auto config = bench::fast_pipeline(92);
  core::Pipeline pipeline(config);
  auto dataset = pipeline.run(world, streams);

  // Mislocate a slice of Illinois streamers into Bolivia.
  const geo::Location bolivia{"", "", "Bolivia"};
  int planted = 0;
  for (auto& entry : dataset.entries) {
    if (planted >= 8) break;
    if (entry.true_location.region == "Illinois" &&
        entry.location.compatible_with(entry.true_location)) {
      entry.location = bolivia;
      ++planted;
    }
  }

  util::Table table({"rejection", "Bolivia contributors",
                     "planted liars included", "median [ms]"});
  for (bool reject : {false, true}) {
    auto entries = dataset.entries;  // aggregation mutates flags
    const auto aggregates = core::aggregate_entries(
        entries, config.analysis, geo::Granularity::kCountry, reject);
    for (const auto& aggregate : aggregates) {
      if (aggregate.location != bolivia) continue;
      std::size_t liars = 0;
      for (const auto& entry : entries) {
        if (entry.location == bolivia && !entry.location_outlier &&
            entry.high_quality &&
            entry.true_location.region == "Illinois") {
          ++liars;
        }
      }
      table.add_row(
          {reject ? "on" : "off (paper default)",
           std::to_string(aggregate.streamers), std::to_string(liars),
           aggregate.box ? util::fmt_double(aggregate.box->p50, 0) : "-"});
    }
  }
  table.print(std::cout);
  bench::note(
      "With rejection on, the planted Illinois streamers' ~18 ms clusters "
      "fall outside Bolivia's ~120 ms clusters and are dropped, restoring "
      "the distribution. Scattered liars in thin aggregates remain "
      "undetectable — the location's own clusters must exist first, which "
      "is why the paper leaves this step to data-set users.");
}

void ablation_voting() {
  bench::header("Ablation B: 2-of-3 voting vs best single OCR engine");
  const auto& spec = ocr::ui_spec_for("League of Legends");
  const synth::ThumbnailRenderer renderer;
  const ocr::LatencyExtractor extractor;
  util::Rng rng(93);
  constexpr int kThumbs = 1200;
  struct Count {
    int extracted = 0;
    int wrong = 0;
  };
  std::vector<Count> engines(3);
  Count voted;
  for (int i = 0; i < kThumbs; ++i) {
    const int truth = static_cast<int>(rng.uniform_int(8, 299));
    const auto thumb = renderer.render_with(
        spec, truth, synth::roll_corruption(renderer.config(), rng), rng);
    for (std::size_t e = 0; e < 3; ++e) {
      if (const auto v = extractor.extract_with_engine(thumb.image, spec, e)) {
        ++engines[e].extracted;
        if (*v != truth) ++engines[e].wrong;
      }
    }
    if (const auto v = extractor.extract(thumb.image, spec).primary) {
      ++voted.extracted;
      if (*v != truth) ++voted.wrong;
    }
  }
  util::Table table({"extractor", "measurements", "error rate"});
  for (std::size_t e = 0; e < 3; ++e) {
    table.add_row({extractor.engines()[e]->name(),
                   std::to_string(engines[e].extracted),
                   util::fmt_percent(static_cast<double>(engines[e].wrong) /
                                     std::max(1, engines[e].extracted))});
  }
  table.add_row({"2-of-3 vote", std::to_string(voted.extracted),
                 util::fmt_percent(static_cast<double>(voted.wrong) /
                                   std::max(1, voted.extracted))});
  table.print(std::cout);
  bench::note("Voting trades measurements for a much cleaner data set — "
              "the paper's core image-processing design decision.");
}

void ablation_cleanup_discard() {
  bench::header("Ablation C: the cleanup-discard step (Fig. 1d)");
  const synth::World world(bench::focus_world(
      {geo::Location{"", "", "Bolivia"},
       geo::Location{"", "Hawaii", "United States"}},
      50));
  synth::BehaviorConfig behavior;
  behavior.days = 8;
  synth::SessionGenerator generator(world, behavior, 94);
  const auto streams = generator.generate();
  auto channel = core::make_noise_channel();

  util::Table table({"cleanup discard", "wrong values retained",
                     "points retained"});
  for (bool disabled : {false, true}) {
    analysis::AnalysisConfig config;
    config.disable_cleanup_discard = disabled;
    util::Rng rng(95);
    std::size_t retained_wrong = 0;
    std::size_t retained_total = 0;
    for (const auto& true_stream : streams) {
      analysis::Stream stream;
      stream.streamer = "s";
      stream.game = true_stream.game;
      std::vector<int> truths;
      for (const auto& point : true_stream.points) {
        if (auto m = channel->extract(
                point, ocr::ui_spec_for(stream.game), rng)) {
          stream.points.push_back(*m);
          truths.push_back(point.latency_ms);
        }
      }
      std::vector<std::pair<double, int>> wrong;
      for (std::size_t i = 0; i < stream.points.size(); ++i) {
        if (stream.points[i].latency_ms != truths[i]) {
          wrong.emplace_back(stream.points[i].time_s, truths[i]);
        }
      }
      const auto clean = analysis::clean_stream(std::move(stream), config);
      retained_total += clean.points_retained;
      for (const auto& [t, truth] : wrong) {
        for (const auto& retained : clean.retained) {
          for (const auto& point : retained.points) {
            if (point.time_s == t && point.latency_ms != truth &&
                std::abs(point.latency_ms - truth) > config.lat_gap_ms) {
              ++retained_wrong;
            }
          }
        }
      }
    }
    table.add_row({disabled ? "disabled" : "enabled (paper)",
                   std::to_string(retained_wrong),
                   std::to_string(retained_total)});
  }
  table.print(std::cout);
  bench::note(
      "Without the discard, glitch-shortened segments survive into the "
      "retained data and carry significantly-wrong values with them — the "
      "paper's justification for the \"seemingly unnecessary\" last step.");
}

void ablation_ui_crop() {
  bench::header("Ablation D: per-game UI crop vs generic crop");
  const synth::ThumbnailRenderer renderer;
  const ocr::LatencyExtractor extractor;
  util::Rng rng(96);
  const auto& cod = ocr::ui_spec_for("Call of Duty Warzone");  // top-left
  const auto& generic = ocr::ui_spec_for("unknown");           // top-right
  int with_spec = 0;
  int with_generic = 0;
  constexpr int kThumbs = 300;
  for (int i = 0; i < kThumbs; ++i) {
    const int truth = static_cast<int>(rng.uniform_int(8, 299));
    const auto thumb =
        renderer.render_with(cod, truth, synth::Corruption::kNone, rng);
    if (extractor.extract(thumb.image, cod).primary == truth) ++with_spec;
    if (extractor.extract(thumb.image, generic).primary == truth) {
      ++with_generic;
    }
  }
  util::Table table({"crop", "correct extractions"});
  table.add_row({"game's own UI spec",
                 util::fmt_percent(static_cast<double>(with_spec) / kThumbs)});
  table.add_row({"generic top-right guess",
                 util::fmt_percent(static_cast<double>(with_generic) /
                                   kThumbs)});
  table.print(std::cout);
  bench::note(
      "Cropping the wrong region reads the wrong pixels — the "
      "game-mislabeling failure mode (§3.3.3) and the reason Tero encodes "
      "per-game UI knowledge (§3.2).");
}

}  // namespace

int main() {
  ablation_outlier_rejection();
  ablation_voting();
  ablation_cleanup_discard();
  ablation_ui_crop();
  return 0;
}
