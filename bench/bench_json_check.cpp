// Validate BENCH_*.json perf-reporter artifacts with obs::json — the CI
// bench-smoke gate (scripts/ci.sh): a reporter that emits unparseable JSON
// fails loudly here instead of rotting silently. Files ending in .prom are
// checked against the Prometheus text exposition format instead
// (obs::validate_prom_text — the obs-smoke gate runs it over `tero_cli obs
// export --prom` output).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/prom.hpp"

namespace {

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: bench_json_check <file.json|file.prom>...\n";
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream input(argv[i]);
    if (!input) {
      std::cerr << argv[i] << ": cannot open\n";
      ++failures;
      continue;
    }
    std::ostringstream text;
    text << input.rdbuf();
    if (ends_with(argv[i], ".prom")) {
      if (text.str().empty()) {
        std::cerr << argv[i] << ": empty exposition\n";
        ++failures;
        continue;
      }
      const std::string problem = tero::obs::validate_prom_text(text.str());
      if (!problem.empty()) {
        std::cerr << argv[i] << ": invalid exposition: " << problem << "\n";
        ++failures;
        continue;
      }
      std::cout << argv[i] << ": ok (prometheus text)\n";
      continue;
    }
    try {
      const auto value = tero::obs::parse_json(text.str());
      if (!value.is_object() || value.object.empty()) {
        std::cerr << argv[i] << ": expected a non-empty JSON object\n";
        ++failures;
        continue;
      }
      std::cout << argv[i] << ": ok (" << value.object.size()
                << " top-level keys)\n";
    } catch (const std::exception& error) {
      std::cerr << argv[i] << ": parse error: " << error.what() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
