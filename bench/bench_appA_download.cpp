// Reproduces the App. A download-module behaviour: thumbnail capture rate
// against the overwrite-in-place CDN contract, API rate limiting,
// idle-steal load balancing, offline handling, and crash recovery.

#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "download/system.hpp"
#include "util/table.hpp"

using namespace tero;

namespace {

struct RunResult {
  double capture_rate = 0.0;
  std::vector<int> assignments;
  std::uint64_t offline_signals = 0;
};

RunResult run(int streamers, int downloaders, bool crash, double horizon) {
  util::EventLoop loop;
  download::SimulatedCdn cdn(loop, util::Rng(81));
  for (int i = 0; i < streamers; ++i) {
    // Staggered sessions; half go offline partway.
    const double start = i * 20.0;
    const double end = (i % 2 == 0) ? horizon : horizon * 0.6;
    cdn.add_session({"s" + std::to_string(i), start, end});
  }
  store::KvStore kv;
  download::DownloadConfig config;
  config.num_downloaders = downloaders;
  download::DownloadSystem system(loop, cdn, kv, config, util::Rng(82));
  system.start();
  if (crash) {
    loop.schedule_at(horizon / 2, [&] { system.crash_and_recover(); });
  }
  loop.run_until(horizon);
  RunResult result;
  result.capture_rate =
      cdn.thumbnails_generated() > 0
          ? static_cast<double>(system.downloads().size()) /
                cdn.thumbnails_generated()
          : 0.0;
  result.assignments = system.downloader_assignments();
  result.offline_signals = system.offline_signals();
  return result;
}

}  // namespace

int main() {
  bench::header("App. A: download module behaviour");

  util::Table table({"scenario", "capture rate", "offline signals",
                     "busiest/mean adoption"});
  for (const auto& [label, streamers, downloaders, crash] :
       std::vector<std::tuple<std::string, int, int, bool>>{
           {"20 streamers / 4 downloaders", 20, 4, false},
           {"60 streamers / 4 downloaders", 60, 4, false},
           {"60 streamers / 8 downloaders", 60, 8, false},
           {"60/4 with mid-run crash+recovery", 60, 4, true},
       }) {
    const auto result = run(streamers, downloaders, crash, 6 * 3600.0);
    double mean_adoption = 0.0;
    int busiest = 0;
    for (int adoption : result.assignments) {
      mean_adoption += adoption;
      busiest = std::max(busiest, adoption);
    }
    mean_adoption /= static_cast<double>(result.assignments.size());
    table.add_row({label, util::fmt_percent(result.capture_rate, 1),
                   std::to_string(result.offline_signals),
                   util::fmt_double(busiest, 0) + " / " +
                       util::fmt_double(mean_adoption, 1)});
  }
  table.print(std::cout);

  bench::note("");
  bench::note(
      "Contract check: thumbnails overwrite in place every ~5 min, so "
      "anything not fetched before the next generation is lost — the lean "
      "HEAD-then-GET downloaders keep the loss small, idle-steal spreads "
      "adoption, offline URLs signal the coordinator, and a crash costs "
      "only in-flight timers because all state recovers from the KV store.");
  return 0;
}
