// Reproduces §4.2.3 / App. H.3: how the data-analysis stage handles
// image-processing errors — the escape rate of incorrect measurements and
// the glitch false-positive rate.
//
// Paper: anomaly detection misses ~30% of incorrect measurements (the
// near-miss confusions within LatGap); 25.87% of detected glitches are
// "false positives" — correct values caught in unstable segments (often
// true latency decreases around interrupted play).

#include <iostream>

#include "analysis/anomalies.hpp"
#include "bench/common.hpp"
#include "synth/sessions.hpp"
#include "tero/channel.hpp"
#include "util/table.hpp"

using namespace tero;

int main() {
  bench::header("Sec. 4.2.3: data-analysis error handling");

  // A latency-diverse population (20-150 ms bases) so digit drops span the
  // caught/escaped boundary like the paper's data does.
  const synth::World world(bench::focus_world(
      {geo::Location{"", "Illinois", "United States"},
       geo::Location{"", "", "Germany"},
       geo::Location{"", "", "Bolivia"},
       geo::Location{"", "Hawaii", "United States"}},
      40));
  synth::BehaviorConfig behavior;
  behavior.days = 12;
  synth::SessionGenerator generator(world, behavior, 42);
  const auto true_streams = generator.generate();

  auto channel = core::make_noise_channel();
  util::Rng rng(43);
  analysis::AnalysisConfig config;

  std::size_t injected_wrong = 0;
  std::size_t escaped = 0;
  std::size_t escaped_within_gap = 0;
  std::size_t glitch_points_total = 0;
  std::size_t glitch_points_actually_correct = 0;

  for (const auto& true_stream : true_streams) {
    analysis::Stream stream;
    stream.streamer = "s";
    stream.game = true_stream.game;
    std::vector<int> truths;
    for (const auto& point : true_stream.points) {
      if (auto m = channel->extract(point, ocr::ui_spec_for(stream.game),
                                    rng)) {
        stream.points.push_back(*m);
        truths.push_back(point.latency_ms);
      }
    }
    if (stream.points.size() < 8) continue;

    // Identify which extracted measurements are wrong, then see what the
    // cleaning stage does with them.
    std::vector<std::pair<double, int>> wrong;  // (time, truth)
    for (std::size_t i = 0; i < stream.points.size(); ++i) {
      if (stream.points[i].latency_ms != truths[i]) {
        ++injected_wrong;
        wrong.emplace_back(stream.points[i].time_s, truths[i]);
      }
    }
    // Glitch bookkeeping needs the segment classification of the original
    // points.
    const auto segments = analysis::classify_segments(stream, config);
    for (const auto& segment : segments) {
      if (segment.flag != analysis::SegmentFlag::kGlitch) continue;
      for (std::size_t p = segment.first; p <= segment.last; ++p) {
        ++glitch_points_total;
        if (stream.points[p].latency_ms == truths[p]) {
          ++glitch_points_actually_correct;  // false positive
        }
      }
    }

    const auto clean = analysis::clean_stream(std::move(stream), config);
    for (const auto& [t, truth] : wrong) {
      for (const auto& retained : clean.retained) {
        for (const auto& point : retained.points) {
          if (point.time_s == t && point.latency_ms != truth) {
            ++escaped;
            if (std::abs(point.latency_ms - truth) <= config.lat_gap_ms) {
              ++escaped_within_gap;
            }
          }
        }
      }
    }
  }

  util::Table table({"metric", "measured", "paper"});
  table.add_row({"incorrect measurements (image-processing)",
                 std::to_string(injected_wrong), "3.7% of extractions"});
  table.add_row(
      {"escape data-analysis",
       injected_wrong > 0
           ? util::fmt_percent(static_cast<double>(escaped) / injected_wrong)
           : "-",
       "~30%"});
  table.add_row(
      {"escapees within LatGap of the truth",
       escaped > 0 ? util::fmt_percent(
                         static_cast<double>(escaped_within_gap) / escaped)
                   : "-",
       ">50%"});
  table.add_row(
      {"glitch-flagged points that were actually correct",
       glitch_points_total > 0
           ? util::fmt_percent(
                 static_cast<double>(glitch_points_actually_correct) /
                 glitch_points_total)
           : "-",
       "25.87% +/- 0.67%"});
  table.print(std::cout);

  bench::note("");
  bench::note(
      "Paper shape check: what escapes is the near-miss confusions (within "
      "LatGap, e.g. 101 -> 107) that are harmless to the regional analysis; "
      "a quarter-ish of glitch flags catch correct values sitting in "
      "unstable segments.");
  return 0;
}
