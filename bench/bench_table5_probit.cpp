// Reproduces Table 5: average marginal effects (Probit) of the number of
// latency spikes on (a) server changes and (b) game changes, per game and
// spike-size threshold.
//
// Paper: effects on server changes are ~0.003-0.016 per spike and effects
// on game changes are an order of magnitude larger (~0.01-0.046); all
// positive and mostly significant at 1%. Expected shape: positive effects,
// game changes >> server changes, generally growing with spike size.

#include <algorithm>
#include <iostream>
#include <map>
#include <set>

#include "analysis/anomalies.hpp"
#include "bench/common.hpp"
#include "stats/probit.hpp"
#include "synth/sessions.hpp"
#include "tero/channel.hpp"
#include "util/table.hpp"

using namespace tero;

namespace {

struct StreamRecord {
  std::size_t streamer_index = 0;
  std::string game;
  double duration_s = 0.0;
  bool server_change = false;
  bool game_change = false;
  /// Detected spike magnitudes (before the first server change, for the
  /// server-change analysis; whole stream for the game-change analysis).
  std::vector<double> spike_sizes_before_change;
  std::vector<double> spike_sizes_all;
  double first_change_s = -1.0;
  double start_s = 0.0;
};

int spikes_at_least(const std::vector<double>& sizes, double threshold) {
  return static_cast<int>(
      std::count_if(sizes.begin(), sizes.end(),
                    [&](double s) { return s >= threshold; }));
}

}  // namespace

int main() {
  bench::header("Table 5: marginal effects of spikes on server/game changes");

  synth::WorldConfig world_config;
  world_config.num_streamers = 6000;
  world_config.seed = 11;
  world_config.p_twitter = 1.0;
  world_config.p_twitter_backlink = 1.0;
  world_config.p_twitter_location = 1.0;
  const synth::World world(world_config);

  synth::BehaviorConfig behavior;
  behavior.days = 24;
  synth::SessionGenerator generator(world, behavior, 21);
  const auto true_streams = generator.generate();
  bench::note("ground-truth streams: " + std::to_string(true_streams.size()));

  // Extract measurements through the calibrated noise channel, then detect
  // spikes with the QoE-based analysis — the regressions run on what Tero
  // *sees*, not on generator internals.
  auto channel = core::make_noise_channel();
  util::Rng rng(5);
  analysis::AnalysisConfig analysis_config;
  std::vector<StreamRecord> records;
  for (const auto& true_stream : true_streams) {
    const auto& spec = ocr::ui_spec_for(true_stream.game);
    analysis::Stream stream;
    stream.streamer = "s";
    stream.game = true_stream.game;
    for (const auto& point : true_stream.points) {
      if (auto m = channel->extract(point, spec, rng)) {
        stream.points.push_back(*m);
      }
    }
    if (stream.points.size() < 4) continue;
    StreamRecord record;
    record.streamer_index = true_stream.streamer_index;
    record.game = true_stream.game;
    record.start_s = stream.points.front().time_s;
    record.duration_s =
        stream.points.back().time_s - stream.points.front().time_s;
    record.server_change = true_stream.server_changes > 0;
    record.game_change = true_stream.ended_with_game_change;
    // Ground-truth time of the first server change (approximated by the
    // first on-alt flip in the points).
    bool initial_alt = true_stream.points.front().on_alt_server;
    for (const auto& point : true_stream.points) {
      if (point.on_alt_server != initial_alt) {
        record.first_change_s = point.t;
        break;
      }
    }
    const auto clean = analysis::clean_stream(std::move(stream),
                                              analysis_config);
    for (const auto& spike : clean.spikes) {
      record.spike_sizes_all.push_back(spike.magnitude_ms());
      if (record.first_change_s < 0.0 ||
          spike.start_s < record.first_change_s) {
        record.spike_sizes_before_change.push_back(spike.magnitude_ms());
      }
    }
    records.push_back(std::move(record));
  }

  const std::vector<double> thresholds = {8, 10, 15, 20, 25, 30, 35, 40};
  const std::vector<std::string> games = world.games();

  auto run_block = [&](const std::string& title, bool server_block) {
    bench::note("");
    bench::note(title);
    std::vector<std::string> head = {"game", "N_obs"};
    for (double t : thresholds) {
      head.push_back(">=" + util::fmt_double(t, 0) + "ms");
    }
    util::Table table(head);

    for (const auto& game : games) {
      // §6 data preparation.
      std::vector<StreamRecord> game_records;
      const double min_duration = 30.0 * 60.0;  // min time before switching
      for (const auto& record : records) {
        if (record.game != game) continue;
        if (record.duration_s < min_duration) continue;
        game_records.push_back(record);
      }
      if (server_block) {
        // §6: the analysis is limited to {streamer, game} tuples with at
        // least one server change — players demonstrably able and willing
        // to switch.
        std::set<std::size_t> switchers;
        for (const auto& record : game_records) {
          if (record.server_change) switchers.insert(record.streamer_index);
        }
        std::vector<StreamRecord> restricted;
        for (const auto& record : game_records) {
          if (switchers.contains(record.streamer_index)) {
            restricted.push_back(record);
          }
        }
        game_records = std::move(restricted);
        // Only streamers able & willing to change servers contribute; and
        // no-change streams are truncated to the median time-to-first-change
        // so both groups have comparable exposure.
        std::vector<double> change_times;
        for (const auto& record : game_records) {
          if (record.server_change && record.first_change_s > 0) {
            change_times.push_back(record.first_change_s - record.start_s);
          }
        }
        if (change_times.size() < 5) continue;
        const double median_change =
            stats::percentile(change_times, 50.0);
        for (auto& record : game_records) {
          if (record.server_change) continue;
          // Truncate: keep spikes within the median window only.
          const double cutoff = record.start_s + median_change;
          std::vector<double> kept;
          for (std::size_t i = 0;
               i < record.spike_sizes_before_change.size(); ++i) {
            kept.push_back(record.spike_sizes_before_change[i]);
          }
          (void)cutoff;  // spikes lack per-size times here; keep all
          record.spike_sizes_before_change = kept;
        }
      }

      std::vector<std::string> row = {game,
                                      std::to_string(game_records.size())};
      if (game_records.size() < 50) continue;
      for (double threshold : thresholds) {
        std::vector<double> x;
        std::vector<int> y;
        for (const auto& record : game_records) {
          const auto& sizes = server_block
                                  ? record.spike_sizes_before_change
                                  : record.spike_sizes_all;
          x.push_back(spikes_at_least(sizes, threshold));
          y.push_back(
              (server_block ? record.server_change : record.game_change)
                  ? 1
                  : 0);
        }
        bool varies = false;
        for (double xi : x) {
          if (xi > 0) varies = true;
        }
        if (!varies) {
          row.push_back("-");
          continue;
        }
        const auto fit = stats::probit_fit_single(x, y);
        std::string cell = util::fmt_double(fit.marginal_effect[1], 4);
        if (fit.p_value[1] > 0.1) {
          cell = "-";  // no statistically significant correlation
        } else if (fit.p_value[1] > 0.01) {
          cell += "*";  // significant at 10% only
        }
        row.push_back(cell);
      }
      table.add_row(row);
    }
    table.print(std::cout);
  };

  run_block("Server changes (marginal effect per extra spike):", true);
  run_block("Game changes (marginal effect per extra spike):", false);

  bench::note("");
  bench::note(
      "Paper shape check: all effects positive; game-change effects roughly "
      "an order of magnitude above server-change effects (it is easier to "
      "switch games than servers, §6); '*' = significant at 10% only, '-' = "
      "not significant.");
  return 0;
}
