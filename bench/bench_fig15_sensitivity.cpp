// Reproduces Fig. 15 (App. I): sensitivity of the data-cleaning results to
// StableLen and LatGap — users/datapoints retained, spike/glitch rates,
// significant spikes, and the proportion of unstable points.
//
// Paper shape: raising StableLen discards users quickly (mostly light
// users) while datapoints fall slower; spikes/glitches grow with StableLen;
// significant-spike counts flatten around StableLen ~25-30 min (the basis
// for choosing 30); above LatGap ~15 ms the unstable-point proportion is
// nearly LatGap-independent.

#include <iostream>

#include "analysis/anomalies.hpp"
#include "bench/common.hpp"
#include "synth/sessions.hpp"
#include "tero/channel.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace tero;

namespace {

struct GameData {
  std::string game;
  // Measurement streams per streamer (already extracted).
  std::map<std::size_t, std::vector<analysis::Stream>> by_streamer;
};

}  // namespace

int main() {
  bench::header("Fig. 15: sensitivity to StableLen and LatGap");

  const std::vector<std::string> games = {"League of Legends",
                                          "Genshin Impact", "Dota 2"};
  synth::WorldConfig world_config;
  world_config.num_streamers = 400;
  world_config.seed = 15;
  world_config.games = games;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = 12;
  synth::SessionGenerator generator(world, behavior, 16);
  const auto true_streams = generator.generate();

  auto channel = core::make_noise_channel();
  util::Rng rng(17);
  std::map<std::string, GameData> data;
  for (const auto& game : games) data[game].game = game;
  for (const auto& true_stream : true_streams) {
    if (data.find(true_stream.game) == data.end()) continue;
    analysis::Stream stream;
    stream.streamer = std::to_string(true_stream.streamer_index);
    stream.game = true_stream.game;
    for (const auto& point : true_stream.points) {
      if (auto m = channel->extract(point, ocr::ui_spec_for(stream.game),
                                    rng)) {
        stream.points.push_back(*m);
      }
    }
    if (stream.points.empty()) continue;
    data[true_stream.game].by_streamer[true_stream.streamer_index]
        .push_back(std::move(stream));
  }

  // ---- (a) StableLen sweep at LatGap = 15 (League of Legends) --------------
  bench::note("");
  bench::note("(a) League of Legends, LatGap = 15 ms:");
  util::Table sweep({"StableLen [min]", "users kept", "points kept",
                     "spike pts", "glitch segs", "signif spikes >=15ms"});
  const auto& lol = data["League of Legends"];
  // Per-config sweep over the pool: each config's cleaning pass is
  // independent and deterministic (no rng), so rows land in sweep order.
  util::ThreadPool pool;  // hardware_concurrency
  const std::vector<double> stable_lens = {5.0,  15.0, 25.0, 30.0,
                                           35.0, 45.0, 55.0, 60.0};
  const auto sweep_rows = util::parallel_map(
      &pool, stable_lens.size(), 1, [&](std::size_t c) {
    const double stable_len = stable_lens[c];
    analysis::AnalysisConfig config;
    config.stable_len_minutes = stable_len;
    std::size_t users = 0;
    std::size_t kept_users = 0;
    std::size_t points_in = 0;
    std::size_t points_kept = 0;
    std::size_t spike_points = 0;
    std::size_t glitches = 0;
    std::size_t significant = 0;
    for (const auto& [streamer, streams] : lol.by_streamer) {
      ++users;
      auto copy = streams;
      const auto clean = analysis::clean_streamer_game(std::move(copy),
                                                       config);
      points_in += clean.points_in;
      if (!clean.discarded_entirely) {
        ++kept_users;
        points_kept += clean.points_retained;
        spike_points += clean.spike_points;
        glitches += clean.glitch_segments;
        for (const auto& spike : clean.spikes) {
          if (spike.magnitude_ms() >= 15.0) ++significant;
        }
      }
    }
    return std::vector<std::string>(
        {util::fmt_double(stable_len, 0),
         util::fmt_percent(static_cast<double>(kept_users) / users, 1),
         util::fmt_percent(static_cast<double>(points_kept) / points_in, 1),
         std::to_string(spike_points), std::to_string(glitches),
         std::to_string(significant)});
  });
  for (const auto& row : sweep_rows) sweep.add_row(row);
  sweep.print(std::cout);

  // ---- (c) LatGap sweep: proportion of unstable (kept but not stable)
  // points per game ------------------------------------------------------------
  bench::note("");
  bench::note("(c) proportion of points in unstable-but-kept segments:");
  util::Table gap_table({"game", "LatGap 8", "LatGap 15", "LatGap 25"});
  const auto gap_rows = util::parallel_map(
      &pool, games.size(), 1, [&](std::size_t gi) {
    const auto& game = games[gi];
    std::vector<std::string> row = {game};
    for (double gap : {8.0, 15.0, 25.0}) {
      analysis::AnalysisConfig config;
      config.lat_gap_ms = gap;
      std::size_t kept = 0;
      std::size_t unstable_kept = 0;
      for (const auto& [streamer, streams] : data.at(game).by_streamer) {
        auto copy = streams;
        const auto clean = analysis::clean_streamer_game(std::move(copy),
                                                         config);
        if (clean.discarded_entirely) continue;
        kept += clean.points_retained;
        // Re-segment the retained streams to count unstable leftovers.
        for (const auto& stream : clean.retained) {
          for (const auto& segment :
               analysis::classify_segments(stream, config)) {
            if (!segment.stable) unstable_kept += segment.size();
          }
        }
      }
      row.push_back(kept > 0 ? util::fmt_percent(
                                   static_cast<double>(unstable_kept) / kept)
                             : "-");
    }
    return row;
  });
  for (const auto& row : gap_rows) gap_table.add_row(row);
  gap_table.print(std::cout);

  bench::note("");
  bench::note(
      "Paper shape check: users drop faster than datapoints as StableLen "
      "grows (light users go first); spike/glitch counts rise with "
      "StableLen; significant-spike growth slows near 25-30 min — the "
      "paper picks 30; above LatGap 15 the unstable proportion is nearly "
      "flat.");
  return 0;
}
