// Reproduces Figs. 10-12: latency distributions of locations inside the
// same 500-km-thick "doughnut" around their primary server — US states
// around Chicago (Fig. 10), EU countries around Amsterdam (Fig. 11), and
// the El Salvador / Jamaica comparisons around Miami (Fig. 12).
//
// Paper shape: same-doughnut locations differ by up to ~30 ms at the 75th
// percentile (DC and North Carolina bad; Missouri, Ontario, Texas good);
// EU differences smaller but Poland sticks out vs Switzerland; Italy's
// 25th-75th gap is wide while France's is ~5 ms.

#include <iostream>

#include "bench/common.hpp"
#include "synth/sessions.hpp"
#include "util/table.hpp"

using namespace tero;

namespace {

void run_section(
    const std::string& title,
    const std::vector<std::pair<std::string, geo::Location>>& locations,
    const std::string& shape_note, std::uint64_t seed) {
  bench::header(title);
  std::vector<geo::Location> focus;
  for (const auto& [label, location] : locations) focus.push_back(location);
  const synth::World world(bench::focus_world(focus, 50, {"League of Legends"},
                                              seed));
  synth::BehaviorConfig behavior;
  behavior.days = 8;
  synth::SessionGenerator generator(world, behavior, seed + 1);
  const auto streams = generator.generate();
  core::Pipeline pipeline(bench::fast_pipeline(seed + 2));
  core::Dataset dataset = pipeline.run(world, streams);

  util::Table table({"location", "p5|p25[p50]p75|p95 [ms]", "server",
                     "dist [km]", "p75-p25 [ms]"});
  for (const auto& [label, location] : locations) {
    const auto aggregate = bench::aggregate_for(
        dataset.entries, location, "League of Legends",
        pipeline.config().analysis);
    if (!aggregate.has_value() || !aggregate->box.has_value()) {
      table.add_row({label, "(no data)"});
      continue;
    }
    table.add_row({label, bench::boxplot_cell(*aggregate->box),
                   aggregate->server_city,
                   util::fmt_double(aggregate->avg_corrected_distance_km, 0),
                   util::fmt_double(aggregate->box->p75 - aggregate->box->p25,
                                    1)});
  }
  table.print(std::cout);
  bench::note(shape_note);
}

geo::Location us_state(const char* name) {
  return geo::Location{"", name, "United States"};
}
geo::Location country(const char* name) {
  return geo::Location{"", "", name};
}

}  // namespace

int main() {
  run_section(
      "Fig. 10a: US states 500-1,000 km from Chicago",
      {
          {"District of Columbia", us_state("District of Columbia")},
          {"Georgia (US)", us_state("Georgia")},
          {"Kentucky", us_state("Kentucky")},
          {"Minnesota", us_state("Minnesota")},
          {"Missouri", us_state("Missouri")},
          {"North Carolina", us_state("North Carolina")},
          {"Ontario (CA)", geo::Location{"", "Ontario", "Canada"}},
          {"Pennsylvania", us_state("Pennsylvania")},
          {"Tennessee", us_state("Tennessee")},
          {"Virginia", us_state("Virginia")},
      },
      "Paper shape: DC worst (~60 ms p75), Missouri/Ontario best (~15 ms) — "
      "a ~30+ ms spread inside one doughnut.",
      100);

  run_section(
      "Fig. 10b: US states 1,000-1,500 km from Chicago",
      {
          {"Massachusetts", us_state("Massachusetts")},
          {"New Jersey", us_state("New Jersey")},
          {"North Carolina", us_state("North Carolina")},
          {"Oklahoma", us_state("Oklahoma")},
          {"Texas", us_state("Texas")},
      },
      "Paper shape: North Carolina >45 ms p75 vs Texas ~21 ms.", 200);

  run_section(
      "Fig. 11: EU countries 500-1,500 km from Amsterdam",
      {
          {"Austria", country("Austria")},
          {"Denmark", country("Denmark")},
          {"France", country("France")},
          {"Germany", country("Germany")},
          {"Italy", country("Italy")},
          {"Poland", country("Poland")},
          {"Switzerland", country("Switzerland")},
          {"United Kingdom", country("United Kingdom")},
          {"Spain", country("Spain")},
      },
      "Paper shape: Poland >40 ms p75 vs Switzerland ~15 ms; Italy's "
      "p75-p25 gap exceeds 15 ms while France's is ~5 ms.",
      300);

  run_section(
      "Fig. 12: locations at El Salvador/Jamaica's distance from Miami",
      {
          {"El Salvador", country("El Salvador")},
          {"Jamaica", country("Jamaica")},
          {"Chiapas (MX)", geo::Location{"", "Chiapas", "Mexico"}},
          {"Tabasco (MX)", geo::Location{"", "Tabasco", "Mexico"}},
          {"Veracruz (MX)", geo::Location{"", "Veracruz", "Mexico"}},
          {"Tamaulipas (MX)", geo::Location{"", "Tamaulipas", "Mexico"}},
          {"Campeche (MX)", geo::Location{"", "Campeche", "Mexico"}},
          {"Quintana Roo (MX)", geo::Location{"", "Quintana Roo", "Mexico"}},
          {"Yucatan (MX)", geo::Location{"", "Yucatan", "Mexico"}},
          {"Magdalena (CO)", geo::Location{"", "Magdalena", "Colombia"}},
          {"Atlantico (CO)", geo::Location{"", "Atlantico", "Colombia"}},
          {"Bolivar (CO)", geo::Location{"", "Bolivar", "Colombia"}},
          {"Francisco Morazan (HN)",
           geo::Location{"", "Francisco Morazan", "Honduras"}},
          {"Costa Rica", country("Costa Rica")},
          {"Nicaragua", country("Nicaragua")},
      },
      "Paper contribution: El Salvador and Jamaica have no RIPE probes at "
      "all — Tero still produces distributions comparable with their "
      "same-distance neighbours.",
      400);
  return 0;
}
