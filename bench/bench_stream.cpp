// Streaming ingestion benchmark (DESIGN.md §10): end-to-end event throughput
// of the channelized source → extract → clean → sink pipeline across thread
// counts, live ingest-to-publish latency, backpressure behaviour under a
// deliberately slow sink, and the bit-equivalence gate against the batch
// pipeline. Writes BENCH_stream.json (parse-checked by scripts/ci.sh
// bench-smoke via bench_json_check).
//
//   bench_stream [--tiny]
//
// --tiny shrinks the world to CI-smoke scale (~1 s).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "serve/service.hpp"
#include "serve/snapshot_io.hpp"
#include "stream/pipeline.hpp"
#include "synth/sessions.hpp"
#include "tero/pipeline.hpp"
#include "util/thread_pool.hpp"

using namespace tero;

namespace {

struct ThroughputRow {
  std::size_t threads = 0;
  stream::StreamResult result;
  double wall_s = 0.0;
  double events_per_s = 0.0;
  double publish_p50_ms = 0.0;
  double publish_p99_ms = 0.0;
  bool matches_batch = false;
};

std::string snapshot_bytes(const std::vector<serve::SnapshotEntry>& entries) {
  std::ostringstream out;
  serve::save_snapshot(serve::Snapshot(1, entries), out);
  return out.str();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  const std::size_t hw = util::ThreadPool::resolve(0);

  synth::WorldConfig world_config;
  world_config.seed = 11;
  world_config.num_streamers = tiny ? 60 : 240;
  world_config.p_twitter = 0.9;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = tiny ? 2 : 5;
  synth::SessionGenerator generator(world, behavior, 3);
  const auto streams = generator.generate();

  // ---- batch baseline -------------------------------------------------------
  bench::header("stream: batch baseline");
  const auto batch_start = std::chrono::steady_clock::now();
  core::Pipeline batch(bench::fast_pipeline(11));
  const core::Dataset dataset = batch.run(world, streams);
  const double batch_wall_s = seconds_since(batch_start);
  const std::string batch_bytes = snapshot_bytes(serve::entries_from(dataset));
  bench::note("streamers: " + std::to_string(world.streamers().size()) +
              ", batch wall: " + util::fmt_double(batch_wall_s * 1e3, 1) +
              " ms, funnel retained: " + std::to_string(dataset.funnel.retained));

  // ---- streaming throughput vs threads --------------------------------------
  bench::header("stream: end-to-end throughput (live epochs attached)");
  std::vector<std::size_t> thread_counts{1};
  if (hw >= 4) thread_counts.push_back(4);
  if (hw > 4) {
    thread_counts.push_back(hw);
  } else if (hw <= 2) {
    thread_counts.push_back(2);
  }
  std::vector<ThroughputRow> rows;
  util::Table table({"threads", "events", "kev/s", "windows", "epochs",
                     "pub p99 ms", "batch match"});
  for (const std::size_t threads : thread_counts) {
    obs::MetricsRegistry registry;
    serve::ServeConfig serve_config;
    serve::QueryService service(serve_config);

    stream::StreamConfig config;
    config.tero = bench::fast_pipeline(11);
    config.tero.threads = threads;
    config.tero.metrics = &registry;
    config.publish_every_windows = 2;
    config.service = &service;

    stream::StreamPipeline pipeline(config);
    const auto start = std::chrono::steady_clock::now();
    ThroughputRow row;
    row.result = pipeline.run(world, streams);
    row.wall_s = seconds_since(start);
    row.threads = threads;
    row.events_per_s =
        row.wall_s > 0 ? static_cast<double>(row.result.events) / row.wall_s
                       : 0.0;
    const auto& publish_hist =
        registry.histogram("tero.stream.ingest_to_publish_ms");
    if (publish_hist.count() > 0) {
      row.publish_p50_ms = publish_hist.quantile(0.50);
      row.publish_p99_ms = publish_hist.quantile(0.99);
    }
    row.matches_batch = snapshot_bytes(row.result.final_entries) == batch_bytes;
    table.add_row({std::to_string(threads),
                   std::to_string(row.result.events),
                   util::fmt_double(row.events_per_s / 1e3, 1),
                   std::to_string(row.result.windows_closed),
                   std::to_string(row.result.epochs_published),
                   util::fmt_double(row.publish_p99_ms, 2),
                   row.matches_batch ? "yes" : "NO"});
    rows.push_back(std::move(row));
  }
  table.print(std::cout);
  bench::note("batch match must be yes at every thread count: the schedule "
              "fixes the event order, so parallelism cannot change results");

  // ---- backpressure under a slow sink ---------------------------------------
  bench::header("stream: backpressure (slow sink, capacity 8)");
  stream::StreamConfig slow_config;
  slow_config.tero = bench::fast_pipeline(11);
  slow_config.tero.threads = hw >= 4 ? 4 : hw;
  slow_config.channel_capacity = 8;
  slow_config.extract_batch = 8;
  slow_config.sink_delay_us = tiny ? 20 : 5;
  stream::StreamPipeline slow_pipeline(slow_config);
  const stream::StreamResult slow = slow_pipeline.run(world, streams);
  const std::uint64_t slow_stalls = slow.to_extract.stalls +
                                    slow.to_clean.stalls +
                                    slow.to_sink.stalls;
  const std::uint64_t slow_peak =
      std::max({slow.to_extract.max_depth, slow.to_clean.max_depth,
                slow.to_sink.max_depth});
  bench::note("stalls: " + std::to_string(slow_stalls) +
              ", peak queue depth: " + std::to_string(slow_peak) + "/" +
              std::to_string(slow_config.channel_capacity) +
              " (bounded memory regardless of sink speed)");

  // ---- obs: event-time timeline + SLO verdicts ------------------------------
  // The sink advances the timeline past each event's virtual arrival time
  // (DESIGN.md §13), so the scraped history covers the multi-day event-time
  // horizon — this run exercises ring downsampling (interval doubling) and
  // records the SLO verdicts the scraper produced.
  bench::header("stream: obs timeline + SLO verdicts (virtual event time)");
  obs::MetricsRegistry obs_registry;
  obs::TimelineConfig timeline_config;
  timeline_config.scrape_every_ms = 60'000;  // one virtual minute
  timeline_config.prefixes = {
      "tero.stream.events",      "tero.stream.late",
      "tero.stream.windows_closed", "tero.stream.checkpoints",
      "tero.stream.epochs",      "tero.stream.watermark",
  };
  obs::MetricsTimeline timeline(obs_registry, timeline_config);
  obs::SloTracker tracker;
  tracker.add(
      "slo late: rate(tero.stream.late) < 1 over 3600s window, budget 10%");
  tracker.add(
      "slo windows: rate(tero.stream.windows_closed) < 1 over 3600s window, "
      "budget 50%");
  tracker.attach(timeline);
  stream::StreamConfig obs_config;
  obs_config.tero = bench::fast_pipeline(11);
  obs_config.tero.threads = hw >= 4 ? 4 : hw;
  obs_config.tero.metrics = &obs_registry;
  obs_config.timeline = &timeline;
  stream::StreamPipeline obs_pipeline(obs_config);
  const stream::StreamResult obs_run = obs_pipeline.run(world, streams);
  const auto obs_slos = tracker.status();
  bench::note(std::to_string(timeline.snapshot_count()) + " snapshots @ " +
              std::to_string(timeline.scrape_interval_ms()) +
              " ms virtual interval (downsampled from 60000 ms), " +
              std::to_string(obs_run.events) + " events, " +
              std::to_string(tracker.alerts().size()) + " alert event(s)");
  for (const auto& slo : obs_slos) {
    bench::note("  slo " + slo.slo + ": measured " +
                util::fmt_double(slo.measured, 4) + ", burn slow " +
                util::fmt_double(slo.burn_slow, 2) +
                (slo.firing ? " FIRING" : " ok"));
  }

  // ---- machine-readable report ----------------------------------------------
  std::ofstream out("BENCH_stream.json");
  out << "{\n  \"batch\": {\"wall_s\": " << batch_wall_s
      << ", \"entries\": " << dataset.entries.size() << "},\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    out << "    {\"threads\": " << row.threads
        << ", \"events\": " << row.result.events
        << ", \"wall_s\": " << row.wall_s
        << ", \"events_per_s\": " << row.events_per_s
        << ", \"late_events\": " << row.result.late_events
        << ", \"windows_closed\": " << row.result.windows_closed
        << ", \"epochs\": " << row.result.epochs_published
        << ", \"publish_p50_ms\": " << row.publish_p50_ms
        << ", \"publish_p99_ms\": " << row.publish_p99_ms
        << ", \"matches_batch\": " << (row.matches_batch ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ],\n";
  out << "  \"backpressure\": {\"stalls\": " << slow_stalls
      << ", \"peak_depth\": " << slow_peak
      << ", \"capacity\": " << slow_config.channel_capacity << "},\n";
  out << "  \"obs\": {\"snapshots\": " << timeline.snapshot_count()
      << ", \"scrape_interval_ms\": " << timeline.scrape_interval_ms()
      << ", \"alerts\": " << tracker.alerts().size() << ", \"slos\": [";
  for (std::size_t i = 0; i < obs_slos.size(); ++i) {
    const auto& slo = obs_slos[i];
    out << (i > 0 ? ", " : "") << "{\"slo\": \"" << slo.slo
        << "\", \"measured\": " << slo.measured
        << ", \"burn_fast\": " << slo.burn_fast
        << ", \"burn_slow\": " << slo.burn_slow << ", \"firing\": "
        << (slo.firing ? "true" : "false") << "}";
  }
  out << "]}\n";
  out << "}\n";
  bench::note("wrote BENCH_stream.json");

  bool all_match = true;
  for (const auto& row : rows) all_match = all_match && row.matches_batch;
  return all_match ? 0 : 1;
}
