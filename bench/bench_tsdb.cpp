// Tiered time-series store benchmark (DESIGN.md §15). Three arms:
//
//   compression  — hourly latency series (steady cadence, bounded jitter)
//                  sealed and compacted through the Gorilla-lineage codec;
//                  the segment bytes must undercut the raw encoding
//                  (16 B/sample: int64 timestamp + double) by >= 5x.
//   range        — p99-over-time for every key over the full horizon (90
//                  virtual days x 1k keys at full scale), answered from
//                  compressed segments by streaming cursors — no series is
//                  ever materialized; reports windows/s and samples/s.
//   determinism  — the same append/advance schedule at 1 thread vs the
//                  machine width; segment layout and dataset digest must
//                  match bit-for-bit.
//
// Writes BENCH_tsdb.json (parse-checked by scripts/ci.sh tsdb-smoke via
// bench_json_check; the compression floor and determinism flag are awk
// gates there too).
//
//   bench_tsdb [--tiny]
//
// --tiny shrinks the key count to CI-smoke scale (~1 s) but keeps the
// 90-day horizon so the range arm still spans the full window count.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "tsdb/store.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace tero;

namespace {

constexpr std::int64_t kDayMs = 86'400'000;
constexpr std::int64_t kHourMs = 3'600'000;

std::string series_key(std::size_t k) {
  return "game" + std::to_string(k % 5) + "|C" + std::to_string(k % 37) +
         "|key" + std::to_string(k);
}

/// Hourly latency samples per key per day: a per-key baseline plus bounded
/// jitter, the shape real per-{location, game} window means take. One
/// advance per virtual day drives seal + compaction + retention.
void load(tsdb::TimeSeriesStore& store, std::size_t keys, int days,
          std::uint64_t seed) {
  for (int day = 0; day < days; ++day) {
    for (std::size_t k = 0; k < keys; ++k) {
      util::Rng rng = util::Rng::indexed(
          util::mix_seed(seed, static_cast<std::uint64_t>(day)), k);
      const double base = 25.0 + static_cast<double>(k % 60);
      for (int hour = 0; hour < 24; ++hour) {
        store.append(series_key(k), day * kDayMs + hour * kHourMs,
                     base + std::floor(rng.uniform(0.0, 8.0)));
      }
    }
    store.advance_to((day + 1) * kDayMs);
  }
}

std::string hex64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  const int days = 90;
  const std::size_t keys = tiny ? 100 : 1000;
  const std::size_t hw = util::ThreadPool::resolve(0);
  const std::size_t wide = hw > 1 ? hw : 2;

  // ---- compression + ingest -----------------------------------------------
  bench::header("tsdb: ingest + compression (" + std::to_string(keys) +
                " keys x " + std::to_string(days) + " virtual days, hourly)");
  tsdb::TimeSeriesStore store{tsdb::TsdbConfig{}};
  const auto ingest_start = std::chrono::steady_clock::now();
  load(store, keys, days, 7);
  const double ingest_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - ingest_start)
                               .count();
  const tsdb::TimeSeriesStore::Stats stats = store.stats();
  const double ratio =
      stats.compressed_bytes > 0
          ? static_cast<double>(stats.raw_bytes) /
                static_cast<double>(stats.compressed_bytes)
          : 0.0;
  const double bits_per_sample =
      stats.segment_samples > 0
          ? 8.0 * static_cast<double>(stats.compressed_bytes) /
                static_cast<double>(stats.segment_samples)
          : 0.0;
  util::Table ingest_table({"samples", "segments", "raw MiB", "stored MiB",
                            "ratio", "bits/sample", "Msamples/s"});
  ingest_table.add_row(
      {std::to_string(stats.segment_samples + stats.head_samples),
       std::to_string(stats.segments),
       util::fmt_double(static_cast<double>(stats.raw_bytes) / 1048576.0, 2),
       util::fmt_double(
           static_cast<double>(stats.compressed_bytes) / 1048576.0, 2),
       util::fmt_double(ratio, 2), util::fmt_double(bits_per_sample, 2),
       util::fmt_double(static_cast<double>(stats.segment_samples) /
                            (ingest_ms * 1e3),
                        2)});
  ingest_table.print(std::cout);
  const bool compression_ok = ratio >= 5.0;
  bench::note(std::string("compression ") +
              (compression_ok ? "ok" : "BELOW FLOOR") + " (floor 5x vs " +
              "16 B/sample raw)");

  // ---- range: p99-over-time for every key ---------------------------------
  bench::header("tsdb: daily p99-over-time, every key, full horizon");
  const auto range_start = std::chrono::steady_clock::now();
  std::uint64_t windows = 0;
  std::uint64_t covered = 0;
  double checksum = 0.0;
  for (std::size_t k = 0; k < keys; ++k) {
    tsdb::RangeQuery query;
    query.key = series_key(k);
    query.t0_ms = 0;
    query.t1_ms = days * kDayMs;
    query.window_ms = kDayMs;
    query.agg = tsdb::RangeAgg::kPercentile;
    query.pct = 99.0;
    const std::vector<tsdb::RangePoint> series = store.range(query);
    windows += series.size();
    for (const tsdb::RangePoint& point : series) {
      covered += point.count;
      checksum += point.value;
    }
  }
  const double range_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - range_start)
                              .count();
  util::Table range_table(
      {"queries", "windows", "samples folded", "ms", "Mwindows/s",
       "Msamples/s"});
  range_table.add_row(
      {std::to_string(keys), std::to_string(windows), std::to_string(covered),
       util::fmt_double(range_ms, 1),
       util::fmt_double(static_cast<double>(windows) / (range_ms * 1e3), 3),
       util::fmt_double(static_cast<double>(covered) / (range_ms * 1e3), 2)});
  range_table.print(std::cout);
  bench::note("answers stream from compressed chunks (cursor fold) — no "
              "series vector is materialized; checksum " +
              util::fmt_double(checksum, 1));

  // ---- determinism: 1 thread vs machine width -----------------------------
  bench::header("tsdb: determinism (1 thread vs " + std::to_string(wide) +
                ")");
  const std::size_t det_keys = tiny ? 50 : 200;
  const int det_days = 30;
  tsdb::TimeSeriesStore serial{tsdb::TsdbConfig{}};
  load(serial, det_keys, det_days, 11);
  util::ThreadPool pool(wide);
  tsdb::TsdbConfig parallel_config;
  parallel_config.pool = &pool;
  tsdb::TimeSeriesStore parallel(parallel_config);
  load(parallel, det_keys, det_days, 11);
  const bool digest_match =
      serial.dataset_digest() == parallel.dataset_digest();
  const bool layout_match = serial.segment_layout() == parallel.segment_layout();
  bench::note("digest " + hex64(serial.dataset_digest()) + " vs " +
              hex64(parallel.dataset_digest()) + ": " +
              (digest_match ? "match" : "MISMATCH") + "; segment layout " +
              (layout_match ? "match" : "MISMATCH"));

  // ---- machine-readable report --------------------------------------------
  std::ofstream out("BENCH_tsdb.json");
  out << "{\n";
  out << "  \"compression\": {\"keys\": " << keys << ", \"days\": " << days
      << ", \"samples\": " << stats.segment_samples + stats.head_samples
      << ", \"segments\": " << stats.segments
      << ", \"raw_bytes\": " << stats.raw_bytes
      << ", \"compressed_bytes\": " << stats.compressed_bytes
      << ", \"ratio\": " << ratio
      << ", \"bits_per_sample\": " << bits_per_sample
      << ", \"floor\": 5.0, \"ok\": " << (compression_ok ? "true" : "false")
      << "},\n";
  out << "  \"ingest\": {\"wall_ms\": " << ingest_ms
      << ", \"samples_per_s\": "
      << static_cast<double>(stats.segment_samples) * 1e3 / ingest_ms
      << "},\n";
  out << "  \"range\": {\"queries\": " << keys << ", \"windows\": " << windows
      << ", \"samples_folded\": " << covered << ", \"wall_ms\": " << range_ms
      << ", \"windows_per_s\": "
      << static_cast<double>(windows) * 1e3 / range_ms << "},\n";
  out << "  \"determinism\": {\"threads_wide\": " << wide
      << ", \"digest_serial\": \"" << hex64(serial.dataset_digest())
      << "\", \"digest_parallel\": \"" << hex64(parallel.dataset_digest())
      << "\", \"digest_match\": " << (digest_match ? "true" : "false")
      << ", \"layout_match\": " << (layout_match ? "true" : "false") << "}\n";
  out << "}\n";
  bench::note("wrote BENCH_tsdb.json");

  return compression_ok && digest_match && layout_match ? 0 : 1;
}
