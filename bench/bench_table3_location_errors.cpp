// Reproduces Table 3: extraction rate and error rate of every location
// technique — the three geocoders raw and with the conservative filter
// ("Tool++"), their Twitch-description combination, the Twitch-Twitter
// username mapping, the two geoparsers on Twitter location fields, their
// combination, and Tero end-to-end.
//
// Paper: raw geocoders err 23-36%; the ++ filter drives errors to ~2.4-3.6%;
// the Twitter mapping errs 1.6%; Tero locates 2.77% of streamers with a
// 1.46% error rate. Expected shape: filter slashes errors at some recall
// cost; combinations beat every individual tool; end-to-end error ~1-3%.

#include <iostream>

#include "bench/common.hpp"
#include "nlp/combine.hpp"
#include "nlp/filter.hpp"
#include "social/locator.hpp"
#include "synth/world.hpp"
#include "util/table.hpp"

using namespace tero;

namespace {

struct Score {
  std::size_t attempted = 0;
  std::size_t extracted = 0;
  std::size_t wrong = 0;

  void add(bool did_extract, bool correct) {
    ++attempted;
    if (!did_extract) return;
    ++extracted;
    if (!correct) ++wrong;
  }
  [[nodiscard]] double extraction_rate() const {
    return attempted ? static_cast<double>(extracted) / attempted : 0.0;
  }
  [[nodiscard]] double error_rate() const {
    return extracted ? static_cast<double>(wrong) / extracted : 0.0;
  }
};

/// A tool output is "correct" when it is compatible with what a human would
/// read off the text — i.e. the streamer's advertised location; extracting
/// anything from text without location intent is an error (App. H.1).
bool is_correct(const std::optional<geo::Location>& output,
                const synth::SyntheticStreamer& streamer) {
  if (!output.has_value()) return true;
  return output->compatible_with(*streamer.advertised);
}

}  // namespace

int main() {
  bench::header("Table 3: extraction and error rates of location techniques");

  synth::WorldConfig config;
  config.num_streamers = 20000;
  config.seed = 3;
  // Raise the share of location-bearing text so per-tool error estimates
  // have support (the paper manually checked 3x500 samples instead).
  config.p_description_location = 0.06;
  config.p_description_misleading = 0.02;
  const synth::World world(config);
  const nlp::ToolSet tools;

  Score cliff, xponents, mordecai;
  Score cliff_pp, xponents_pp, mordecai_pp;
  Score twitch_comb;
  Score mapping;
  Score nominatim, geonames, twitter_comb;
  Score tero;

  const social::Locator locator(world.twitter(), world.steam());

  for (const auto& streamer : world.streamers()) {
    const std::string& description = streamer.twitch.description;

    auto run_tool = [&](const nlp::GeoTool& tool, Score& raw,
                        Score& filtered) {
      const auto outputs = tool.extract(description);
      const bool extracted = !outputs.empty();
      // Mordecai-style multi-output counts as correct if any candidate is.
      bool correct = !extracted;
      for (const auto& output : outputs) {
        if (output.compatible_with(*streamer.advertised)) correct = true;
      }
      raw.add(extracted, correct);
      // "Tool++": keep only outputs passing the conservative filter.
      std::optional<geo::Location> kept;
      for (const auto& output : outputs) {
        if (nlp::conservative_filter(description, output)) {
          kept = output;
          break;
        }
      }
      filtered.add(kept.has_value(), is_correct(kept, streamer));
    };
    run_tool(*tools.cliff, cliff, cliff_pp);
    run_tool(*tools.xponents, xponents, xponents_pp);
    run_tool(*tools.mordecai, mordecai, mordecai_pp);

    const auto combined = nlp::combine_twitch_description(
        description, tools, streamer.twitch.country_tag);
    twitch_comb.add(combined.has_value(), is_correct(combined, streamer));

    // Twitch-Twitter mapping: did we associate the right profile?
    const auto* profile = world.twitter().find(streamer.id);
    if (profile != nullptr && profile->links_to_twitch(streamer.id)) {
      // Mapping found: correct iff this streamer really owns it.
      mapping.add(true, streamer.has_twitter && streamer.twitter_backlinked);
      if (!profile->location_field.empty()) {
        auto run_parser = [&](const nlp::GeoTool& tool, Score& score) {
          const auto outputs = tool.extract(profile->location_field);
          const auto first = outputs.empty()
                                 ? std::optional<geo::Location>{}
                                 : std::optional<geo::Location>{outputs[0]};
          score.add(first.has_value(), is_correct(first, streamer));
        };
        run_parser(*tools.nominatim, nominatim);
        run_parser(*tools.geonames, geonames);
        const auto parsed =
            nlp::combine_twitter_location(profile->location_field, tools);
        twitter_comb.add(parsed.has_value(), is_correct(parsed, streamer));
      }
    } else {
      mapping.add(false, true);
    }

    // Tero end-to-end.
    const auto located = locator.locate(streamer.twitch);
    tero.add(located.located(), is_correct(located.location, streamer));
  }

  util::Table table({"technique", "% extracted", "error rate",
                     "paper (% extracted / error)"});
  auto emit = [&](const std::string& name, const Score& score,
                  const std::string& paper) {
    table.add_row({name, util::fmt_percent(score.extraction_rate()),
                   util::fmt_percent(score.error_rate()), paper});
  };
  emit("cliff      (CLIFF-like)", cliff, "0.44% / 33.4%");
  emit("xponents   (Xponents-like)", xponents, "3.55% / 36.27%");
  emit("mordecai   (Mordecai-like)", mordecai, "0.81% / 23%");
  emit("cliff++", cliff_pp, "63.99%* / 3.6%");
  emit("xponents++", xponents_pp, "41.85%* / 2.87%");
  emit("mordecai++", mordecai_pp, "17.94%* / 2.43%");
  emit("Twitch Comb.", twitch_comb, "1.91% / 3.47%");
  emit("Twitter-Twitch mapping", mapping, "1.96% / 1.6%");
  emit("nominatim  (Nominatim-like)", nominatim, "70.83% / 7.93%");
  emit("geonames   (GeoNames-like)", geonames, "69.55% / 11.87%");
  emit("Twitter Comb.", twitter_comb, "70.77% / 1.91%");
  emit("Tero (end-to-end)", tero, "2.5% / 1.46%");
  table.print(std::cout);

  bench::note("");
  bench::note(
      "(*) The paper's ++ extraction rates are relative to texts the raw "
      "tool extracted from; ours are relative to all descriptions, so the "
      "absolute levels differ while the filter's error-crushing effect — the "
      "row-wise shape — is preserved. Twitter-side rates are relative to "
      "mapped profiles with a location field.");
  return 0;
}
