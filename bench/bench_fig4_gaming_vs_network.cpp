// Reproduces Fig. 4 (+ Table 2 / Fig. 3): the difference between gaming
// latency (displayed on screen) and measured network latency of the testbed
// bottleneck, across 2 games x 8 network conditions.
//
// Paper's result: 95th percentile of |difference| <= 8.5 ms in the worst
// experiment; differences above 4 ms cluster at the start/end of background
// traffic and recover within a few seconds; Control displays LoL 37 +/- 1.4
// ms vs Genshin 15 +/- 1.5 ms.

#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "netsim/testbed.hpp"
#include "util/table.hpp"

using namespace tero;

namespace {

struct GameProfile {
  const char* name;
  double one_way_delay_s;  // sets the Control-side display level
};

}  // namespace

int main() {
  bench::header("Fig. 4: gaming vs network latency (testbed, Table 2)");
  const GameProfile games[] = {
      {"Genshin Impact", 0.0075},   // Control display ~15 ms
      {"League of Legends", 0.018}, // Control display ~36 ms
  };
  const double bandwidths[] = {1e9, 100e6};
  const std::size_t queues[] = {50, 500, 1000, 5000};
  constexpr int kRepetitions = 2;  // paper: 5; reduced for bench runtime

  struct Row {
    std::string game;
    double max_net = 0;
    double p95 = 0;
    double worst_run = 0;
    double near_edges = 0;
    double control_mean = 0;
    double control_sd = 0;
  };
  std::vector<Row> rows;

  for (const auto& game : games) {
    for (double bandwidth : bandwidths) {
      for (std::size_t queue : queues) {
        Row row;
        row.game = game.name;
        std::vector<double> p95s;
        for (int rep = 0; rep < kRepetitions; ++rep) {
          netsim::TestbedConfig config;
          config.bottleneck_bandwidth_bps = bandwidth;
          config.bottleneck_queue_packets = queue;
          config.base_one_way_delay_s = game.one_way_delay_s;
          const auto result = netsim::run_testbed(
              config, util::Rng(1000 + rep * 13 +
                                static_cast<std::uint64_t>(queue)));
          row.max_net = std::max(row.max_net, result.max_network_ms);
          p95s.push_back(result.p95_abs_diff_ms);
          row.worst_run =
              std::max(row.worst_run, result.worst_exceedance_run_s);
          row.near_edges += result.exceedance_near_edges / kRepetitions;
          row.control_mean += result.mean_control_ms / kRepetitions;
          row.control_sd += result.stddev_control_ms / kRepetitions;
        }
        row.p95 = *std::max_element(p95s.begin(), p95s.end());
        rows.push_back(row);
      }
    }
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.game != b.game) return a.game < b.game;
    return a.max_net < b.max_net;
  });

  util::Table table({"game", "max bottleneck [ms]", "p95 |diff| [ms]",
                     "worst >4ms run [s]", "exceed near edges",
                     "control display [ms]"});
  double worst_p95 = 0.0;
  for (const auto& row : rows) {
    worst_p95 = std::max(worst_p95, row.p95);
    table.add_row({row.game, util::fmt_double(row.max_net, 1),
                   util::fmt_double(row.p95, 2),
                   util::fmt_double(row.worst_run, 1),
                   util::fmt_percent(row.near_edges, 0),
                   util::fmt_pm(row.control_mean, row.control_sd, 1)});
  }
  table.print(std::cout);
  bench::note("");
  bench::note("Measured worst-case p95 |gaming - network| = " +
              util::fmt_double(worst_p95, 2) +
              " ms   (paper: 8.5 ms; conditions span ~0.4-590 ms bottleneck "
              "latency)");
  bench::note(
      "Differences above 4 ms concentrate at background-traffic phase edges "
      "and decay within seconds, matching the paper's smoothing-window "
      "explanation (\"gaming latency is computed as an average over a window "
      "of a few seconds\").");
  return 0;
}
