#include <gtest/gtest.h>

#include "netsim/game.hpp"
#include "netsim/link.hpp"
#include "netsim/tcp.hpp"
#include "netsim/testbed.hpp"
#include "netsim/udp.hpp"
#include "util/event_loop.hpp"

namespace tero::netsim {
namespace {

TEST(Link, SerializationAndPropagationDelay) {
  util::EventLoop loop;
  Link link(loop, "l", 8000.0, 0.5, 10);  // 1000 B/s, 0.5 s propagation
  double arrival = -1.0;
  link.set_receiver([&](const Packet&) { arrival = loop.now(); });
  Packet packet;
  packet.size_bytes = 1000;  // 1 s serialization
  link.send(packet);
  loop.run();
  EXPECT_NEAR(arrival, 1.5, 1e-9);
  EXPECT_EQ(link.delivered(), 1u);
}

TEST(Link, QueueingDelaysBackToBackPackets) {
  util::EventLoop loop;
  Link link(loop, "l", 8000.0, 0.0, 10);
  std::vector<double> arrivals;
  link.set_receiver([&](const Packet&) { arrivals.push_back(loop.now()); });
  Packet packet;
  packet.size_bytes = 1000;
  link.send(packet);
  link.send(packet);
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[1] - arrivals[0], 1.0, 1e-9);
}

TEST(Link, DropTailWhenFull) {
  util::EventLoop loop;
  Link link(loop, "l", 8000.0, 0.0, 2);
  link.set_receiver([](const Packet&) {});
  Packet packet;
  packet.size_bytes = 1000;
  EXPECT_TRUE(link.send(packet));
  EXPECT_TRUE(link.send(packet));
  EXPECT_FALSE(link.send(packet));  // third is tail-dropped
  EXPECT_EQ(link.drops(), 1u);
  loop.run();
  EXPECT_EQ(link.delivered(), 2u);
}

TEST(Link, CurrentLatencyGrowsWithBacklog) {
  util::EventLoop loop;
  Link link(loop, "l", 8000.0, 0.001, 100);
  link.set_receiver([](const Packet&) {});
  const double idle = link.current_latency(1000);
  Packet packet;
  packet.size_bytes = 1000;
  for (int i = 0; i < 5; ++i) link.send(packet);
  EXPECT_GT(link.current_latency(1000), idle + 4.0);
  EXPECT_EQ(link.queue_length(), 5u);
}

TEST(Udp, SendsAtConfiguredRate) {
  util::EventLoop loop;
  Link link(loop, "l", 1e9, 0.0, 100000);
  std::uint64_t received = 0;
  link.set_receiver([&](const Packet&) { ++received; });
  UdpCbrFlow flow(loop, link, 1, 1.2e6, 0.0, 10.0);  // 100 pps at 1500 B
  flow.start();
  loop.run_until(10.0);
  EXPECT_NEAR(static_cast<double>(received), 1000.0, 20.0);
}

TEST(Tcp, FillsAvailableBandwidth) {
  util::EventLoop loop;
  Link link(loop, "l", 10e6, 0.01, 100);
  TcpRenoFlow flow(loop, link, 1, 0.0, 10.0);
  link.set_receiver([&](const Packet& packet) {
    if (packet.kind == PacketKind::kTcpData) flow.deliver_data(packet);
  });
  flow.start();
  loop.run_until(10.0);
  // 10 Mbps for ~10 s = ~8333 MSS; expect a solid majority utilization.
  EXPECT_GT(flow.delivered(), 5000);
  EXPECT_LT(flow.delivered(), 9000);
}

TEST(Tcp, LossTriggersRetransmissions) {
  util::EventLoop loop;
  Link link(loop, "l", 2e6, 0.02, 10);  // small queue forces drops
  TcpRenoFlow flow(loop, link, 1, 0.0, 8.0);
  link.set_receiver([&](const Packet& packet) {
    if (packet.kind == PacketKind::kTcpData) flow.deliver_data(packet);
  });
  flow.start();
  loop.run_until(8.0);
  EXPECT_GT(link.drops(), 0u);
  EXPECT_GT(flow.retransmits() + flow.timeouts(), 0u);
  EXPECT_GT(flow.delivered(), 500);  // still makes progress
}

TEST(Tcp, RateCapLimitsThroughput) {
  util::EventLoop loop;
  Link link(loop, "l", 100e6, 0.005, 1000);
  TcpRenoFlow flow(loop, link, 1, 0.0, 10.0, 0.002, 1500, 1e6);  // 1 Mbps cap
  link.set_receiver([&](const Packet& packet) {
    if (packet.kind == PacketKind::kTcpData) flow.deliver_data(packet);
  });
  flow.start();
  loop.run_until(10.0);
  // 1 Mbps for 10 s = ~833 MSS.
  EXPECT_NEAR(static_cast<double>(flow.delivered()), 833.0, 60.0);
}

TEST(Game, DisplayTracksPathRtt) {
  util::EventLoop loop;
  GameSession session(loop, 1, 1.0 / 30.0, 1.0);
  session.set_uplink(nullptr, 0.020);
  session.set_downlink_delay(0.020);
  session.start(0.0, 10.0);
  loop.run_until(10.0);
  EXPECT_GT(session.samples(), 200u);
  EXPECT_NEAR(session.displayed_latency_ms(), 40.0, 2.0);
}

TEST(Game, DisplayReflectsBottleneckQueueing) {
  util::EventLoop loop;
  Link bottleneck(loop, "b", 1e6, 0.001, 10000);
  GameSession session(loop, 1, 1.0 / 30.0, 1.0);
  session.set_uplink(&bottleneck, 0.005);
  session.set_downlink_delay(0.005);
  bottleneck.set_receiver([&](const Packet& packet) {
    if (packet.kind == PacketKind::kGameEcho) {
      session.on_bottleneck_delivery(packet);
    }
  });
  // Saturate the bottleneck with UDP from t=5.
  UdpCbrFlow udp(loop, bottleneck, 2, 1.2e6, 5.0, 20.0);
  session.start(0.0, 20.0);
  udp.start();
  loop.run_until(4.9);
  const double before = session.displayed_latency_ms();
  loop.run_until(20.0);
  const double after = session.displayed_latency_ms();
  EXPECT_GT(after, before + 20.0);  // queue build-up visible on screen
}

TEST(Testbed, SmallQueueKeepsDisplayAccurate) {
  TestbedConfig config;
  config.warmup_s = 15;
  config.udp_phase_s = 15;
  config.mixed_phase_s = 15;
  config.diedown_s = 10;
  config.bottleneck_queue_packets = 50;
  const TestbedResult result = run_testbed(config, util::Rng(1));
  EXPECT_GT(result.samples.size(), 200u);
  EXPECT_LT(result.p95_abs_diff_ms, 4.0);
  EXPECT_LT(result.max_network_ms, 10.0);
  EXPECT_GT(result.game_samples, 100u);
}

TEST(Testbed, LargeQueueReachesHighLatencyAndRecovers) {
  TestbedConfig config;
  config.warmup_s = 20;
  config.udp_phase_s = 30;
  config.mixed_phase_s = 60;
  config.diedown_s = 20;
  config.bottleneck_queue_packets = 5000;
  const TestbedResult result = run_testbed(config, util::Rng(2));
  // Full queue at 100 Mbps = 5000 * 12000 bits / 1e8 = 600 ms.
  EXPECT_GT(result.max_network_ms, 400.0);
  // The display eventually tracks it: the last mixed-phase samples show a
  // small adjusted-vs-network difference.
  int tracked = 0;
  for (const auto& sample : result.samples) {
    if (sample.t > 100.0 && sample.t < 125.0) {
      const double adjusted =
          sample.test_display_ms - sample.control_display_ms;
      if (std::abs(adjusted - sample.network_ms) < 25.0) ++tracked;
    }
  }
  EXPECT_GT(tracked, 50);
}

TEST(Testbed, ControlStationUnaffectedByCongestion) {
  TestbedConfig config;
  config.warmup_s = 10;
  config.udp_phase_s = 20;
  config.mixed_phase_s = 10;
  config.diedown_s = 5;
  config.bottleneck_queue_packets = 1000;
  const TestbedResult result = run_testbed(config, util::Rng(3));
  EXPECT_NEAR(result.mean_control_ms, 36.0, 2.0);
  EXPECT_LT(result.stddev_control_ms, 1.0);
}

}  // namespace
}  // namespace tero::netsim
