#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "tsdb/store.hpp"
#include "serve/snapshot_io.hpp"
#include "stream/channel.hpp"
#include "stream/checkpoint.hpp"
#include "stream/pipeline.hpp"
#include "stream/schedule.hpp"
#include "stream/window.hpp"
#include "synth/sessions.hpp"
#include "synth/world.hpp"
#include "tero/pipeline.hpp"

namespace tero::stream {
namespace {

// ---------------------------------------------------------------- channel --

TEST(Channel, FifoAndCapacity) {
  Channel<int> channel(3);
  EXPECT_EQ(channel.capacity(), 3u);
  EXPECT_TRUE(channel.try_push(1));
  EXPECT_TRUE(channel.try_push(2));
  EXPECT_TRUE(channel.try_push(3));
  EXPECT_FALSE(channel.try_push(4));  // full
  EXPECT_EQ(channel.size(), 3u);
  EXPECT_EQ(channel.pop(), 1);
  EXPECT_EQ(channel.pop(), 2);
  EXPECT_EQ(channel.pop(), 3);
  EXPECT_FALSE(channel.try_pop().has_value());
}

TEST(Channel, CloseDrainsThenEnds) {
  Channel<int> channel(8);
  EXPECT_TRUE(channel.push(1));
  EXPECT_TRUE(channel.push(2));
  channel.close();
  EXPECT_FALSE(channel.push(3));  // producers see closed
  EXPECT_TRUE(channel.closed());
  EXPECT_EQ(channel.pop(), 1);  // consumers drain the backlog...
  EXPECT_EQ(channel.pop(), 2);
  EXPECT_FALSE(channel.pop().has_value());  // ...then get end-of-stream
}

TEST(Channel, BlockingPushCountsStallAndRecovers) {
  obs::MetricsRegistry registry;
  auto& stalls = registry.counter("tero.stream.backpressure_stalls");
  Channel<int> channel(1, nullptr, &stalls);
  EXPECT_TRUE(channel.push(1));
  std::thread producer([&] { EXPECT_TRUE(channel.push(2)); });
  // The producer is blocked on the full channel; popping frees it.
  while (channel.stats().stalls == 0) std::this_thread::yield();
  EXPECT_EQ(channel.pop(), 1);
  producer.join();
  EXPECT_EQ(channel.pop(), 2);
  const ChannelStats stats = channel.stats();
  EXPECT_EQ(stats.pushed, 2u);
  EXPECT_EQ(stats.popped, 2u);
  EXPECT_EQ(stats.stalls, 1u);
  EXPECT_LE(stats.max_depth, channel.capacity());
  EXPECT_EQ(stalls.value(), 1u);
}

TEST(Channel, SetCapacityRetunesTheBoundLive) {
  Channel<int> channel(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(channel.push(i));
  ASSERT_FALSE(channel.try_push(99));

  // Shrinking below the current depth never drops queued elements; pushes
  // stay blocked until the consumer drains below the new bound.
  channel.set_capacity(2);
  EXPECT_EQ(channel.capacity(), 2u);
  EXPECT_EQ(channel.size(), 4u);
  EXPECT_FALSE(channel.try_push(99));
  EXPECT_EQ(channel.pop(), 0);
  EXPECT_EQ(channel.pop(), 1);
  EXPECT_FALSE(channel.try_push(99));  // still at the new bound (2 queued)
  EXPECT_EQ(channel.pop(), 2);
  EXPECT_TRUE(channel.try_push(50));

  // Growing wakes a producer blocked on the old bound.
  Channel<int> grown(1);
  ASSERT_TRUE(grown.push(1));
  std::thread producer([&] { EXPECT_TRUE(grown.push(2)); });
  while (grown.stats().stalls == 0) std::this_thread::yield();
  grown.set_capacity(4);
  producer.join();
  EXPECT_EQ(grown.size(), 2u);
  EXPECT_EQ(grown.pop(), 1);
  EXPECT_EQ(grown.pop(), 2);

  // 0 clamps to 1, matching construction.
  grown.set_capacity(0);
  EXPECT_EQ(grown.capacity(), 1u);
}

TEST(Channel, MpscDeliversEverything) {
  Channel<int> channel(4);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&channel, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(channel.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    const auto value = channel.pop();
    ASSERT_TRUE(value.has_value());
    ASSERT_FALSE(seen[*value]);
    seen[*value] = true;
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(channel.stats().pushed, channel.stats().popped);
  EXPECT_LE(channel.stats().max_depth, channel.capacity());
}

TEST(Channel, TeardownReleasesBlockedProducersAndConsumers) {
  // Teardown stress (DESIGN.md §11): close() must wake every producer
  // blocked on a full channel and every consumer blocked on an empty one,
  // with no lost wakeups, double-frees, or racy reads — the test is run
  // under TSan in CI. Repeat to give the race a real chance to fire.
  for (int round = 0; round < 25; ++round) {
    Channel<int> channel(2);
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    std::atomic<int> popped{0};
    std::atomic<int> rejected_pushes{0};
    std::vector<std::thread> workers;
    for (int p = 0; p < kProducers; ++p) {
      workers.emplace_back([&channel, &rejected_pushes] {
        // Push until the close rejects us, so every producer is guaranteed
        // to experience the teardown (blocked or mid-push).
        for (int i = 0; channel.push(i); ++i) {
        }
        ++rejected_pushes;
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      workers.emplace_back([&channel, &popped] {
        // Drain until end-of-stream; after the close this blocks on the
        // emptying channel and must still wake up cleanly.
        while (channel.pop().has_value()) ++popped;
      });
    }
    // Let the pipeline reach a steady blocked state, then tear it down.
    while (channel.stats().popped < 10) std::this_thread::yield();
    channel.close();
    for (auto& worker : workers) worker.join();
    // Every producer that lost its push saw `false`; every consumer got a
    // clean end-of-stream; whatever was accepted before the close was
    // delivered or still counted.
    EXPECT_EQ(rejected_pushes.load(), kProducers);
    const ChannelStats stats = channel.stats();
    EXPECT_EQ(stats.popped, static_cast<std::uint64_t>(popped.load()));
    EXPECT_LE(stats.popped, stats.pushed);
    EXPECT_FALSE(channel.pop().has_value());  // stays closed and drained
  }
}

// ---------------------------------------------------------------- windows --

TEST(WindowAggregate, WelfordMatchesDirectComputation) {
  WindowAggregate agg(0.01);
  const std::vector<double> values{12.0, 47.5, 33.0, 88.0, 21.0, 47.5};
  double sum = 0.0;
  for (const double v : values) {
    agg.add(v);
    sum += v;
  }
  EXPECT_EQ(agg.count(), values.size());
  EXPECT_NEAR(agg.mean(), sum / values.size(), 1e-12);
  double m2 = 0.0;
  for (const double v : values) {
    m2 += (v - agg.mean()) * (v - agg.mean());
  }
  EXPECT_NEAR(agg.m2(), m2, 1e-9);
  EXPECT_NEAR(agg.sketch().quantile(0.5), 40.0, 8.0);
}

TEST(WindowAggregate, MergeIsDeterministicAndCorrect) {
  const auto fill = [](WindowAggregate& agg, int from, int to) {
    for (int i = from; i < to; ++i) agg.add(10.0 + (i % 37));
  };
  WindowAggregate a1(0.01), b1(0.01), a2(0.01), b2(0.01);
  fill(a1, 0, 500);
  fill(b1, 500, 900);
  fill(a2, 0, 500);
  fill(b2, 500, 900);
  a1.merge(b1);
  a2.merge(b2);
  // Bit-identical across repetitions (fixed evaluation order).
  EXPECT_EQ(a1.count(), a2.count());
  EXPECT_EQ(a1.mean(), a2.mean());
  EXPECT_EQ(a1.m2(), a2.m2());
  // And statistically correct against a single sequential fold.
  WindowAggregate sequential(0.01);
  fill(sequential, 0, 900);
  EXPECT_EQ(a1.count(), sequential.count());
  EXPECT_NEAR(a1.mean(), sequential.mean(), 1e-9);
  EXPECT_NEAR(a1.variance(), sequential.variance(), 1e-6);
  EXPECT_EQ(a1.sketch().count(), sequential.sketch().count());
  EXPECT_EQ(a1.sketch().quantile(0.5), sequential.sketch().quantile(0.5));
}

TEST(WindowAggregate, RestoreRoundTripsBitIdentically) {
  WindowAggregate original(0.02);
  for (int i = 0; i < 300; ++i) original.add(5.0 + 3.0 * (i % 53));
  WindowAggregate restored(0.02);
  restored.restore(original.count(), original.mean(), original.m2(),
                   original.sketch().export_buckets(),
                   original.sketch().underflow());
  EXPECT_EQ(restored.count(), original.count());
  EXPECT_EQ(restored.mean(), original.mean());
  EXPECT_EQ(restored.m2(), original.m2());
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    EXPECT_EQ(restored.sketch().quantile(q), original.sketch().quantile(q));
  }
}

TEST(Watermark, TracksMinOverOpenSourcesMonotonically) {
  WatermarkTracker wm;
  EXPECT_LT(wm.watermark(), 0.0);  // -infinity before any source opens
  wm.open(0, 100.0);
  EXPECT_EQ(wm.watermark(), 100.0);
  wm.open(1, 50.0);  // a second, older source holds the min back...
  EXPECT_EQ(wm.watermark(), 100.0);  // ...but W never regresses
  wm.update(1, 150.0);
  EXPECT_EQ(wm.watermark(), 100.0);  // min over open is source 0 at 100
  wm.update(0, 120.0);
  EXPECT_EQ(wm.watermark(), 120.0);  // min advanced to 120
  wm.close(0);
  EXPECT_EQ(wm.watermark(), 150.0);  // only source 1 (at 150) stays open
  wm.close(1);
  EXPECT_EQ(wm.open_sources(), 0u);
  EXPECT_EQ(wm.watermark(), 150.0);  // closing the last source holds W
  EXPECT_EQ(window_of(150.0, 100.0), 1);
  EXPECT_EQ(window_of(-0.5, 100.0), -1);
}

// ---------------------------------------------------------------- fixture --

struct Scenario {
  synth::World world;
  std::vector<synth::TrueStream> streams;
};

Scenario make_scenario(std::size_t streamers = 40, int days = 2) {
  synth::WorldConfig world_config;
  world_config.seed = 1;
  world_config.num_streamers = streamers;
  world_config.p_twitter = 0.8;
  synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = days;
  synth::SessionGenerator generator(world, behavior, 2);
  auto streams = generator.generate();
  return {std::move(world), std::move(streams)};
}

StreamConfig base_config(std::size_t threads) {
  StreamConfig config;
  config.tero.threads = threads;
  config.window_size_s = 21600.0;
  config.publish_every_windows = 0;
  return config;
}

std::string snapshot_bytes(std::uint64_t epoch,
                           const std::vector<serve::SnapshotEntry>& entries) {
  std::ostringstream out;
  const serve::Snapshot snapshot(epoch, entries);
  serve::save_snapshot(snapshot, out);
  return out.str();
}

void expect_same_funnel(const core::Funnel& a, const core::Funnel& b) {
  EXPECT_EQ(a.streamers_total, b.streamers_total);
  EXPECT_EQ(a.streamers_located, b.streamers_located);
  EXPECT_EQ(a.thumbnails, b.thumbnails);
  EXPECT_EQ(a.visible, b.visible);
  EXPECT_EQ(a.ocr_ok, b.ocr_ok);
  EXPECT_EQ(a.retained, b.retained);
  EXPECT_EQ(a.clustered, b.clustered);
}

// ------------------------------------------------------- batch equivalence --

TEST(StreamPipeline, MatchesBatchBitIdenticallyAt1And8Threads) {
  const Scenario scenario = make_scenario();

  core::TeroConfig batch_config;
  batch_config.threads = 1;
  core::Pipeline batch(batch_config);
  const core::Dataset expected = batch.run(scenario.world, scenario.streams);
  const std::string expected_bytes =
      snapshot_bytes(1, serve::entries_from(expected));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    StreamPipeline pipeline(base_config(threads));
    const StreamResult result =
        pipeline.run(scenario.world, scenario.streams);
    EXPECT_FALSE(result.crashed);
    EXPECT_EQ(result.final_epoch, 1u);
    expect_same_funnel(result.dataset.funnel, expected.funnel);
    ASSERT_EQ(result.dataset.entries.size(), expected.entries.size());
    EXPECT_EQ(snapshot_bytes(1, result.final_entries), expected_bytes)
        << "streaming snapshot differs from batch at " << threads
        << " threads";
  }
}

TEST(StreamPipeline, DelaysAndThrottlingDoNotChangeFinalOutput) {
  const Scenario scenario = make_scenario();
  StreamPipeline plain(base_config(4));
  const StreamResult expected =
      plain.run(scenario.world, scenario.streams);

  StreamConfig disturbed = base_config(4);
  disturbed.max_delivery_delay_s = 2 * disturbed.window_size_s;
  disturbed.download_rate = 200.0;
  disturbed.download_burst = 20.0;
  StreamPipeline pipeline(disturbed);
  const StreamResult result = pipeline.run(scenario.world, scenario.streams);

  // Late events exist (delivery delays exceed the window span)...
  EXPECT_GT(result.late_events, 0u);
  // ...but the exact path is unaffected: same bytes, same funnel.
  expect_same_funnel(result.dataset.funnel, expected.dataset.funnel);
  EXPECT_EQ(snapshot_bytes(1, result.final_entries),
            snapshot_bytes(1, expected.final_entries));
}

// ------------------------------------------------------------- live epochs --

TEST(StreamPipeline, PublishesLiveEpochsIntoService) {
  const Scenario scenario = make_scenario();
  serve::ServeConfig serve_config;
  serve::QueryService service(serve_config);

  StreamConfig config = base_config(4);
  config.publish_every_windows = 2;
  config.service = &service;
  StreamPipeline pipeline(config);
  const StreamResult result = pipeline.run(scenario.world, scenario.streams);

  EXPECT_GT(result.epochs_published, 0u);
  EXPECT_GT(result.windows_closed, 0u);
  // The final exact snapshot is published last, one epoch past the lives.
  EXPECT_EQ(result.final_epoch, result.epochs_published + 1);
  EXPECT_EQ(service.epoch(), result.final_epoch);
  const serve::SnapshotPtr published = service.snapshot();
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(snapshot_bytes(result.final_epoch, result.final_entries),
            snapshot_bytes(published->epoch(),
                           {published->entries().begin(),
                            published->entries().end()}));
}

// --------------------------------------------------------------- tsdb sink --

TEST(StreamPipeline, TsdbSinkRecordsWindowMeansBitIdentically) {
  const Scenario scenario = make_scenario();
  std::uint64_t digests[2] = {0, 0};
  std::string layouts[2];
  std::size_t index = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    tsdb::TimeSeriesStore store{tsdb::TsdbConfig{}};
    StreamConfig config = base_config(threads);
    config.tsdb = &store;
    StreamPipeline pipeline(config);
    const StreamResult result = pipeline.run(scenario.world, scenario.streams);
    EXPECT_FALSE(result.crashed);
    EXPECT_GT(result.windows_closed, 0u);
    const auto stats = store.stats();
    // One sample per non-empty closed window lands in the store.
    EXPECT_GT(stats.head_samples + stats.segment_samples, 0u);
    EXPECT_LE(stats.head_samples + stats.segment_samples,
              result.windows_closed);
    digests[index] = store.dataset_digest();
    layouts[index] = store.segment_layout();
    ++index;
  }
  // The sink closes windows serially in deterministic order, so the
  // historical store's contents are thread-count independent.
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(layouts[0], layouts[1]);
}

// ------------------------------------------------------------ backpressure --

TEST(StreamPipeline, SlowSinkBoundsQueuesAndCountsStalls) {
  const Scenario scenario = make_scenario(24, 1);
  obs::MetricsRegistry registry;

  StreamConfig config = base_config(2);
  config.channel_capacity = 4;
  config.extract_batch = 4;
  config.sink_delay_us = 150;
  config.tero.metrics = &registry;
  StreamPipeline pipeline(config);
  const StreamResult result = pipeline.run(scenario.world, scenario.streams);

  // The slow sink pushed backpressure upstream...
  const std::uint64_t stalls = result.to_extract.stalls +
                               result.to_clean.stalls +
                               result.to_sink.stalls;
  EXPECT_GT(stalls, 0u);
  // ...while every queue stayed within its bound (memory is bounded).
  EXPECT_LE(result.to_extract.max_depth, config.channel_capacity);
  EXPECT_LE(result.to_clean.max_depth, config.channel_capacity);
  EXPECT_LE(result.to_sink.max_depth, config.channel_capacity);
  EXPECT_EQ(registry.counter("tero.stream.backpressure_stalls").value(),
            stalls);
  // Metrics wiring: events/windows counters agree with the result struct.
  EXPECT_EQ(registry.counter("tero.stream.events").value(), result.events);
  EXPECT_EQ(registry.counter("tero.stream.windows_closed").value(),
            result.windows_closed);
}

// ------------------------------------------------------------- checkpoints --

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tero_stream_ckpt_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string fresh_dir(const std::string& tag) {
    const auto path = dir_ / tag;
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path.string();
  }

  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, FileRoundTripIsExact) {
  const Scenario scenario = make_scenario(24, 1);
  StreamConfig config = base_config(2);
  config.checkpoint_every_windows = 1;
  config.checkpoint_dir = fresh_dir("roundtrip");
  StreamPipeline pipeline(config);
  const StreamResult result = pipeline.run(scenario.world, scenario.streams);
  ASSERT_GT(result.checkpoints_written, 0u);

  const auto latest = latest_checkpoint_id(config.checkpoint_dir);
  ASSERT_TRUE(latest.has_value());
  const CheckpointData loaded =
      read_checkpoint_file(config.checkpoint_dir, *latest);
  EXPECT_EQ(loaded.id, *latest);
  EXPECT_LE(loaded.cursor, loaded.events_total);

  // save -> load -> save must be byte-stable (the serialization is exact).
  std::ostringstream first;
  save_checkpoint(loaded, first);
  std::istringstream back(first.str());
  const CheckpointData reloaded = load_checkpoint(back);
  std::ostringstream second;
  save_checkpoint(reloaded, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST_F(CheckpointTest, CrashAtEveryBoundaryRecoversBitIdentically) {
  const Scenario scenario = make_scenario(24, 2);

  // Reference: one uninterrupted checkpointed run.
  StreamConfig reference_config = base_config(4);
  reference_config.publish_every_windows = 2;
  reference_config.checkpoint_every_windows = 2;
  reference_config.checkpoint_dir = fresh_dir("reference");
  StreamPipeline reference(reference_config);
  const StreamResult expected =
      reference.run(scenario.world, scenario.streams);
  ASSERT_FALSE(expected.crashed);
  ASSERT_GT(expected.checkpoints_written, 1u);
  const std::string expected_bytes =
      snapshot_bytes(1, expected.final_entries);

  for (std::uint64_t boundary = 1; boundary <= expected.checkpoints_written;
       ++boundary) {
    StreamConfig crash_config = reference_config;
    crash_config.checkpoint_dir =
        fresh_dir("crash" + std::to_string(boundary));
    crash_config.crash_after = boundary;
    StreamPipeline crashing(crash_config);
    const StreamResult crashed =
        crashing.run(scenario.world, scenario.streams);
    EXPECT_TRUE(crashed.crashed);
    EXPECT_EQ(crashed.checkpoints_written, boundary - crashed.resumed_from);

    // Restart from the same directory — at a different thread count, to
    // exercise thread-invariance across the recovery path too.
    StreamConfig resume_config = crash_config;
    resume_config.crash_after = 0;
    resume_config.tero.threads = 1;
    StreamPipeline resuming(resume_config);
    const StreamResult resumed =
        resuming.run(scenario.world, scenario.streams);
    EXPECT_FALSE(resumed.crashed);
    EXPECT_EQ(resumed.resumed_from, boundary);
    EXPECT_EQ(resumed.final_epoch, expected.final_epoch);
    expect_same_funnel(resumed.dataset.funnel, expected.dataset.funnel);
    EXPECT_EQ(snapshot_bytes(1, resumed.final_entries), expected_bytes)
        << "recovery from boundary " << boundary << " diverged";
  }
}

}  // namespace
}  // namespace tero::stream
