#include <gtest/gtest.h>

#include "image/draw.hpp"
#include "image/font.hpp"
#include "image/image.hpp"
#include "image/ops.hpp"
#include "util/rng.hpp"

namespace tero::image {
namespace {

TEST(GrayImage, ConstructionAndFill) {
  GrayImage img(10, 5, 7);
  EXPECT_EQ(img.width(), 10);
  EXPECT_EQ(img.height(), 5);
  EXPECT_EQ(img.at(9, 4), 7);
  img.fill(200);
  EXPECT_EQ(img.at(0, 0), 200);
}

TEST(GrayImage, FillRectClipsToBounds) {
  GrayImage img(10, 10, 0);
  img.fill_rect(Rect{8, 8, 10, 10}, 255);
  EXPECT_EQ(img.at(9, 9), 255);
  EXPECT_EQ(img.at(7, 7), 0);
}

TEST(GrayImage, CropClips) {
  GrayImage img(10, 10, 0);
  img.set(5, 5, 99);
  const GrayImage crop = img.crop(Rect{5, 5, 100, 100});
  EXPECT_EQ(crop.width(), 5);
  EXPECT_EQ(crop.height(), 5);
  EXPECT_EQ(crop.at(0, 0), 99);
}

TEST(GrayImage, PgmRoundTrip) {
  GrayImage img(7, 3, 0);
  img.set(2, 1, 123);
  const GrayImage back = GrayImage::from_pgm(img.to_pgm());
  EXPECT_EQ(back, img);
}

TEST(GrayImage, FromPgmRejectsGarbage) {
  EXPECT_THROW(GrayImage::from_pgm("P6\n1 1\n255\nx"), std::invalid_argument);
  EXPECT_THROW(GrayImage::from_pgm("P5\n4 4\n255\nxy"), std::invalid_argument);
}

TEST(Rect, IntersectEmptyWhenDisjoint) {
  const Rect a{0, 0, 5, 5};
  const Rect b{10, 10, 5, 5};
  EXPECT_TRUE(a.intersect(b).empty());
  EXPECT_FALSE(a.intersect(Rect{3, 3, 5, 5}).empty());
}

TEST(Font, CoversDigitsAndLabels) {
  for (char c : std::string("0123456789")) {
    EXPECT_TRUE(find_glyph(c).has_value()) << c;
  }
  for (char c : std::string("msping")) {
    EXPECT_TRUE(find_glyph(c).has_value()) << c;
  }
  EXPECT_FALSE(find_glyph('~').has_value());
  EXPECT_GE(font_alphabet().size(), 25u);
}

TEST(Font, GlyphsAreWellFormed) {
  for (char c : font_alphabet()) {
    const auto glyph = find_glyph(c);
    ASSERT_TRUE(glyph.has_value());
    for (const auto& row : glyph->rows) {
      EXPECT_EQ(row.size(), static_cast<std::size_t>(kGlyphWidth));
      for (char pixel : row) {
        EXPECT_TRUE(pixel == '#' || pixel == '.');
      }
    }
  }
}

TEST(Draw, TextWidthScalesLinearly) {
  TextStyle style;
  style.scale = 2;
  const int w1 = text_width("12", style);
  const int w2 = text_width("1234", style);
  EXPECT_EQ(w2 - w1, w1 + style.letter_spacing * style.scale);
  EXPECT_EQ(text_height(style), kGlyphHeight * 2);
}

TEST(Draw, RendersInkAtExpectedPlace) {
  GrayImage img(60, 30, 0);
  TextStyle style;
  style.scale = 2;
  style.foreground = 255;
  style.background = 10;
  draw_text(img, 2, 2, "1", style);
  // The '1' glyph has ink in its middle column.
  int ink = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (img.at(x, y) == 255) ++ink;
    }
  }
  EXPECT_GT(ink, 10);
}

TEST(Draw, NoiseChangesPixelsBounded) {
  GrayImage img(20, 20, 128);
  util::Rng rng(1);
  add_noise(img, 10.0, rng);
  bool changed = false;
  for (int y = 0; y < 20; ++y) {
    for (int x = 0; x < 20; ++x) {
      if (img.at(x, y) != 128) changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(Ops, UpscalePreservesMeanRoughly) {
  GrayImage img(8, 8, 0);
  img.fill_rect(Rect{0, 0, 4, 8}, 200);
  const GrayImage up = upscale_bilinear(img, 3);
  EXPECT_EQ(up.width(), 24);
  double mean_in = 0.0, mean_out = 0.0;
  for (auto p : img.pixels()) mean_in += p;
  for (auto p : up.pixels()) mean_out += p;
  mean_in /= img.pixels().size();
  mean_out /= up.pixels().size();
  EXPECT_NEAR(mean_in, mean_out, 5.0);
}

TEST(Ops, GaussianBlurSmoothsEdges) {
  GrayImage img(20, 20, 0);
  img.fill_rect(Rect{10, 0, 10, 20}, 255);
  const GrayImage blurred = gaussian_blur(img, 2.0);
  // The edge pixel should now be intermediate.
  EXPECT_GT(blurred.at(10, 10), 30);
  EXPECT_LT(blurred.at(10, 10), 225);
}

TEST(Ops, OtsuSeparatesBimodal) {
  GrayImage img(20, 20, 30);
  img.fill_rect(Rect{0, 0, 10, 20}, 220);
  const std::uint8_t threshold = otsu_threshold(img);
  EXPECT_GE(threshold, 30);
  EXPECT_LT(threshold, 220);
  const GrayImage binary = binarize(img, threshold);
  EXPECT_EQ(binary.at(0, 0), 255);
  EXPECT_EQ(binary.at(15, 0), 0);
}

TEST(Ops, MorphologyDilateThenErodeClosesGaps) {
  GrayImage img(20, 5, 0);
  // Two blobs separated by a 1-px gap.
  img.fill_rect(Rect{2, 1, 4, 3}, 255);
  img.fill_rect(Rect{7, 1, 4, 3}, 255);
  const GrayImage closed = erode3x3(dilate3x3(img));
  // The gap column (x=6) should now contain foreground.
  bool bridged = false;
  for (int y = 0; y < 5; ++y) {
    if (closed.at(6, y) == 255) bridged = true;
  }
  EXPECT_TRUE(bridged);
}

TEST(Ops, InvertAndForegroundRatio) {
  GrayImage img(10, 10, 0);
  img.fill_rect(Rect{0, 0, 5, 10}, 255);
  EXPECT_NEAR(foreground_ratio(img), 0.5, 1e-9);
  const GrayImage inverted = invert(img);
  EXPECT_EQ(inverted.at(0, 0), 0);
  EXPECT_EQ(inverted.at(9, 9), 255);
}

TEST(Ops, ConnectedComponentsFindsAndSortsBlobs) {
  GrayImage img(30, 10, 0);
  img.fill_rect(Rect{20, 2, 4, 4}, 255);
  img.fill_rect(Rect{2, 2, 3, 3}, 255);
  const auto components = connected_components(img);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].bounds.x, 2);   // sorted left to right
  EXPECT_EQ(components[1].bounds.x, 20);
  EXPECT_EQ(components[0].area, 9);
  EXPECT_EQ(components[1].area, 16);
}

TEST(Ops, ConnectedComponentsMinAreaFiltersSpecks) {
  GrayImage img(10, 10, 0);
  img.set(1, 1, 255);                      // single-pixel speck
  img.fill_rect(Rect{4, 4, 3, 3}, 255);
  EXPECT_EQ(connected_components(img, 2).size(), 1u);
}

TEST(Ops, ConnectedComponentsUses8Connectivity) {
  GrayImage img(4, 4, 0);
  img.set(0, 0, 255);
  img.set(1, 1, 255);  // diagonal neighbour
  EXPECT_EQ(connected_components(img).size(), 1u);
}

TEST(Ops, NormalizeGlyphDensities) {
  GrayImage img(16, 16, 0);
  img.fill_rect(Rect{0, 0, 8, 16}, 255);
  const auto grid = normalize_glyph(img, Rect{0, 0, 16, 16}, 4);
  ASSERT_EQ(grid.size(), 16u);
  EXPECT_NEAR(grid[0], 1.0, 1e-9);   // left half is ink
  EXPECT_NEAR(grid[3], 0.0, 1e-9);   // right half empty
}

}  // namespace
}  // namespace tero::image
