#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "tsdb/encoding.hpp"
#include "tsdb/segment.hpp"
#include "tsdb/store.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fs = std::filesystem;

namespace tero::tsdb {
namespace {

// ===========================================================================
// Chunk codec
// ===========================================================================

std::vector<Sample> ramp(std::size_t n, std::int64_t t0, std::int64_t step,
                         double v0, double slope) {
  std::vector<Sample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back({t0 + static_cast<std::int64_t>(i) * step,
                       v0 + slope * static_cast<double>(i)});
  }
  return samples;
}

TEST(ChunkCodec, RoundTripsEmptyAndSingle) {
  EXPECT_TRUE(decode_chunk(encode_chunk({})).empty());
  const std::vector<Sample> one = {{123456789, 42.5}};
  EXPECT_EQ(decode_chunk(encode_chunk(one)), one);
}

TEST(ChunkCodec, RoundTripsSteadyCadence) {
  const auto samples = ramp(500, 1'000'000, 250, 30.0, 0.0);
  const std::string bytes = encode_chunk(samples);
  EXPECT_EQ(decode_chunk(bytes), samples);
  // A constant-value steady cadence is the codec's best case: roughly two
  // bits per sample after the header, far below 16 raw bytes.
  EXPECT_LT(bytes.size() * 5, samples.size() * kRawSampleBytes);
}

TEST(ChunkCodec, RejectsTimestampRegression) {
  const std::vector<Sample> bad = {{100, 1.0}, {99, 2.0}};
  EXPECT_THROW((void)encode_chunk(bad), std::invalid_argument);
}

TEST(ChunkCodec, CountMatchesHeader) {
  const auto samples = ramp(37, 5, 3, 1.0, 0.5);
  EXPECT_EQ(chunk_count(encode_chunk(samples)), 37u);
}

TEST(ChunkCodec, CursorStreamsSamplesInOrder) {
  const auto samples = ramp(64, 0, 1000, 10.0, 1.0);
  const std::string bytes = encode_chunk(samples);  // must outlive the cursor
  ChunkCursor cursor(bytes);
  EXPECT_EQ(cursor.count(), samples.size());
  Sample sample;
  std::size_t i = 0;
  while (cursor.next(sample)) {
    ASSERT_LT(i, samples.size());
    EXPECT_EQ(sample, samples[i]);
    ++i;
  }
  EXPECT_EQ(i, samples.size());
  EXPECT_NO_THROW(cursor.expect_end());
}

/// The fuzz-ish satellite: 10 seeds x stream shapes round-trip bit-exact,
/// and every single-byte corruption of the encoding errors out — never
/// silently yields wrong samples.
std::vector<Sample> random_stream(util::Rng& rng, int shape,
                                  std::size_t count) {
  std::vector<Sample> samples;
  samples.reserve(count);
  std::int64_t t = rng.uniform_int(0, 1'000'000'000);
  for (std::size_t i = 0; i < count; ++i) {
    switch (shape) {
      case 0:  // constant value, steady cadence
        samples.push_back({t, 25.0});
        t += 500;
        break;
      case 1:  // monotone ramp, jittered cadence
        samples.push_back({t, 10.0 + static_cast<double>(i) * 0.25});
        t += rng.uniform_int(1, 2000);
        break;
      case 2:  // NaN-free jitter around a mean
        samples.push_back({t, 40.0 + rng.normal(0.0, 12.0)});
        t += rng.uniform_int(0, 750);
        break;
      default:  // duplicate timestamps (several thumbnails per ms)
        samples.push_back({t, std::floor(rng.uniform(10.0, 90.0))});
        if (rng.bernoulli(0.5)) t += rng.uniform_int(1, 100);
        break;
    }
  }
  return samples;
}

TEST(ChunkCodec, FuzzRoundTripAndCorruptionSweep) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (int shape = 0; shape < 4; ++shape) {
      util::Rng rng = util::Rng::indexed(seed, static_cast<unsigned>(shape));
      const auto samples =
          random_stream(rng, shape, 64 + seed * 7 + static_cast<unsigned>(shape));
      const std::string bytes = encode_chunk(samples);
      ASSERT_EQ(decode_chunk(bytes), samples)
          << "seed " << seed << " shape " << shape;

      // Corrupt every byte (all 8 bit flips would octuple the runtime for
      // no extra coverage: the checksum catches any byte change).
      for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::string corrupt = bytes;
        corrupt[i] = static_cast<char>(corrupt[i] ^ 0x2a);
        EXPECT_THROW((void)decode_chunk(corrupt), ChunkCorruptError)
            << "seed " << seed << " shape " << shape << " byte " << i;
      }
      // Truncations at every length must also fail loudly.
      for (std::size_t len = 0; len < bytes.size(); len += 7) {
        EXPECT_THROW((void)decode_chunk(bytes.substr(0, len)),
                     ChunkCorruptError);
      }
    }
  }
}

// ===========================================================================
// Segments
// ===========================================================================

TEST(SegmentTest, BuildFindAndPersistRoundTrip) {
  std::map<std::string, std::vector<Sample>> series;
  series["alpha"] = ramp(100, 0, 1000, 20.0, 0.1);
  series["beta"] = ramp(50, 500, 2000, 60.0, -0.2);
  const Segment segment = build_segment(7, 0, series);
  EXPECT_EQ(segment.id, 7u);
  EXPECT_EQ(segment.sample_count, 150u);
  EXPECT_EQ(segment.raw_bytes, 150u * kRawSampleBytes);
  ASSERT_NE(segment.find("alpha"), nullptr);
  EXPECT_EQ(segment.find("alpha")->count, 100u);
  EXPECT_EQ(segment.find("gamma"), nullptr);

  const fs::path dir = fs::temp_directory_path() / "tero_tsdb_segment_test";
  fs::create_directories(dir);
  const std::string path = (dir / "seg.tkv").string();
  save_segment(segment, path);
  const Segment loaded = load_segment(path);
  EXPECT_EQ(loaded.id, segment.id);
  EXPECT_EQ(loaded.sample_count, segment.sample_count);
  EXPECT_EQ(loaded.compressed_bytes, segment.compressed_bytes);
  ASSERT_NE(loaded.find("beta"), nullptr);
  EXPECT_EQ(decode_chunk(loaded.find("beta")->bytes), series["beta"]);
  fs::remove_all(dir);
}

TEST(SegmentTest, MergePreservesEverySampleInTimeOrder) {
  std::map<std::string, std::vector<Sample>> first, second;
  first["k"] = ramp(40, 0, 100, 1.0, 1.0);
  second["k"] = ramp(40, 4000, 100, 41.0, 1.0);
  second["only-late"] = ramp(5, 4500, 10, 9.0, 0.0);
  const auto a = std::make_shared<const Segment>(build_segment(1, 0, first));
  const auto b = std::make_shared<const Segment>(build_segment(2, 0, second));
  const std::vector<std::shared_ptr<const Segment>> inputs = {a, b};
  const Segment merged = merge_segments(inputs, 3, 1);
  EXPECT_EQ(merged.level, 1u);
  EXPECT_EQ(merged.sample_count, 85u);
  const auto all = decode_chunk(merged.find("k")->bytes);
  ASSERT_EQ(all.size(), 80u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const Sample& x, const Sample& y) {
                               return x.t_ms < y.t_ms;
                             }));
  EXPECT_EQ(all.front().t_ms, 0);
  EXPECT_EQ(all.back().t_ms, 4000 + 39 * 100);
}

// ===========================================================================
// TimeSeriesStore
// ===========================================================================

constexpr std::int64_t kDayMs = 86'400'000;

/// Deterministic workload: `keys` series, `days` virtual days of samples,
/// advancing the store one day at a time (exactly the stream-sink cadence).
void load_store(TimeSeriesStore& store, std::uint64_t seed, int keys,
                int days, int per_day = 24) {
  for (int day = 0; day < days; ++day) {
    for (int k = 0; k < keys; ++k) {
      util::Rng rng = util::Rng::indexed(
          seed, static_cast<std::uint64_t>(day) * 1000 +
                    static_cast<std::uint64_t>(k));
      const std::string key = "game" + std::to_string(k % 3) + "|US|key" +
                              std::to_string(k);
      for (int i = 0; i < per_day; ++i) {
        const std::int64_t t = static_cast<std::int64_t>(day) * kDayMs +
                               static_cast<std::int64_t>(i) * (kDayMs / per_day);
        store.append(key, t, std::floor(rng.uniform(20.0, 80.0)));
      }
    }
    store.advance_to((static_cast<std::int64_t>(day) + 1) * kDayMs);
  }
}

TEST(StoreTest, SealsCompactsAndAnswersRangeQueries) {
  TsdbConfig config;
  config.compact_fanin = 4;
  TimeSeriesStore store(config);
  load_store(store, 42, 6, 10);

  const auto stats = store.stats();
  EXPECT_EQ(stats.sealed_until_ms, 10 * kDayMs);
  EXPECT_EQ(stats.head_samples, 0u);
  EXPECT_EQ(stats.segment_samples, 6u * 10u * 24u);
  // 10 daily seals with fanin 4 compact twice: 10 -> 2x level1 + 2x level0.
  EXPECT_EQ(stats.segments, 4u);
  EXPECT_GT(stats.raw_bytes, stats.compressed_bytes * 4);

  RangeQuery query;
  query.key = "game0|US|key0";
  query.t0_ms = 0;
  query.t1_ms = 10 * kDayMs;
  query.window_ms = kDayMs;
  query.agg = RangeAgg::kCount;
  const auto counts = store.range(query);
  ASSERT_EQ(counts.size(), 10u);
  for (const RangePoint& point : counts) {
    EXPECT_EQ(point.count, 24u);
    EXPECT_DOUBLE_EQ(point.value, 24.0);
  }

  query.agg = RangeAgg::kPercentile;
  query.pct = 99.0;
  const auto p99 = store.range(query);
  ASSERT_EQ(p99.size(), 10u);
  for (const RangePoint& point : p99) {
    EXPECT_GE(point.value, 20.0);
    EXPECT_LE(point.value, 81.0);
  }

  // Mean over a window must match the materialized series exactly.
  query.agg = RangeAgg::kMean;
  const auto means = store.range(query);
  const auto all = store.series(query.key);
  double expect = 0.0;
  for (const Sample& sample : all) {
    if (sample.t_ms < kDayMs) expect += sample.value;
  }
  expect /= 24.0;
  EXPECT_DOUBLE_EQ(means.front().value, expect);
}

TEST(StoreTest, RangeCoversHeadAndRejectsBadQueries) {
  TimeSeriesStore store(TsdbConfig{});
  store.append("k", 10, 5.0);
  store.append("k", 20, 7.0);  // still in the head: never advanced
  RangeQuery query;
  query.key = "k";
  query.t0_ms = 0;
  query.t1_ms = 100;
  query.window_ms = 100;
  query.agg = RangeAgg::kMean;
  const auto points = store.range(query);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points.front().count, 2u);
  EXPECT_DOUBLE_EQ(points.front().value, 6.0);

  query.t1_ms = query.t0_ms;
  EXPECT_THROW((void)store.range(query), std::invalid_argument);
  query.t1_ms = 100;
  query.window_ms = 0;
  EXPECT_THROW((void)store.range(query), std::invalid_argument);
  query.window_ms = 1;
  query.t1_ms = query.t0_ms + (TimeSeriesStore::kMaxWindows + 1);
  EXPECT_THROW((void)store.range(query), std::invalid_argument);
}

TEST(StoreTest, RejectsAppendsBehindSealedFrontier) {
  TimeSeriesStore store(TsdbConfig{});
  store.append("k", kDayMs + 5, 1.0);
  store.advance_to(2 * kDayMs);
  EXPECT_THROW(store.append("k", kDayMs - 1, 2.0), std::invalid_argument);
  EXPECT_NO_THROW(store.append("k", 2 * kDayMs, 3.0));
}

TEST(StoreTest, RetentionDropsExpiredSegments) {
  TsdbConfig config;
  config.retention_ms = 3 * kDayMs;
  config.compact_fanin = 100;  // keep daily segments distinct
  TimeSeriesStore store(config);
  load_store(store, 7, 2, 8);
  const auto stats = store.stats();
  // Only segments whose max_t is within the trailing 3 days survive.
  EXPECT_LE(stats.segments, 4u);
  RangeQuery query;
  query.key = "game0|US|key0";
  query.t0_ms = 0;
  query.t1_ms = kDayMs;
  query.window_ms = kDayMs;
  query.agg = RangeAgg::kCount;
  EXPECT_EQ(store.range(query).front().count, 0u);
}

TEST(StoreTest, DriftComparesAdjacentWeeks) {
  TimeSeriesStore store(TsdbConfig{});
  const std::string key = "g|US";
  for (int day = 0; day < 14; ++day) {
    const double value = day < 7 ? 30.0 : 50.0;  // step change last week
    for (int i = 0; i < 24; ++i) {
      store.append(key, day * kDayMs + i * 3'600'000, value);
    }
    store.advance_to((day + 1) * kDayMs);
  }
  const double drift = store.drift(key, 14 * kDayMs, 99.0);
  EXPECT_NEAR(drift, 20.0, 2.0);  // sketch alpha is 1%
}

TEST(StoreTest, BitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TimeSeriesStore serial(TsdbConfig{});
    load_store(serial, seed, 5, 9);

    util::ThreadPool pool(8);
    TsdbConfig parallel_config;
    parallel_config.pool = &pool;
    TimeSeriesStore parallel(parallel_config);
    load_store(parallel, seed, 5, 9);

    EXPECT_EQ(serial.segment_layout(), parallel.segment_layout())
        << "seed " << seed;
    EXPECT_EQ(serial.dataset_digest(), parallel.dataset_digest())
        << "seed " << seed;
  }
}

// ===========================================================================
// Durability and crash recovery
// ===========================================================================

class StoreDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("tero_tsdb_store_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(StoreDiskTest, ReopensWithSegmentsAndHead) {
  std::uint64_t digest = 0;
  {
    TsdbConfig config;
    config.dir = dir_;
    TimeSeriesStore store(config);
    load_store(store, 3, 4, 5);
    store.append("late|key", 5 * kDayMs + 17, 33.0);  // stays in the head
    digest = store.dataset_digest();
  }
  TsdbConfig config;
  config.dir = dir_;
  TimeSeriesStore reopened(config);
  EXPECT_EQ(reopened.sealed_until(), 5 * kDayMs);
  EXPECT_EQ(reopened.dataset_digest(), digest);
  const auto late = reopened.series("late|key");
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late.front().t_ms, 5 * kDayMs + 17);
}

TEST_F(StoreDiskTest, TornWalTailIsDiscardedAcknowledgedSamplesSurvive) {
  {
    TsdbConfig config;
    config.dir = dir_;
    TimeSeriesStore store(config);
    store.append("k", 100, 1.0);
    store.append("k", 200, 2.0);
  }
  // Simulate a torn tail: append garbage that looks like a partial record.
  {
    std::ofstream wal(dir_ + "/wal.log",
                      std::ios::binary | std::ios::app);
    wal << "R 1 k 300 461";  // truncated mid-record
  }
  TsdbConfig config;
  config.dir = dir_;
  TimeSeriesStore reopened(config);
  const auto samples = reopened.series("k");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].t_ms, 100);
  EXPECT_EQ(samples[1].t_ms, 200);
}

TEST_F(StoreDiskTest, CrashDuringSealNeverLosesAcknowledgedSamples) {
  fault::FaultInjector injector(
      fault::FaultPlan::parse("tsdb.seal=crash@1:max=1", 5));
  {
    TsdbConfig config;
    config.dir = dir_;
    config.injector = &injector;
    TimeSeriesStore store(config);
    EXPECT_THROW(load_store(store, 11, 3, 4), std::runtime_error);
  }
  // Recovery: every acknowledged append is still there, in the WAL-backed
  // head — the seal never completed, so nothing was ever allowed to leave
  // the WAL's protection.
  TsdbConfig config;
  config.dir = dir_;
  TimeSeriesStore recovered(config);
  EXPECT_EQ(recovered.sealed_until(), 0);
  std::uint64_t recovered_count = 0;
  for (const auto& key : recovered.keys()) {
    recovered_count += recovered.series(key).size();
  }
  EXPECT_EQ(recovered_count, 3u * 1u * 24u);  // day 0 was fully appended
}

TEST_F(StoreDiskTest, CrashDuringCompactionRecoversLossless) {
  fault::FaultInjector injector(
      fault::FaultPlan::parse("tsdb.compact=crash@1:max=1", 9));
  std::uint64_t pre_crash_digest = 0;
  bool crashed = false;
  {
    TsdbConfig config;
    config.dir = dir_;
    config.injector = &injector;
    TimeSeriesStore store(config);
    try {
      load_store(store, 9, 3, 8);
    } catch (const std::runtime_error&) {
      crashed = true;
    }
    // In-memory object stays consistent even after the injected crash.
    pre_crash_digest = store.dataset_digest();
  }
  ASSERT_TRUE(crashed);
  TsdbConfig config;
  config.dir = dir_;
  TimeSeriesStore recovered(config);
  EXPECT_EQ(recovered.dataset_digest(), pre_crash_digest);
}

TEST_F(StoreDiskTest, ReadFaultSurfacesAsRuntimeError) {
  fault::FaultInjector injector(
      fault::FaultPlan::parse("tsdb.read=error@1", 1));
  TsdbConfig config;
  config.injector = &injector;
  TimeSeriesStore store(config);
  store.append("k", 10, 1.0);
  RangeQuery query;
  query.key = "k";
  query.t0_ms = 0;
  query.t1_ms = 100;
  query.window_ms = 100;
  EXPECT_THROW((void)store.range(query), std::runtime_error);
}

TEST_F(StoreDiskTest, MetricsTrackSegmentsAndBytes) {
  obs::MetricsRegistry metrics;
  TsdbConfig config;
  config.metrics = &metrics;
  TimeSeriesStore store(config);
  load_store(store, 2, 3, 5);
  EXPECT_EQ(metrics.counter("tero.tsdb.seals").value(), 5u);
  EXPECT_GT(metrics.counter("tero.tsdb.compactions").value(), 0u);
  EXPECT_GT(metrics.gauge("tero.tsdb.bytes_raw").value(),
            metrics.gauge("tero.tsdb.bytes_compressed").value());
  RangeQuery query;
  query.key = "game0|US|key0";
  query.t0_ms = 0;
  query.t1_ms = 5 * kDayMs;
  query.window_ms = kDayMs;
  (void)store.range(query);
  EXPECT_EQ(metrics.counter("tero.tsdb.range_queries").value(), 1u);
  EXPECT_GT(metrics.histogram("tero.tsdb.read_segments").count(), 0u);
}

}  // namespace
}  // namespace tero::tsdb
