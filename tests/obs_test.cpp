#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"

namespace tero::obs {
namespace {

TEST(Json, ParsesScalarsAndNesting) {
  const auto value = parse_json(
      R"({"a": 1.5, "b": "x\ny", "c": [true, false, null], "d": {"e": -2e3}})");
  ASSERT_TRUE(value.is_object());
  EXPECT_EQ(value.at("a").number, 1.5);
  EXPECT_EQ(value.at("b").string, "x\ny");
  ASSERT_TRUE(value.at("c").is_array());
  ASSERT_EQ(value.at("c").array.size(), 3u);
  EXPECT_TRUE(value.at("c").array[0].boolean);
  EXPECT_EQ(value.at("c").array[2].type, JsonValue::Type::kNull);
  EXPECT_EQ(value.at("d").at("e").number, -2000.0);
  EXPECT_FALSE(value.contains("missing"));
  EXPECT_THROW(value.at("missing"), std::out_of_range);
}

TEST(Json, RejectsGarbage) {
  EXPECT_THROW(parse_json(""), std::invalid_argument);
  EXPECT_THROW(parse_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_json("{}trailing"), std::invalid_argument);
  EXPECT_THROW(parse_json("[1,]"), std::invalid_argument);
  EXPECT_THROW(parse_json("'single'"), std::invalid_argument);
}

TEST(Json, EscapeRoundTrips) {
  const std::string nasty = "a\"b\\c\n\t\x01";
  const auto parsed = parse_json("\"" + json_escape(nasty) + "\"");
  EXPECT_EQ(parsed.string, nasty);
}

TEST(Counter, AddsAcrossThreads) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 40'000u);
}

TEST(Histogram, BucketsAreCumulativeLeStyle) {
  Histogram histogram({1.0, 10.0, 100.0});
  for (const double v : {0.5, 1.0, 5.0, 50.0, 500.0, 5000.0}) {
    histogram.observe(v);
  }
  EXPECT_EQ(histogram.count(), 6u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 5556.5);
  // Per-bucket (non-cumulative); the last entry is the +Inf overflow bucket.
  const auto counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);      // 0.5, 1.0 (le is inclusive)
  EXPECT_EQ(counts[1], 1u);      // 5.0
  EXPECT_EQ(counts[2], 1u);      // 50.0
  EXPECT_EQ(counts[3], 2u);      // 500.0, 5000.0
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(QuantileSketch, QuantilesWithinRelativeError) {
  QuantileSketch sketch(0.01);
  for (int i = 1; i <= 10'000; ++i) sketch.add(static_cast<double>(i));
  EXPECT_EQ(sketch.count(), 10'000u);
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact = q * 10'000.0;
    EXPECT_NEAR(sketch.quantile(q), exact, exact * 0.03) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeMatchesCombinedStream) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.01);
  QuantileSketch combined(0.01);
  for (int i = 1; i <= 1000; ++i) {
    const double low = i * 0.5;
    const double high = 1000.0 + i;
    a.add(low);
    b.add(high);
    combined.add(low);
    combined.add(high);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  for (const double q : {0.25, 0.5, 0.75, 0.95}) {
    // Same-alpha merge is exact: bucket counts add.
    EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(Registry, LabeledNamesAreStable) {
  EXPECT_EQ(MetricsRegistry::labeled("tero.x", {{"a", "1"}, {"b", "two"}}),
            "tero.x{a=1,b=two}");
  EXPECT_EQ(MetricsRegistry::labeled("tero.y", {}), "tero.y");
}

TEST(Registry, LabeledConveniencesUpdateNamedSeries) {
  MetricsRegistry registry;
  registry.add_counter("tero.serve.requests", {{"shard", "shard-0"}});
  registry.add_counter("tero.serve.requests", {{"shard", "shard-0"}}, 4);
  registry.add_counter("tero.serve.requests", {{"shard", "shard-1"}});
  registry.set_gauge("tero.serve.shard_queue_depth", {{"shard", "shard-0"}},
                     3.0);
  registry.set_gauge("tero.serve.shard_queue_depth", {{"shard", "shard-0"}},
                     1.0);
  // The conveniences route through the same registry slots the verbose
  // labeled() + counter()/gauge() spelling would hit.
  EXPECT_EQ(
      registry.counter("tero.serve.requests{shard=shard-0}").value(), 5u);
  EXPECT_EQ(
      registry.counter("tero.serve.requests{shard=shard-1}").value(), 1u);
  EXPECT_EQ(
      registry.gauge("tero.serve.shard_queue_depth{shard=shard-0}").value(),
      1.0);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(Registry, ReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& first = registry.counter("tero.test.events");
  first.add(3);
  Counter& again = registry.counter("tero.test.events");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.value(), 3u);
  // First registration fixes histogram bounds.
  Histogram& h1 = registry.histogram("tero.test.ms", {1.0, 2.0});
  Histogram& h2 = registry.histogram("tero.test.ms", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, JsonRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.counter("tero.funnel.thumbnails").add(120);
  registry.gauge("tero.pool.max_queue_depth").set(7.0);
  auto& histogram = registry.histogram("tero.stage.extraction.ms",
                                       {1.0, 10.0, 100.0});
  histogram.observe(2.0);
  histogram.observe(20.0);
  histogram.observe(200.0);

  std::ostringstream out;
  registry.write_json(out);
  const auto parsed = parse_json(out.str());

  EXPECT_EQ(parsed.at("counters").at("tero.funnel.thumbnails").number, 120.0);
  EXPECT_EQ(parsed.at("gauges").at("tero.pool.max_queue_depth").number, 7.0);
  const auto& h = parsed.at("histograms").at("tero.stage.extraction.ms");
  EXPECT_EQ(h.at("count").number, 3.0);
  EXPECT_DOUBLE_EQ(h.at("sum").number, 222.0);
  EXPECT_DOUBLE_EQ(h.at("mean").number, 74.0);
  EXPECT_TRUE(h.at("quantiles").contains("p50"));
  const auto& buckets = h.at("buckets").array;
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[1].at("le").number, 10.0);
  EXPECT_EQ(buckets[1].at("count").number, 1.0);
  // The overflow bucket serializes its bound as the string "+Inf".
  EXPECT_TRUE(buckets[3].at("le").is_string());
  EXPECT_EQ(buckets[3].at("le").string, "+Inf");
  EXPECT_EQ(buckets[3].at("count").number, 1.0);
}

TEST(Registry, TableListsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("tero.a").add(1);
  registry.gauge("tero.b").set(2.5);
  registry.histogram("tero.c", {1.0}).observe(0.5);
  std::ostringstream out;
  registry.write_table(out);
  const std::string table = out.str();
  for (const char* name : {"tero.a", "tero.b", "tero.c"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
}

TEST(Registry, IterationIsNameSorted) {
  MetricsRegistry registry;
  registry.counter("tero.zeta").add(1);
  registry.counter("tero.alpha").add(1);
  registry.counter("tero.mid").add(1);
  const auto listed = registry.counters();
  ASSERT_EQ(listed.size(), 3u);
  EXPECT_EQ(listed[0].first, "tero.alpha");
  EXPECT_EQ(listed[1].first, "tero.mid");
  EXPECT_EQ(listed[2].first, "tero.zeta");
}

TEST(Registry, RemoveAndResetDropSeries) {
  MetricsRegistry registry;
  registry.counter("tero.a").add(1);
  registry.gauge("tero.b").set(2.0);
  registry.histogram("tero.c").observe(3.0);
  EXPECT_TRUE(registry.remove("tero.b"));
  EXPECT_FALSE(registry.remove("tero.b"));  // already gone
  EXPECT_FALSE(registry.remove("tero.never"));
  EXPECT_EQ(registry.size(), 2u);
  registry.reset();
  EXPECT_EQ(registry.size(), 0u);
  // Recreating after reset starts from zero state.
  EXPECT_EQ(registry.counter("tero.a").value(), 0u);
}

TEST(Registry, MutationEpochTracksStructuralChangesOnly) {
  MetricsRegistry registry;
  const std::uint64_t start = registry.mutation_epoch();
  registry.counter("tero.a");
  EXPECT_EQ(registry.mutation_epoch(), start + 1);
  // Re-resolving and mutating values are not structural changes.
  registry.counter("tero.a").add(100);
  EXPECT_EQ(registry.mutation_epoch(), start + 1);
  registry.gauge("tero.b");
  registry.histogram("tero.c");
  EXPECT_EQ(registry.mutation_epoch(), start + 3);
  registry.remove("tero.never");  // no-op remove doesn't bump
  EXPECT_EQ(registry.mutation_epoch(), start + 3);
  registry.remove("tero.a");
  EXPECT_EQ(registry.mutation_epoch(), start + 4);
  registry.reset();
  EXPECT_EQ(registry.mutation_epoch(), start + 5);
}

TEST(Exemplars, SelectionIsOrderIndependent) {
  // The min-wise reservoir must elect the same exemplar per bucket no
  // matter what order (or thread) the samples arrived in.
  const std::vector<std::pair<double, std::uint64_t>> samples = {
      {0.5, 1}, {0.7, 2}, {5.0, 3}, {7.5, 4}, {0.2, 5}, {6.1, 6}, {200.0, 7},
  };
  Histogram forward({1.0, 10.0, 100.0});
  forward.enable_exemplars(42);
  for (const auto& [value, span] : samples) forward.record(value, span);
  Histogram reverse({1.0, 10.0, 100.0});
  reverse.enable_exemplars(42);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    reverse.record(it->first, it->second);
  }
  const auto a = forward.exemplars();
  const auto b = reverse.exemplars();
  ASSERT_EQ(a.size(), 4u);  // 3 bounds + overflow
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].valid(), b[i].valid()) << "bucket " << i;
    EXPECT_EQ(a[i].span_id, b[i].span_id) << "bucket " << i;
    EXPECT_EQ(a[i].rank, b[i].rank) << "bucket " << i;
  }
  // Every populated bucket elected someone; the empty le=100 bucket did not.
  EXPECT_TRUE(a[0].valid());
  EXPECT_TRUE(a[1].valid());
  EXPECT_FALSE(a[2].valid());  // no sample in (10, 100]
  EXPECT_TRUE(a[3].valid());   // 200.0 overflows
  EXPECT_EQ(a[3].span_id, 7u);
}

TEST(Exemplars, DisabledHistogramRecordsWithoutCapture) {
  Histogram histogram({1.0});
  histogram.record(0.5, 9);  // exemplars never enabled
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_FALSE(histogram.exemplars_enabled());
  EXPECT_TRUE(histogram.exemplars().empty());
}

TEST(Prom, LabelEscapingCoversTheSpecials) {
  EXPECT_EQ(prom_escape_label(R"(plain)"), "plain");
  EXPECT_EQ(prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prom_escape_label("two\nlines"), "two\\nlines");
}

TEST(Prom, NameSanitizesToTheExpositionCharset) {
  EXPECT_EQ(prom_name("tero.serve.cache_hits"), "tero_serve_cache_hits");
  EXPECT_EQ(prom_name("weird-name!"), "weird_name_");
  EXPECT_EQ(prom_name("9lives"), "_9lives");  // leading digit gains '_'
}

TEST(Prom, SplitLabeledNameHandlesGoodAndMalformed) {
  const auto parsed = split_labeled_name("tero.x{shard=3,zone=us-west}");
  EXPECT_EQ(parsed.name, "tero.x");
  ASSERT_EQ(parsed.labels.size(), 2u);
  EXPECT_EQ(parsed.labels[0].first, "shard");
  EXPECT_EQ(parsed.labels[0].second, "3");
  EXPECT_EQ(parsed.labels[1].second, "us-west");
  // Malformed blocks stay opaque: the whole string remains the name.
  EXPECT_EQ(split_labeled_name("tero.x{unclosed").name, "tero.x{unclosed");
  EXPECT_TRUE(split_labeled_name("tero.plain").labels.empty());
}

TEST(Prom, RegistryExportValidatesAndCarriesExemplars) {
  MetricsRegistry registry;
  registry.counter("tero.test.events{shard=0}").add(3);
  registry.gauge("tero.test.depth").set(1.5);
  auto& histogram = registry.histogram("tero.test.ms", {1.0, 10.0});
  histogram.enable_exemplars(7);
  histogram.record(0.5, 21);
  histogram.record(4.0, 22);
  std::ostringstream out;
  write_prom(registry, out);
  EXPECT_EQ(validate_prom_text(out.str()), "");
  EXPECT_NE(out.str().find("# {span_id="), std::string::npos);
}

TEST(Prom, ValidatorRejectsBrokenExposition) {
  EXPECT_EQ(validate_prom_text("# just a comment\n"), "");
  EXPECT_NE(validate_prom_text("name_only\n"), "");          // missing value
  EXPECT_NE(validate_prom_text("name not_a_number\n"), "");  // bad value
  EXPECT_NE(validate_prom_text("bad name 1\n"), "");  // space inside name
}

TEST(ScopedTimerTest, ObservesElapsedOnceAndNullIsNoop) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("tero.test.ms");
  {
    ScopedTimer timer(&histogram);
  }
  EXPECT_EQ(histogram.count(), 1u);
  {
    ScopedTimer null_timer(nullptr);  // must not crash or observe anywhere
  }
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(ScopedTimerTest, MoveTransfersTheSingleObservation) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("tero.test.ms");
  {
    ScopedTimer outer(nullptr);
    {
      ScopedTimer inner(&histogram);
      outer = std::move(inner);
      // inner is disarmed: its destruction here must not record.
    }
    EXPECT_EQ(histogram.count(), 0u);  // outer still holds the measurement
  }
  EXPECT_EQ(histogram.count(), 1u);

  // Move construction likewise leaves exactly one observation.
  {
    ScopedTimer first(&histogram);
    ScopedTimer second(std::move(first));
  }
  EXPECT_EQ(histogram.count(), 2u);

  // Assigning over an armed timer closes it out first: two observations
  // total, one per started timer.
  {
    ScopedTimer a(&histogram);
    ScopedTimer b(&histogram);
    a = std::move(b);
  }
  EXPECT_EQ(histogram.count(), 4u);
}

TEST(Trace, JsonRoundTripsWithNestedSpans) {
  TraceRecorder recorder;
  {
    ScopedSpan outer(&recorder, "stage.extraction", "stage");
    {
      ScopedSpan inner(&recorder, "extraction.task", "task");
    }
  }
  recorder.add_instant("download.crash", "download");
  EXPECT_EQ(recorder.span_count(), 3u);

  std::ostringstream out;
  recorder.write_json(out);
  const auto parsed = parse_json(out.str());
  ASSERT_TRUE(parsed.is_array());
  ASSERT_EQ(parsed.array.size(), 3u);

  // Inner spans close first, so they serialize before their parent.
  const auto& inner = parsed.array[0];
  const auto& outer = parsed.array[1];
  const auto& instant = parsed.array[2];
  EXPECT_EQ(inner.at("name").string, "extraction.task");
  EXPECT_EQ(inner.at("ph").string, "X");
  EXPECT_EQ(outer.at("name").string, "stage.extraction");
  EXPECT_EQ(outer.at("cat").string, "stage");
  // Nesting: the outer span encloses the inner one on the same track.
  EXPECT_EQ(inner.at("tid").number, outer.at("tid").number);
  EXPECT_GE(inner.at("ts").number, outer.at("ts").number);
  EXPECT_LE(inner.at("ts").number + inner.at("dur").number,
            outer.at("ts").number + outer.at("dur").number);
  EXPECT_EQ(instant.at("ph").string, "i");
  EXPECT_EQ(instant.at("name").string, "download.crash");
  EXPECT_FALSE(instant.contains("dur"));
}

TEST(Trace, NullRecorderScopedSpanIsNoop) {
  ScopedSpan span(nullptr, "anything");
  // Nothing to assert beyond "does not crash": the null recorder contract.
}

TEST(Trace, MovedFromSpanDoesNotDoubleRecord) {
  TraceRecorder recorder;
  {
    ScopedSpan outer(nullptr, "placeholder");
    {
      ScopedSpan inner(&recorder, "work", "task");
      outer = std::move(inner);
      // inner is disarmed: leaving this scope must not close the span.
    }
    EXPECT_EQ(recorder.span_count(), 0u);
  }
  EXPECT_EQ(recorder.span_count(), 1u);  // exactly one "work" span

  // Move construction transfers the span rather than duplicating it, and
  // assigning over a live span closes that span out first.
  {
    ScopedSpan first(&recorder, "a");
    ScopedSpan second(std::move(first));
    ScopedSpan replacement(&recorder, "b");
    second = std::move(replacement);  // closes "a", adopts "b"
  }
  EXPECT_EQ(recorder.span_count(), 3u);  // work + a + b, no extras
}

TEST(Trace, ThreadsGetSmallStableIds) {
  TraceRecorder recorder;
  recorder.add_span("main", "t", 0, 1);
  std::thread other([&] { recorder.add_span("worker", "t", 2, 1); });
  other.join();
  std::ostringstream out;
  recorder.write_json(out);
  const auto parsed = parse_json(out.str());
  ASSERT_EQ(parsed.array.size(), 2u);
  EXPECT_EQ(parsed.array[0].at("tid").number, 0.0);
  EXPECT_EQ(parsed.array[1].at("tid").number, 1.0);
}

}  // namespace
}  // namespace tero::obs
