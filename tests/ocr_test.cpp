#include <gtest/gtest.h>

#include "image/draw.hpp"
#include "ocr/engine.hpp"
#include "ocr/extractor.hpp"
#include "ocr/game_ui.hpp"
#include "image/ops.hpp"
#include "ocr/preprocess.hpp"
#include "synth/thumbnail.hpp"
#include "util/rng.hpp"

namespace tero::ocr {
namespace {

image::GrayImage render_clean(const GameUiSpec& spec, int latency,
                              util::Rng& rng, int foreground = 230) {
  image::GrayImage thumb(kThumbnailWidth, kThumbnailHeight, 40);
  image::TextStyle style;
  style.scale = spec.text_scale;
  style.foreground = static_cast<std::uint8_t>(foreground);
  style.background = 25;
  thumb.fill_rect(spec.latency_region, 25);
  const std::string text =
      spec.prefix + std::to_string(latency) + spec.suffix;
  image::draw_text(thumb, spec.latency_region.x + 2,
                   spec.latency_region.y + 3, text, style);
  image::add_noise(thumb, 5.0, rng);
  return thumb;
}

TEST(Engines, ThreeDistinctEngines) {
  const auto engines = make_builtin_engines();
  ASSERT_EQ(engines.size(), 3u);
  EXPECT_NE(engines[0]->name(), engines[1]->name());
  EXPECT_NE(engines[1]->name(), engines[2]->name());
}

TEST(Engines, RecognizeCleanDigitsOnBinaryInput) {
  // Render "47" large and clean, preprocess, and expect every engine to see
  // the digits.
  image::GrayImage img(80, 30, 10);
  image::TextStyle style;
  style.scale = 3;
  style.foreground = 255;
  style.background = 10;
  image::draw_text(img, 4, 4, "47", style);
  const auto binary = preprocess(img, PreprocessConfig{});
  for (const auto& engine : make_builtin_engines()) {
    const OcrOutput out = engine->recognize(binary);
    EXPECT_NE(out.text.find('4'), std::string::npos) << engine->name();
    EXPECT_NE(out.text.find('7'), std::string::npos) << engine->name();
  }
}

TEST(Preprocess, PolarityNormalized) {
  // Dark text on light panel: after preprocessing, ink must be minority
  // foreground either way.
  image::GrayImage img(60, 24, 220);
  image::TextStyle style;
  style.scale = 2;
  style.foreground = 20;
  style.background = 220;
  image::draw_text(img, 2, 2, "88", style);
  const auto binary = preprocess(img, PreprocessConfig{});
  EXPECT_LT(image::foreground_ratio(binary), 0.5);
}

TEST(GameUi, AllNineGamesHaveSpecs) {
  EXPECT_EQ(all_ui_specs().size(), 9u);
  const auto& lol = ui_spec_for("League of Legends");
  EXPECT_EQ(lol.game, "League of Legends");
  // Latency is never displayed mid-screen (§1): regions hug an edge.
  for (const auto& spec : all_ui_specs()) {
    const bool near_edge =
        spec.latency_region.x < 40 ||
        spec.latency_region.x + spec.latency_region.w > kThumbnailWidth - 40 ||
        spec.latency_region.y < 40 ||
        spec.latency_region.y + spec.latency_region.h > kThumbnailHeight - 40;
    EXPECT_TRUE(near_edge) << spec.game;
  }
}

TEST(GameUi, UnknownGameGetsGenericSpec) {
  EXPECT_EQ(ui_spec_for("No Such Game").game, "generic");
}

TEST(Cleanup, StripsLabelsAndParses) {
  const GameUiSpec& spec = ui_spec_for("League of Legends");  // "ping N ms"
  OcrOutput out;
  out.text = "ping45ms";
  EXPECT_EQ(LatencyExtractor::cleanup(out, spec), 45);
}

TEST(Cleanup, RepairsConfusablesAdjacentToDigits) {
  const GameUiSpec& spec = ui_spec_for("Teamfight Tactics");  // suffix "ms"
  OcrOutput out;
  out.text = "4Bms";  // B ~ 8
  EXPECT_EQ(LatencyExtractor::cleanup(out, spec), 48);
  out.text = "1O5ms";  // O ~ 0
  EXPECT_EQ(LatencyExtractor::cleanup(out, spec), 105);
}

TEST(Cleanup, RejectsZeroAndTooLong) {
  const GameUiSpec& spec = ui_spec_for("Teamfight Tactics");
  OcrOutput out;
  out.text = "0ms";  // placeholder while waiting for a match (App. E)
  EXPECT_FALSE(LatencyExtractor::cleanup(out, spec).has_value());
  out.text = "1234ms";  // > 3 digits
  EXPECT_FALSE(LatencyExtractor::cleanup(out, spec).has_value());
  out.text = "ms";
  EXPECT_FALSE(LatencyExtractor::cleanup(out, spec).has_value());
}

TEST(Cleanup, ClockFailureMode) {
  // The Fig. 6d failure mode: a clock where latency should be. A "9:41"
  // clock parses to a plausible-but-wrong 941... except that the 3-digit
  // rule would keep it, so data analysis must catch it downstream; a
  // "12:34" clock concatenates to 4 digits and is rejected outright.
  const GameUiSpec& spec = ui_spec_for("Teamfight Tactics");
  OcrOutput out;
  out.text = "9:41";
  const auto value = LatencyExtractor::cleanup(out, spec);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 941);
  out.text = "12:34";
  EXPECT_FALSE(LatencyExtractor::cleanup(out, spec).has_value());
}

class ExtractorPerGame : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtractorPerGame, ReadsCleanRenders) {
  const GameUiSpec& spec = ui_spec_for(GetParam());
  LatencyExtractor extractor;
  util::Rng rng(11);
  int correct = 0;
  constexpr int kTrials = 25;
  for (int i = 0; i < kTrials; ++i) {
    const int truth = static_cast<int>(rng.uniform_int(5, 299));
    const auto thumb = render_clean(spec, truth, rng);
    const auto reading = extractor.extract(thumb, spec);
    if (reading.primary == truth) ++correct;
  }
  EXPECT_GE(correct, kTrials - 1) << spec.game;
}

INSTANTIATE_TEST_SUITE_P(
    AllGames, ExtractorPerGame,
    ::testing::Values("League of Legends", "Teamfight Tactics",
                      "Call of Duty Warzone", "Genshin Impact", "Dota 2",
                      "Among Us", "Lost Ark", "Apex Legends"));

TEST(Extractor, OcclusionCausesDigitDrop) {
  const GameUiSpec& spec = ui_spec_for("League of Legends");
  LatencyExtractor extractor;
  util::Rng rng(5);
  int drops = 0;
  int trials = 0;
  for (int i = 0; i < 30; ++i) {
    const int truth = static_cast<int>(rng.uniform_int(40, 99));
    auto thumb = render_clean(spec, truth, rng);
    // Cover the leading digit with a panel-coloured box.
    image::TextStyle style;
    style.scale = spec.text_scale;
    const int digits_x = spec.latency_region.x + 2 +
                         image::text_width(spec.prefix, style) + style.scale;
    thumb.fill_rect(image::Rect{digits_x - 2, spec.latency_region.y, 14,
                                spec.latency_region.h},
                    25);
    const auto reading = extractor.extract(thumb, spec);
    if (!reading.primary.has_value()) continue;
    ++trials;
    if (*reading.primary == truth % 10) ++drops;
  }
  EXPECT_GT(trials, 10);
  EXPECT_GT(drops, trials / 2);  // digit drop dominates (§3.2.1)
}

TEST(Extractor, LowContrastCausesMisses) {
  const GameUiSpec& spec = ui_spec_for("League of Legends");
  LatencyExtractor extractor;
  util::Rng rng(6);
  int misses = 0;
  for (int i = 0; i < 20; ++i) {
    const int truth = static_cast<int>(rng.uniform_int(20, 200));
    const auto thumb = render_clean(spec, truth, rng, /*foreground=*/40);
    if (!extractor.extract(thumb, spec).primary.has_value()) ++misses;
  }
  EXPECT_GT(misses, 12);  // Fig. 6b: the dominant miss cause
}

TEST(Extractor, SingleEngineAccessibleForTable4) {
  const GameUiSpec& spec = ui_spec_for("League of Legends");
  LatencyExtractor extractor;
  util::Rng rng(8);
  const auto thumb = render_clean(spec, 57, rng);
  int hits = 0;
  for (std::size_t e = 0; e < extractor.engines().size(); ++e) {
    if (extractor.extract_with_engine(thumb, spec, e) == 57) ++hits;
  }
  EXPECT_GE(hits, 2);  // at least two engines read a clean render
}

TEST(Extractor, EmptyPanelYieldsMiss) {
  const GameUiSpec& spec = ui_spec_for("League of Legends");
  LatencyExtractor extractor;
  image::GrayImage thumb(kThumbnailWidth, kThumbnailHeight, 40);
  const auto reading = extractor.extract(thumb, spec);
  EXPECT_FALSE(reading.primary.has_value());
}

}  // namespace
}  // namespace tero::ocr

namespace corruption_tests {
using namespace tero;
using namespace tero::ocr;

// The synthetic corruption modes must map onto the paper's error taxonomy:
// occlusion -> digit drop, low contrast -> miss, clock -> discard,
// compression -> vote rejection. Parameterized over the corruption enum.
class CorruptionBehaviour
    : public ::testing::TestWithParam<tero::synth::Corruption> {};

TEST_P(CorruptionBehaviour, MatchesTaxonomy) {
  const auto corruption = GetParam();
  const tero::synth::ThumbnailRenderer renderer;
  const LatencyExtractor extractor;
  util::Rng rng(123);
  const auto& spec = ui_spec_for("League of Legends");
  int correct = 0;
  int miss = 0;
  int drop = 0;
  int wrong_other = 0;
  constexpr int kTrials = 60;
  for (int i = 0; i < kTrials; ++i) {
    const int truth = static_cast<int>(rng.uniform_int(100, 299));
    const auto thumb = renderer.render_with(spec, truth, corruption, rng);
    const auto reading = extractor.extract(thumb.image, spec);
    if (!reading.primary.has_value()) {
      ++miss;
    } else if (*reading.primary == truth) {
      ++correct;
    } else if (*reading.primary == truth % 100 ||
               *reading.primary == truth % 10) {
      ++drop;
    } else {
      ++wrong_other;
    }
  }
  switch (corruption) {
    case tero::synth::Corruption::kNone:
      EXPECT_GE(correct, kTrials - 2);
      break;
    case tero::synth::Corruption::kOcclusion:
      EXPECT_GE(drop, kTrials / 2);  // the digit-drop factory
      break;
    case tero::synth::Corruption::kLowContrast:
      EXPECT_GE(miss + correct, kTrials * 2 / 3);  // mostly misses/survives
      EXPECT_GE(miss, kTrials / 10);
      break;
    case tero::synth::Corruption::kClock:
      EXPECT_EQ(correct, 0);  // never reads the truth off a clock
      break;
    case tero::synth::Corruption::kHeavyNoise:
      EXPECT_GE(correct + miss, kTrials * 3 / 4);
      break;
    case tero::synth::Corruption::kCompression:
      EXPECT_GE(miss, kTrials / 4);  // disagreement -> vote rejection
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CorruptionBehaviour,
    ::testing::Values(tero::synth::Corruption::kNone,
                      tero::synth::Corruption::kOcclusion,
                      tero::synth::Corruption::kLowContrast,
                      tero::synth::Corruption::kClock,
                      tero::synth::Corruption::kHeavyNoise,
                      tero::synth::Corruption::kCompression));

}  // namespace corruption_tests
