#include <gtest/gtest.h>

#include "geo/gazetteer.hpp"
#include "geo/geo.hpp"
#include "geo/servers.hpp"

namespace tero::geo {
namespace {

TEST(Haversine, ZeroForSamePoint) {
  const LatLon paris{48.86, 2.35};
  EXPECT_NEAR(haversine_km(paris, paris), 0.0, 1e-9);
}

TEST(Haversine, ParisToLondonRoughly343Km) {
  const LatLon paris{48.8566, 2.3522};
  const LatLon london{51.5074, -0.1278};
  EXPECT_NEAR(haversine_km(paris, london), 343.0, 10.0);
}

TEST(Haversine, Symmetric) {
  const LatLon a{10.0, 20.0};
  const LatLon b{-30.0, 150.0};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, AntipodalIsHalfCircumference) {
  const LatLon a{0.0, 0.0};
  const LatLon b{0.0, 180.0};
  EXPECT_NEAR(haversine_km(a, b), 20015.0, 30.0);
}

TEST(Location, GranularityLadder) {
  EXPECT_EQ((Location{"", "", "France"}).granularity(),
            Granularity::kCountry);
  EXPECT_EQ((Location{"", "Ile-de-France", "France"}).granularity(),
            Granularity::kRegion);
  EXPECT_EQ((Location{"Paris", "Ile-de-France", "France"}).granularity(),
            Granularity::kCity);
}

TEST(Location, CompatibilityIgnoresMissingFields) {
  const Location california{"", "California", "United States"};
  const Location los_angeles{"Los Angeles", "California", "United States"};
  const Location texas{"", "Texas", "United States"};
  EXPECT_TRUE(california.compatible_with(los_angeles));
  EXPECT_TRUE(los_angeles.compatible_with(california));
  EXPECT_FALSE(texas.compatible_with(california));
}

TEST(Location, SubsumptionIsStrict) {
  const Location country{"", "", "United States"};
  const Location region{"", "California", "United States"};
  EXPECT_TRUE(region.subsumes(country));
  EXPECT_FALSE(country.subsumes(region));
  EXPECT_FALSE(region.subsumes(region));
}

TEST(CorrectedDistance, AddsMeanRadius) {
  const LatLon a{0.0, 0.0};
  const LatLon b{0.0, 1.0};
  const double geodesic = haversine_km(a, b);
  EXPECT_NEAR(corrected_distance_km(a, 50.0, b), geodesic + 50.0, 1e-9);
}

TEST(CorrectedDistance, NonZeroWithinSameCity) {
  // Streamer in Amsterdam playing on the Amsterdam server (§3.3.3).
  const LatLon amsterdam{52.37, 4.90};
  EXPECT_GT(corrected_distance_km(amsterdam, 15.0, amsterdam), 0.0);
}

TEST(Gazetteer, FindsCountriesByAlias) {
  const auto& world = Gazetteer::world();
  const Place* usa = world.find("USA", PlaceKind::kCountry);
  ASSERT_NE(usa, nullptr);
  EXPECT_EQ(usa->name, "United States");
  const Place* uk = world.find("UK", PlaceKind::kCountry);
  ASSERT_NE(uk, nullptr);
  EXPECT_EQ(uk->name, "United Kingdom");
}

TEST(Gazetteer, GeorgiaIsAmbiguousAcrossKinds) {
  const auto& world = Gazetteer::world();
  const auto matches = world.find_all("Georgia");
  EXPECT_EQ(matches.size(), 2u);  // US state + country
  // Unique within each kind.
  EXPECT_NE(world.find("Georgia", PlaceKind::kRegion), nullptr);
  EXPECT_NE(world.find("Georgia", PlaceKind::kCountry), nullptr);
}

TEST(Gazetteer, FindAnyPrefersCity) {
  const auto& world = Gazetteer::world();
  const Place* ny = world.find_any("New York");
  ASSERT_NE(ny, nullptr);
  EXPECT_EQ(ny->kind, PlaceKind::kCity);
}

TEST(Gazetteer, ResolveLocationTuples) {
  const auto& world = Gazetteer::world();
  const Place* chicago =
      world.resolve(Location{"Chicago", "", "United States"});
  ASSERT_NE(chicago, nullptr);
  EXPECT_EQ(chicago->region, "Illinois");
  const Place* bolivia = world.resolve(Location{"", "", "Bolivia"});
  ASSERT_NE(bolivia, nullptr);
  EXPECT_EQ(world.resolve(Location{"Atlantis", "", "Neverland"}), nullptr);
}

TEST(Gazetteer, CenterAndRadiusThrowOnUnknown) {
  const auto& world = Gazetteer::world();
  EXPECT_NO_THROW({ (void)world.center_of(Location{"", "", "France"}); });
  EXPECT_THROW((void)world.center_of(Location{"", "", "Narnia"}),
               std::out_of_range);
}

TEST(Gazetteer, RegionsAndCitiesOf) {
  const auto& world = Gazetteer::world();
  const auto us_regions = world.regions_of("United States");
  EXPECT_GT(us_regions.size(), 15u);
  const auto ca_cities = world.cities_of("California", "United States");
  EXPECT_GE(ca_cities.size(), 2u);  // LA + SF
}

TEST(Gazetteer, ContinentSharesRoughlyNormalized) {
  double internet = 0.0;
  double population = 0.0;
  for (const auto& share : Gazetteer::world().continent_shares()) {
    internet += share.internet_users;
    population += share.population;
  }
  EXPECT_NEAR(internet, 1.0, 0.05);
  EXPECT_NEAR(population, 1.0, 0.05);
}

TEST(GameCatalog, HasNineGamesOneWithoutServers) {
  const auto& catalog = GameCatalog::builtin();
  EXPECT_EQ(catalog.games().size(), 9u);
  int without = 0;
  for (const auto& game : catalog.games()) {
    if (!game.servers_known()) ++without;
  }
  EXPECT_EQ(without, 1);  // App. C: 8 of 9 disclosed
}

struct PrimaryServerCase {
  const char* game;
  Location location;
  const char* expected_city;
};

class PrimaryServerTest : public ::testing::TestWithParam<PrimaryServerCase> {};

TEST_P(PrimaryServerTest, MatchesPaperTable6) {
  const auto& catalog = GameCatalog::builtin();
  const auto& param = GetParam();
  const Game* game = catalog.find(param.game);
  ASSERT_NE(game, nullptr);
  const GameServer* server = catalog.primary_server(*game, param.location);
  ASSERT_NE(server, nullptr) << param.location.to_string();
  EXPECT_EQ(server->city, param.expected_city);
}

INSTANTIATE_TEST_SUITE_P(
    Table6, PrimaryServerTest,
    ::testing::Values(
        // League of Legends (Table 6) — the paper's §3.3.3 examples.
        PrimaryServerCase{"League of Legends",
                          {"", "", "Netherlands"},
                          "Amsterdam"},
        PrimaryServerCase{"League of Legends",
                          {"", "Illinois", "United States"},
                          "Chicago"},
        PrimaryServerCase{"League of Legends",
                          {"", "Hawaii", "United States"},
                          "Chicago"},
        PrimaryServerCase{"League of Legends", {"", "", "Brazil"}, "Sao Paulo"},
        PrimaryServerCase{"League of Legends", {"", "", "Ecuador"}, "Miami"},
        PrimaryServerCase{"League of Legends", {"", "", "Bolivia"}, "Santiago"},
        PrimaryServerCase{"League of Legends", {"", "", "Greece"}, "Amsterdam"},
        PrimaryServerCase{"League of Legends", {"", "", "Turkey"}, "Istanbul"},
        PrimaryServerCase{"League of Legends",
                          {"", "", "Saudi Arabia"},
                          "Istanbul"},
        PrimaryServerCase{"League of Legends",
                          {"", "", "South Korea"},
                          "Seoul"},
        PrimaryServerCase{"League of Legends", {"", "", "Japan"}, "Tokyo"},
        PrimaryServerCase{"League of Legends",
                          {"", "", "Australia"},
                          "Sydney"},
        PrimaryServerCase{"League of Legends",
                          {"", "", "El Salvador"},
                          "Miami"},
        PrimaryServerCase{"League of Legends", {"", "", "Jamaica"}, "Miami"},
        // Genshin Impact: Americas -> Virginia site (Ashburn), EU+ME ->
        // Frankfurt, Asia -> Tokyo.
        PrimaryServerCase{"Genshin Impact",
                          {"", "California", "United States"},
                          "Ashburn"},
        PrimaryServerCase{"Genshin Impact", {"", "", "Turkey"}, "Frankfurt"},
        PrimaryServerCase{"Genshin Impact", {"", "", "Japan"}, "Tokyo"},
        // Call of Duty: closest of many NA servers (by corrected distance
        // from the region's centroid).
        PrimaryServerCase{"Call of Duty Warzone",
                          {"", "Illinois", "United States"},
                          "St. Louis"},
        PrimaryServerCase{"Call of Duty Warzone",
                          {"Chicago", "Illinois", "United States"},
                          "Chicago"},
        PrimaryServerCase{"Call of Duty Warzone",
                          {"", "California", "United States"},
                          "San Francisco"},
        PrimaryServerCase{"Call of Duty Warzone",
                          {"Los Angeles", "California", "United States"},
                          "Los Angeles"},
        PrimaryServerCase{"Call of Duty Warzone",
                          {"", "", "United Kingdom"},
                          "London"}));

TEST(GameCatalog, DistanceToPrimaryNegativeWhenUnknown) {
  const auto& catalog = GameCatalog::builtin();
  const Game* apex = catalog.find("Apex Legends");
  ASSERT_NE(apex, nullptr);
  EXPECT_LT(catalog.distance_to_primary_km(
                *apex, Location{"", "", "France"}),
            0.0);
}

TEST(GameCatalog, CloserLocationHasSmallerDistance) {
  const auto& catalog = GameCatalog::builtin();
  const Game* lol = catalog.find("League of Legends");
  ASSERT_NE(lol, nullptr);
  const double illinois = catalog.distance_to_primary_km(
      *lol, Location{"", "Illinois", "United States"});
  const double hawaii = catalog.distance_to_primary_km(
      *lol, Location{"", "Hawaii", "United States"});
  EXPECT_GT(hawaii, illinois);
  EXPECT_GT(hawaii, 6000.0);  // paper: Hawaii ~6,832 km from Chicago
}

}  // namespace
}  // namespace tero::geo
