#include <gtest/gtest.h>

#include "analysis/anomalies.hpp"
#include "analysis/clusters.hpp"
#include "analysis/distributions.hpp"
#include "analysis/segmentation.hpp"
#include "analysis/shared.hpp"
#include "util/rng.hpp"

namespace tero::analysis {
namespace {

constexpr double kSpacing = 300.0;  // 5-minute thumbnails

Stream make_stream(const std::vector<int>& latencies, double t0 = 0.0) {
  Stream stream;
  stream.streamer = "u1";
  stream.game = "League of Legends";
  for (std::size_t i = 0; i < latencies.size(); ++i) {
    Measurement m;
    m.time_s = t0 + static_cast<double>(i) * kSpacing;
    m.latency_ms = latencies[i];
    stream.points.push_back(m);
  }
  return stream;
}

AnalysisConfig config_with(double lat_gap = 15.0, double stable_min = 30.0) {
  AnalysisConfig config;
  config.lat_gap_ms = lat_gap;
  config.stable_len_minutes = stable_min;
  return config;
}

TEST(Segmentation, SplitsOnLatGap) {
  const Stream stream = make_stream({40, 42, 41, 80, 81, 82});
  const auto segments = segment_stream(stream, config_with());
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].last, 2u);
  EXPECT_EQ(segments[1].first, 3u);
  EXPECT_EQ(segments[0].min_latency, 40);
  EXPECT_EQ(segments[1].max_latency, 82);
}

TEST(Segmentation, StableRequiresStableLenPoints) {
  // StableLen 30 min at 5-min spacing = 6 points.
  const Stream stream =
      make_stream({40, 41, 42, 40, 41, 42, 90, 91, 92});
  const auto segments = segment_stream(stream, config_with());
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_TRUE(segments[0].stable);   // 6 points
  EXPECT_FALSE(segments[1].stable);  // 3 points
}

TEST(Segmentation, EmptyStream) {
  EXPECT_TRUE(segment_stream(Stream{}, config_with()).empty());
}

TEST(Segmentation, RangesWithinGap) {
  EXPECT_TRUE(ranges_within_gap(40, 50, 55, 60, 15.0));
  EXPECT_FALSE(ranges_within_gap(40, 50, 65, 70, 15.0));
  EXPECT_TRUE(ranges_within_gap(40, 50, 45, 60, 1.0));  // overlap
}

// ---- Fig. 1 scenarios ---------------------------------------------------------

TEST(Anomalies, GlitchDetectedAndDiscardedWithoutAlternative) {
  // Stable 45s, a single 5 (digit drop), stable 45s (Fig. 1a).
  std::vector<int> latencies(6, 45);
  latencies.push_back(5);
  for (int i = 0; i < 6; ++i) latencies.push_back(45);
  const auto result = clean_stream(make_stream(latencies), config_with());
  EXPECT_EQ(result.glitch_segments, 1u);
  EXPECT_EQ(result.points_discarded, 1u);
  EXPECT_EQ(result.points_retained, 12u);
  EXPECT_TRUE(result.spikes.empty());
}

TEST(Anomalies, GlitchCorrectedFromAlternative) {
  std::vector<int> latencies(6, 45);
  latencies.push_back(5);
  for (int i = 0; i < 6; ++i) latencies.push_back(45);
  Stream stream = make_stream(latencies);
  stream.points[6].alternative_ms = 45;  // the dissenting engine was right
  const auto result = clean_stream(std::move(stream), config_with());
  EXPECT_EQ(result.points_corrected, 1u);
  EXPECT_EQ(result.points_retained, 13u);
  EXPECT_EQ(result.points_discarded, 0u);
}

TEST(Anomalies, SpikeDetectedAndRecorded) {
  // Stable 45s, two elevated points, stable 45s (Fig. 1b).
  std::vector<int> latencies(6, 45);
  latencies.push_back(110);
  latencies.push_back(112);
  for (int i = 0; i < 6; ++i) latencies.push_back(45);
  const auto result = clean_stream(make_stream(latencies), config_with());
  ASSERT_EQ(result.spikes.size(), 1u);
  EXPECT_EQ(result.spikes[0].peak_latency_ms, 112);
  EXPECT_EQ(result.spikes[0].baseline_ms, 45);
  EXPECT_NEAR(result.spikes[0].magnitude_ms(), 67.0, 1e-9);
  EXPECT_EQ(result.spike_points, 2u);
  // Spike points are excluded from the retained data.
  EXPECT_EQ(result.points_retained, 12u);
}

TEST(Anomalies, StaircaseSpikePropagation) {
  // A spike that rises in two unstable steps: the second iteration flags
  // the lower shoulder next to the already-flagged peak (Fig. 1b).
  std::vector<int> latencies(6, 40);
  latencies.push_back(70);   // shoulder: above left stable by 30
  latencies.push_back(120);  // peak
  latencies.push_back(121);
  for (int i = 0; i < 6; ++i) latencies.push_back(40);
  const auto result = clean_stream(make_stream(latencies), config_with());
  ASSERT_GE(result.spikes.size(), 1u);
  // All three elevated points end up inside merged spikes.
  EXPECT_EQ(result.spike_points, 3u);
}

TEST(Anomalies, AbsorbedSegmentKept) {
  // An unstable tail within LatGap of its stable neighbour is kept
  // (green square in Fig. 1d).
  std::vector<int> latencies(6, 45);
  latencies.push_back(50);
  latencies.push_back(52);
  const auto result = clean_stream(make_stream(latencies), config_with());
  EXPECT_EQ(result.points_retained, 8u);
  EXPECT_EQ(result.points_discarded, 0u);
}

TEST(Anomalies, FarUnstableSegmentDiscarded) {
  // Unstable and far from both stable neighbours (red cross in Fig. 1d):
  // below the stable level but not by a full LatGap on both sides.
  std::vector<int> latencies(6, 45);
  latencies.push_back(25);  // 20 below: glitch? needs max+gap <= min: 25+15 <= 45 yes ->
  // make it NOT a glitch: use 35 (within gap of 45) on one side test below.
  latencies.back() = 100;  // way above, single point -> spike actually.
  const auto result = clean_stream(make_stream(latencies), config_with());
  // A trailing point 55 above the stable segment is flagged as a spike.
  EXPECT_EQ(result.spikes.size(), 1u);
}

TEST(Anomalies, AllUnstableStreamerDiscardedEntirely) {
  const auto result =
      clean_stream(make_stream({40, 80, 120, 60, 20, 140}), config_with());
  EXPECT_TRUE(result.discarded_entirely);
  EXPECT_EQ(result.points_retained, 0u);
  EXPECT_EQ(result.points_discarded, 6u);
}

TEST(Anomalies, SpikeFractionComputed) {
  std::vector<int> latencies(12, 45);
  latencies.push_back(120);
  const auto result = clean_stream(make_stream(latencies), config_with());
  ASSERT_EQ(result.spikes.size(), 1u);
  EXPECT_NEAR(result.spike_fraction(), 1.0 / 13.0, 1e-9);
}

TEST(Anomalies, StitchingAcrossStreams) {
  // Two short streams; stitched they form one long stable run, so neither
  // is discarded even though each alone is below StableLen.
  std::vector<Stream> streams;
  streams.push_back(make_stream({45, 46, 47}, 0.0));
  streams.push_back(make_stream({45, 44, 46}, 3 * kSpacing));
  const auto result = clean_streamer_game(std::move(streams), config_with());
  EXPECT_FALSE(result.discarded_entirely);
  EXPECT_EQ(result.points_retained, 6u);
  ASSERT_EQ(result.retained.size(), 2u);
  EXPECT_EQ(result.retained[0].points.size(), 3u);
  EXPECT_EQ(result.retained[1].points.size(), 3u);
}

class LatGapSweep : public ::testing::TestWithParam<double> {};

TEST_P(LatGapSweep, SmallerGapSplitsMore) {
  const double gap = GetParam();
  const Stream stream =
      make_stream({40, 44, 48, 52, 56, 60, 64, 68, 72, 76});
  const auto segments = segment_stream(stream, config_with(gap));
  // Total points conserved.
  std::size_t total = 0;
  for (const auto& segment : segments) total += segment.size();
  EXPECT_EQ(total, stream.points.size());
  if (gap <= 8.0) {
    EXPECT_GE(segments.size(), 3u);
  } else if (gap >= 25.0) {
    EXPECT_LE(segments.size(), 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, LatGapSweep,
                         ::testing::Values(8.0, 15.0, 25.0));

// ---- Shared anomalies (App. F) -------------------------------------------------

StreamerActivity activity_with_spike(const std::string& name, double center,
                                     std::size_t measurements,
                                     int extra_isolated_spikes = 0) {
  StreamerActivity activity;
  activity.streamer = name;
  for (std::size_t i = 0; i < measurements; ++i) {
    activity.measurement_times.push_back(static_cast<double>(i) * kSpacing);
  }
  SpikeEvent spike;
  spike.start_s = center - 60;
  spike.end_s = center + 60;
  spike.peak_latency_ms = 120;
  spike.baseline_ms = 45;
  activity.spikes.push_back(spike);
  // Isolated background spikes far from the shared event (these raise p_e
  // enough to satisfy the Eq. 2 significance prerequisite).
  for (int i = 0; i < extra_isolated_spikes; ++i) {
    SpikeEvent extra = spike;
    extra.start_s = center + 40000.0 + i * 5000.0;
    extra.end_s = extra.start_s + 120.0;
    activity.spikes.push_back(extra);
  }
  return activity;
}

TEST(SharedAnomalies, ConcurrentSpikesFlagged) {
  std::vector<StreamerActivity> activities;
  // 8 streamers, 5 of them spiking around t=30000, lots of quiet data.
  for (int i = 0; i < 8; ++i) {
    if (i < 5) {
      activities.push_back(
          activity_with_spike("s" + std::to_string(i), 30000.0, 400,
                              /*extra_isolated_spikes=*/2));
    } else {
      StreamerActivity quiet;
      quiet.streamer = "q" + std::to_string(i);
      for (int j = 0; j < 400; ++j) {
        quiet.measurement_times.push_back(j * kSpacing);
      }
      activities.push_back(quiet);
    }
  }
  const auto result = find_shared_anomalies(activities, AnalysisConfig{});
  EXPECT_TRUE(result.sufficient_data);
  ASSERT_GE(result.anomalies.size(), 1u);
  EXPECT_GE(result.anomalies[0].streamers.size(), 5u);
  EXPECT_LE(result.anomalies[0].probability, 1e-4);
}

TEST(SharedAnomalies, LoneSpikeNotShared) {
  std::vector<StreamerActivity> activities;
  activities.push_back(activity_with_spike("s0", 30000.0, 400));
  for (int i = 1; i < 8; ++i) {
    StreamerActivity quiet;
    quiet.streamer = "q" + std::to_string(i);
    for (int j = 0; j < 400; ++j) {
      quiet.measurement_times.push_back(j * kSpacing);
    }
    activities.push_back(quiet);
  }
  const auto result = find_shared_anomalies(activities, AnalysisConfig{});
  EXPECT_TRUE(result.anomalies.empty());
}

TEST(SharedAnomalies, InsufficientDataGuard) {
  // Eq. 2: tiny aggregates must not report anomalies at all.
  std::vector<StreamerActivity> activities;
  activities.push_back(activity_with_spike("s0", 1000.0, 5));
  activities.push_back(activity_with_spike("s1", 1000.0, 5));
  const auto result = find_shared_anomalies(activities, AnalysisConfig{});
  EXPECT_FALSE(result.sufficient_data);
  EXPECT_TRUE(result.anomalies.empty());
}

// ---- Clustering (§3.3.3) -------------------------------------------------------

TEST(Clusters, MergeRespectsGap) {
  std::vector<ClusterInput> inputs = {
      {40, 50, 10}, {52, 60, 10}, {90, 95, 5}};
  const auto clusters = merge_clusters(inputs, 15.0);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].min_ms, 40);
  EXPECT_EQ(clusters[0].max_ms, 60);
  EXPECT_NEAR(clusters[0].weight, 0.8, 1e-9);
  EXPECT_NEAR(clusters[1].weight, 0.2, 1e-9);
}

TEST(Clusters, SortedByWeightDescending) {
  std::vector<ClusterInput> inputs = {{10, 12, 2}, {100, 105, 30}};
  const auto clusters = merge_clusters(inputs, 15.0);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_GT(clusters[0].weight, clusters[1].weight);
  EXPECT_EQ(clusters[0].min_ms, 100);
}

TEST(Clusters, StreamerStaticWhenOneClusterDominates) {
  std::vector<int> latencies(20, 45);
  const auto clean = clean_stream(make_stream(latencies), config_with());
  const auto clusters = cluster_streamer(clean, config_with());
  ASSERT_FALSE(clusters.empty());
  EXPECT_TRUE(is_static_streamer(clusters, config_with()));
}

TEST(Clusters, MobileStreamerTwoClusters) {
  // Half the time at 40 ms, half at 110 ms (server hopping).
  std::vector<int> latencies;
  for (int i = 0; i < 10; ++i) latencies.push_back(40);
  for (int i = 0; i < 10; ++i) latencies.push_back(110);
  const auto clean = clean_stream(make_stream(latencies), config_with());
  const auto clusters = cluster_streamer(clean, config_with());
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_FALSE(is_static_streamer(clusters, config_with()));
}

TEST(Clusters, LocationClustersWeighStreamers) {
  std::vector<std::vector<LatencyCluster>> per_streamer;
  for (int i = 0; i < 3; ++i) {
    per_streamer.push_back({LatencyCluster{40, 50, 1.0, 100}});
  }
  per_streamer.push_back({LatencyCluster{100, 110, 1.0, 100}});
  const auto location = cluster_location(per_streamer, config_with());
  ASSERT_EQ(location.size(), 2u);
  EXPECT_NEAR(location[0].weight, 0.75, 1e-9);
}

TEST(Clusters, EndpointChangesDetected) {
  // One stream at 40 ms, the next at 110 ms: a possible location change
  // (different streams).
  std::vector<Stream> streams;
  streams.push_back(make_stream(std::vector<int>(8, 40), 0.0));
  streams.push_back(make_stream(std::vector<int>(8, 110), 86400.0));
  const auto clean =
      clean_streamer_game(std::move(streams), config_with());
  const std::vector<LatencyCluster> location_clusters = {
      {35, 55, 0.6, 10}, {100, 120, 0.4, 10}};
  const auto changes =
      detect_endpoint_changes(clean, location_clusters, config_with());
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_FALSE(changes[0].same_stream);  // spans streams -> location change
}

TEST(Clusters, ServerChangeWithinStream) {
  std::vector<int> latencies;
  for (int i = 0; i < 8; ++i) latencies.push_back(40);
  for (int i = 0; i < 8; ++i) latencies.push_back(110);
  const auto clean = clean_stream(make_stream(latencies), config_with());
  const std::vector<LatencyCluster> location_clusters = {
      {35, 55, 0.6, 10}, {100, 120, 0.4, 10}};
  const auto changes =
      detect_endpoint_changes(clean, location_clusters, config_with());
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_TRUE(changes[0].same_stream);  // same stream -> server change
}

TEST(Distribution, StaticAndMobileContributions) {
  DistributionBuilder builder;
  const auto static_clean =
      clean_stream(make_stream(std::vector<int>(10, 45)), config_with());
  builder.add_static(static_clean);
  EXPECT_EQ(builder.values().size(), 10u);
  EXPECT_EQ(builder.streamers(), 1u);

  // Mobile streamer: only the heaviest cluster's values count.
  std::vector<int> latencies;
  for (int i = 0; i < 12; ++i) latencies.push_back(46);
  for (int i = 0; i < 6; ++i) latencies.push_back(110);
  const auto mobile_clean =
      clean_stream(make_stream(latencies), config_with());
  const auto clusters = cluster_streamer(mobile_clean, config_with());
  builder.add_mobile(mobile_clean, clusters, config_with());
  EXPECT_EQ(builder.streamers(), 2u);
  EXPECT_EQ(builder.values().size(), 22u);  // 10 + the 12 low-cluster points
  const auto box = builder.boxplot();
  EXPECT_LE(box.p95, 60.0);  // the 110s never made it in
}

}  // namespace
}  // namespace tero::analysis

// ---- Property tests: invariants over random inputs -----------------------------

namespace property {

using namespace tero::analysis;

class RandomStreamInvariants : public ::testing::TestWithParam<int> {};

TEST_P(RandomStreamInvariants, AccountingAndPartitioning) {
  tero::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  // A random latency series with level shifts, spikes, and glitches.
  Stream stream;
  stream.streamer = "p";
  stream.game = "g";
  int level = static_cast<int>(rng.uniform_int(20, 120));
  for (int i = 0; i < 200; ++i) {
    if (rng.bernoulli(0.02)) {
      level = static_cast<int>(rng.uniform_int(20, 160));
    }
    Measurement m;
    m.time_s = i * 300.0;
    m.latency_ms = level + static_cast<int>(rng.normal(0, 3));
    if (rng.bernoulli(0.03)) m.latency_ms += 60 + static_cast<int>(rng.uniform_int(0, 80));
    if (rng.bernoulli(0.02)) m.latency_ms = std::max(1, m.latency_ms - 100);
    m.latency_ms = std::max(1, m.latency_ms);
    if (rng.bernoulli(0.1)) m.alternative_ms = level;
    stream.points.push_back(m);
  }
  const AnalysisConfig config;

  // Segmentation partitions the stream exactly.
  const auto segments = segment_stream(stream, config);
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    if (s > 0) EXPECT_EQ(segments[s].first, prev_end + 1);
    EXPECT_LE(segments[s].first, segments[s].last);
    // All values inside the segment within LatGap of each other.
    EXPECT_LE(segments[s].max_latency - segments[s].min_latency,
              config.lat_gap_ms);
    covered += segments[s].size();
    prev_end = segments[s].last;
  }
  EXPECT_EQ(covered, stream.points.size());

  // Cleaning conserves points across its outcome classes.
  const auto clean = clean_stream(stream, config);
  EXPECT_EQ(clean.points_in, stream.points.size());
  EXPECT_EQ(clean.points_in,
            clean.points_retained + clean.points_discarded +
                clean.spike_points);
  // Retained points are a subset of the input timestamps.
  for (const auto& retained : clean.retained) {
    for (const auto& point : retained.points) {
      bool found = false;
      for (const auto& original : stream.points) {
        if (original.time_s == point.time_s) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
  // Spike events are time-ordered with positive magnitude.
  for (std::size_t i = 0; i < clean.spikes.size(); ++i) {
    EXPECT_LE(clean.spikes[i].start_s, clean.spikes[i].end_s);
    EXPECT_GT(clean.spikes[i].magnitude_ms(), 0.0);
    if (i > 0) {
      EXPECT_GT(clean.spikes[i].start_s, clean.spikes[i - 1].end_s);
    }
  }
  // Spike fraction is a valid proportion.
  EXPECT_GE(clean.spike_fraction(), 0.0);
  EXPECT_LE(clean.spike_fraction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStreamInvariants,
                         ::testing::Range(1, 13));

class RandomClusterInvariants : public ::testing::TestWithParam<int> {};

TEST_P(RandomClusterInvariants, WeightsSumToOneAndClustersSeparated) {
  tero::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97);
  std::vector<ClusterInput> inputs;
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 30));
  for (std::size_t i = 0; i < n; ++i) {
    const int lo = static_cast<int>(rng.uniform_int(10, 200));
    inputs.push_back(ClusterInput{
        lo, lo + static_cast<int>(rng.uniform_int(0, 14)),
        static_cast<std::size_t>(rng.uniform_int(1, 50))});
  }
  const double gap = 15.0;
  const auto clusters = merge_clusters(inputs, gap);
  double weight_sum = 0.0;
  std::size_t point_sum = 0;
  for (const auto& cluster : clusters) {
    weight_sum += cluster.weight;
    point_sum += cluster.point_count;
    EXPECT_LE(cluster.min_ms, cluster.max_ms);
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
  std::size_t input_points = 0;
  for (const auto& input : inputs) input_points += input.points;
  EXPECT_EQ(point_sum, input_points);
  // Any two clusters are separated by at least the merge gap.
  for (std::size_t a = 0; a < clusters.size(); ++a) {
    for (std::size_t b = a + 1; b < clusters.size(); ++b) {
      const double separation = std::max(
          {0.0,
           static_cast<double>(clusters[a].min_ms - clusters[b].max_ms),
           static_cast<double>(clusters[b].min_ms - clusters[a].max_ms)});
      EXPECT_GE(separation, gap);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomClusterInvariants,
                         ::testing::Range(1, 11));

}  // namespace property
