#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "store/consistent_hash.hpp"
#include "store/doc_store.hpp"
#include "store/kv_store.hpp"
#include "store/object_store.hpp"
#include "store/persistence.hpp"

namespace tero::store {
namespace {

TEST(KvStore, PutGetEraseContains) {
  KvStore kv;
  kv.put("a", "1");
  EXPECT_EQ(kv.get("a"), "1");
  EXPECT_TRUE(kv.contains("a"));
  kv.put("a", "2");
  EXPECT_EQ(kv.get("a"), "2");
  EXPECT_TRUE(kv.erase("a"));
  EXPECT_FALSE(kv.erase("a"));
  EXPECT_FALSE(kv.get("a").has_value());
}

TEST(KvStore, PrefixScan) {
  KvStore kv;
  kv.put("tracked:alice", "1");
  kv.put("tracked:bob", "1");
  kv.put("seen:alice", "3");
  const auto keys = kv.keys_with_prefix("tracked:");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "tracked:alice");
}

TEST(KvStore, ListsAreFifo) {
  KvStore kv;
  kv.push_back("q", "1");
  kv.push_back("q", "2");
  EXPECT_EQ(kv.list_size("q"), 2u);
  EXPECT_EQ(kv.pop_front("q"), "1");
  EXPECT_EQ(kv.pop_front("q"), "2");
  EXPECT_FALSE(kv.pop_front("q").has_value());
}

TEST(KvStore, PopBatchLeavesRemainder) {
  KvStore kv;
  for (int i = 0; i < 5; ++i) kv.push_back("batch", std::to_string(i));
  const auto batch = kv.pop_batch("batch", 3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], "0");
  EXPECT_EQ(kv.list_size("batch"), 2u);
  EXPECT_EQ(kv.pop_batch("empty", 3).size(), 0u);
}

TEST(ObjectStore, PutGetEraseAccounting) {
  ObjectStore store;
  store.put("thumbs", "a", "12345");
  EXPECT_EQ(store.total_bytes(), 5u);
  store.put("thumbs", "a", "12");  // overwrite shrinks accounting
  EXPECT_EQ(store.total_bytes(), 2u);
  EXPECT_EQ(store.get("thumbs", "a"), "12");
  EXPECT_FALSE(store.get("thumbs", "missing").has_value());
  EXPECT_TRUE(store.erase("thumbs", "a"));
  EXPECT_EQ(store.total_bytes(), 0u);
  EXPECT_EQ(store.object_count(), 0u);
}

TEST(ObjectStore, ListPerBucket) {
  ObjectStore store;
  store.put("b1", "x", "1");
  store.put("b1", "y", "2");
  store.put("b2", "z", "3");
  EXPECT_EQ(store.list("b1").size(), 2u);
  EXPECT_EQ(store.list("b2").size(), 1u);
  EXPECT_EQ(store.list("nope").size(), 0u);
}

TEST(DocStore, InsertFindScan) {
  DocStore docs;
  const auto id = docs.insert("latency", {{"streamer", "u1"}, {"ms", "45"}});
  docs.insert("latency", {{"streamer", "u2"}, {"ms", "80"}});
  ASSERT_NE(docs.find_by_id("latency", id), nullptr);
  EXPECT_EQ(docs.count("latency"), 2u);
  const auto u1 = docs.find_equal("latency", "streamer", "u1");
  ASSERT_EQ(u1.size(), 1u);
  EXPECT_EQ(doc_get_num(*u1[0], "ms"), 45.0);
  const auto heavy = docs.scan("latency", [](const Document& d) {
    return doc_get_num(d, "ms") > 50;
  });
  EXPECT_EQ(heavy.size(), 1u);
}

TEST(DocStore, RemoveIf) {
  DocStore docs;
  for (int i = 0; i < 10; ++i) {
    docs.insert("c", {{"v", std::to_string(i)}});
  }
  const auto removed = docs.remove_if(
      "c", [](const Document& d) { return doc_get_num(d, "v") < 5; });
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(docs.count("c"), 5u);
}

TEST(DocStore, FieldHelpers) {
  Document doc{{"a", "x"}};
  EXPECT_EQ(doc_get(doc, "a"), "x");
  EXPECT_EQ(doc_get(doc, "b", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(doc_get_num(doc, "missing", -1.0), -1.0);
}

TEST(Pseudonymizer, StableAndSaltDependent) {
  const Pseudonymizer a(1);
  const Pseudonymizer b(2);
  EXPECT_EQ(a.pseudonym("alice"), a.pseudonym("alice"));
  EXPECT_NE(a.pseudonym("alice"), a.pseudonym("bob"));
  EXPECT_NE(a.pseudonym("alice"), b.pseudonym("alice"));
  EXPECT_EQ(a.pseudonym("alice").size(), 17u);  // 'u' + 16 hex chars
  EXPECT_EQ(a.pseudonym("alice")[0], 'u');
}

TEST(ConsistentHashRing, AssignsAllKeysAndBalances) {
  ConsistentHashRing ring(64);
  ring.add_node("n1");
  ring.add_node("n2");
  ring.add_node("n3");
  std::map<std::string, int> counts;
  for (int i = 0; i < 3000; ++i) {
    counts[ring.node_for("key" + std::to_string(i))]++;
  }
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [node, count] : counts) {
    EXPECT_GT(count, 3000 / 3 / 3) << node;  // no node starves badly
  }
}

TEST(ConsistentHashRing, RemovalOnlyRemapsOwnedKeys) {
  ConsistentHashRing ring(64);
  ring.add_node("n1");
  ring.add_node("n2");
  ring.add_node("n3");
  const ConsistentHashRing before = ring;
  ring.remove_node("n2");
  const RemapDiff diff = ConsistentHashRing::remap_diff(before, ring);
  ASSERT_FALSE(diff.empty());
  // Every moved range drains n2 and lands somewhere else — no range moves
  // between the surviving nodes.
  for (const RemapRange& range : diff.ranges) {
    EXPECT_LE(range.begin, range.end);
    EXPECT_EQ(range.from, "n2");
    EXPECT_NE(range.to, "n2");
  }
  // The diff agrees with brute-force owner comparison on a key sample.
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key" + std::to_string(i);
    const bool brute = before.node_for(key) != ring.node_for(key);
    EXPECT_EQ(diff.moved(key), brute) << key;
    EXPECT_EQ(diff.moved_hash(ConsistentHashRing::key_hash(key)), brute);
  }
}

TEST(ConsistentHashRing, RemovalMovesBoundedKeyFraction) {
  // serve::QueryService and cluster::Cluster rely on node churn staying
  // ~1/n: removing one of n nodes must remap strictly less than 2/n of the
  // keyspace. remap_diff measures that exactly (hash-arc mass, not a key
  // sample); a 10k-key sample cross-checks it.
  constexpr int kNodes = 5;
  constexpr int kKeys = 10000;
  ConsistentHashRing ring(64);
  for (int i = 0; i < kNodes; ++i) {
    ring.add_node("shard-" + std::to_string(i));
  }
  const ConsistentHashRing before = ring;
  ring.remove_node("shard-2");
  const RemapDiff diff = ConsistentHashRing::remap_diff(before, ring);
  EXPECT_GT(diff.moved_fraction(), 0.0);
  EXPECT_LT(diff.moved_fraction(), 2.0 / kNodes)
      << "removal remapped " << diff.moved_fraction() << " of the keyspace";
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "latency|key" + std::to_string(i);
    if (diff.moved(key)) ++moved;
    EXPECT_EQ(diff.moved(key), before.node_for(key) != ring.node_for(key));
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 2 * kKeys / kNodes)
      << "removal remapped " << moved << " of " << kKeys << " keys";
}

TEST(ConsistentHashRing, JoinAndLeaveRemapWithinDocumentedBound) {
  // The cluster's live-resharding bound: joining or leaving one of n nodes
  // moves < 2/n of the hash space, all of it to (join) or from (leave) the
  // churned node, and an unchanged ring yields an empty diff.
  for (const int nodes : {3, 5, 8, 16}) {
    ConsistentHashRing ring(64);
    for (int i = 0; i < nodes; ++i) {
      ring.add_node("shard-" + std::to_string(i));
    }
    EXPECT_TRUE(ConsistentHashRing::remap_diff(ring, ring).empty());

    const ConsistentHashRing before_join = ring;
    ring.add_node("joiner");
    const RemapDiff join_diff =
        ConsistentHashRing::remap_diff(before_join, ring);
    ASSERT_FALSE(join_diff.empty()) << nodes << " nodes";
    EXPECT_LT(join_diff.moved_fraction(), 2.0 / (nodes + 1))
        << nodes << " nodes";
    for (const RemapRange& range : join_diff.ranges) {
      EXPECT_EQ(range.to, "joiner");
      EXPECT_NE(range.from, "joiner");
    }

    const ConsistentHashRing before_leave = ring;
    ring.remove_node("joiner");
    const RemapDiff leave_diff =
        ConsistentHashRing::remap_diff(before_leave, ring);
    ASSERT_FALSE(leave_diff.empty()) << nodes << " nodes";
    EXPECT_LT(leave_diff.moved_fraction(), 2.0 / (nodes + 1))
        << nodes << " nodes";
    for (const RemapRange& range : leave_diff.ranges) {
      EXPECT_EQ(range.from, "joiner");
      EXPECT_NE(range.to, "joiner");
    }
    // Leave undoes join exactly: the same hash mass moves back.
    EXPECT_DOUBLE_EQ(join_diff.moved_fraction(), leave_diff.moved_fraction());
  }
}

TEST(ConsistentHashRing, PlacementIsStableAcrossProcessRuns) {
  // The ring hash is salted per node name, not per process: these literals
  // were captured from a separate run, so any drift in fnv1a64 or the
  // virtual-node layout (which would silently invalidate persisted shard
  // assignments) fails here.
  ConsistentHashRing ring(64);
  for (int i = 0; i < 5; ++i) {
    ring.add_node("shard-" + std::to_string(i));
  }
  EXPECT_EQ(ring.node_for("lol|DE||"), "shard-3");
  EXPECT_EQ(ring.node_for("valorant|BR||"), "shard-1");
  EXPECT_EQ(ring.node_for("fortnite|US|Texas|"), "shard-2");
  EXPECT_EQ(ring.node_for("dota2|JP||Tokyo"), "shard-0");
  EXPECT_EQ(ring.node_for("topk|lol"), "shard-1");
}

TEST(ConsistentHashRing, NodesListedInInsertionOrder) {
  ConsistentHashRing ring;
  ring.add_node("b");
  ring.add_node("a");
  ring.add_node("c");
  EXPECT_EQ(ring.nodes(), (std::vector<std::string>{"b", "a", "c"}));
  ring.remove_node("a");
  EXPECT_EQ(ring.nodes(), (std::vector<std::string>{"b", "c"}));
}

TEST(ConsistentHashRing, EmptyRing) {
  ConsistentHashRing ring;
  EXPECT_EQ(ring.node_for("anything"), "");
  EXPECT_EQ(ring.node_count(), 0u);
}

TEST(ConsistentHashRing, DuplicateAddIgnored) {
  ConsistentHashRing ring;
  ring.add_node("n1");
  ring.add_node("n1");
  EXPECT_EQ(ring.node_count(), 1u);
}

}  // namespace
}  // namespace tero::store

namespace persistence_tests {
using namespace tero::store;

TEST(Persistence, KvRoundTrip) {
  KvStore kv;
  kv.put("tracked:alice", "1");
  kv.put("weird key,with\nstuff", "value with spaces\nand newline");
  kv.push_back("queue", "first");
  kv.push_back("queue", "second, with comma");
  std::ostringstream snapshot;
  snapshot_kv(kv, snapshot);
  std::istringstream input(snapshot.str());
  KvStore restored = restore_kv(input);
  EXPECT_EQ(restored.get("tracked:alice"), "1");
  EXPECT_EQ(restored.get("weird key,with\nstuff"),
            "value with spaces\nand newline");
  EXPECT_EQ(restored.pop_front("queue"), "first");
  EXPECT_EQ(restored.pop_front("queue"), "second, with comma");
  EXPECT_FALSE(restored.pop_front("queue").has_value());
}

TEST(Persistence, KvEmptySnapshot) {
  KvStore kv;
  std::ostringstream snapshot;
  snapshot_kv(kv, snapshot);
  std::istringstream input(snapshot.str());
  const KvStore restored = restore_kv(input);
  EXPECT_EQ(restored.size(), 0u);
}

TEST(Persistence, KvRejectsGarbage) {
  std::istringstream input("X 3 abc");
  EXPECT_THROW(restore_kv(input), std::invalid_argument);
  std::istringstream truncated("K 10 short");
  EXPECT_THROW(restore_kv(truncated), std::invalid_argument);
}

TEST(Persistence, DocsRoundTrip) {
  DocStore docs;
  docs.insert("latency", {{"streamer", "u1"}, {"ms", "45"}});
  docs.insert("latency", {{"streamer", "u2"}, {"note", "has, comma"}});
  docs.insert("other", {{"k", "v"}});
  std::ostringstream snapshot;
  snapshot_docs(docs, snapshot);
  std::istringstream input(snapshot.str());
  DocStore restored = restore_docs(input);
  EXPECT_EQ(restored.count("latency"), 2u);
  EXPECT_EQ(restored.count("other"), 1u);
  const auto u2 = restored.find_equal("latency", "streamer", "u2");
  ASSERT_EQ(u2.size(), 1u);
  EXPECT_EQ(doc_get(*u2[0], "note"), "has, comma");
}

TEST(Persistence, KvEnumeration) {
  KvStore kv;
  kv.push_back("a", "1");
  kv.push_back("b", "2");
  EXPECT_EQ(kv.list_keys().size(), 2u);
  EXPECT_EQ(kv.list_contents("a"), std::vector<std::string>{"1"});
  EXPECT_TRUE(kv.list_contents("missing").empty());
}

TEST(Persistence, ZeroLengthFieldsRoundTrip) {
  // Empty keys and empty values are legal length-prefixed fields ("0 "):
  // the reader must consume exactly zero bytes and continue at the next
  // record rather than eating the separator or declaring truncation.
  KvStore kv;
  kv.put("", "value under empty key");
  kv.put("empty value", "");
  kv.push_back("queue", "");
  kv.push_back("", "element under empty list key");
  std::ostringstream snapshot;
  snapshot_kv(kv, snapshot);
  std::istringstream input(snapshot.str());
  KvStore restored = restore_kv(input);
  EXPECT_EQ(restored.get(""), "value under empty key");
  EXPECT_EQ(restored.get("empty value"), "");
  EXPECT_EQ(restored.pop_front("queue"), "");
  EXPECT_EQ(restored.pop_front(""), "element under empty list key");
}

TEST(Persistence, ValueEndingExactlyAtStreamEnd) {
  // A record whose value runs to the final byte of the stream (no trailing
  // newline) sits exactly at the length-prefix boundary: read_field must
  // see gcount() == length and the record loop must then hit clean EOF.
  std::istringstream exact("K 1 a 5 hello");
  KvStore restored = restore_kv(exact);
  EXPECT_EQ(restored.get("a"), "hello");

  // One declared byte short of that boundary is truncation, not EOF.
  std::istringstream short_one("K 1 a 6 hello");
  EXPECT_THROW(restore_kv(short_one), std::invalid_argument);

  // Cut exactly after the length prefix: zero of the declared bytes exist.
  std::istringstream prefix_only("K 1 a 5 ");
  EXPECT_THROW(restore_kv(prefix_only), std::invalid_argument);
}

TEST(Persistence, FileRoundTripZeroLengthPayload) {
  // An empty store snapshots to a zero-length payload, so the file is
  // exactly header + "0 <checksum-of-empty>\n" + trailer. The footer scan
  // must not misread the length/checksum line as payload.
  const auto dir =
      std::filesystem::temp_directory_path() / "tero_store_persist_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "empty.tkv").string();
  save_kv_file(KvStore{}, path);
  const KvStore restored = load_kv_file(path);
  EXPECT_EQ(restored.size(), 0u);
  EXPECT_TRUE(restored.list_keys().empty());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove_all(dir);
}

TEST(Persistence, FileRoundTripZeroLengthFields) {
  // Zero-length keys and values survive the full save/load path, where the
  // payload is additionally framed by the byte count + checksum footer.
  const auto dir =
      std::filesystem::temp_directory_path() / "tero_store_persist_test2";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "fields.tkv").string();
  KvStore kv;
  kv.put("", "");
  kv.put("k", "");
  kv.push_back("list", "");
  save_kv_file(kv, path);
  KvStore restored = load_kv_file(path);
  EXPECT_EQ(restored.get(""), "");
  EXPECT_EQ(restored.get("k"), "");
  EXPECT_EQ(restored.pop_front("list"), "");
  std::filesystem::remove_all(dir);
}

TEST(Persistence, FileTruncatedAtLengthPrefixBoundaryRejected) {
  // Truncate a valid snapshot file so the payload ends exactly where a
  // record's length prefix promises more bytes — then re-append the footer
  // and trailer so only the payload-length check can catch it. load_kv_file
  // must reject rather than restore a half-record.
  const auto dir =
      std::filesystem::temp_directory_path() / "tero_store_persist_test3";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "torn.tkv").string();
  KvStore kv;
  kv.put("key", "0123456789");
  save_kv_file(kv, path);

  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string contents = buffer.str();
  // Drop the final payload bytes (the value body after its "10 " prefix)
  // while keeping the original footer and trailer intact.
  const auto cut = contents.find("0123456789");
  ASSERT_NE(cut, std::string::npos);
  const auto rest = contents.find('\n', cut);
  ASSERT_NE(rest, std::string::npos);
  contents.erase(cut, rest - cut);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  out.close();

  EXPECT_THROW(load_kv_file(path), std::runtime_error);
  std::filesystem::remove_all(dir);
}

}  // namespace persistence_tests
