#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/runtime_metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tero::util {
namespace {

TEST(ThreadPool, ResolveZeroMeansHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(1), 1u);
  EXPECT_EQ(ThreadPool::resolve(7), 7u);
}

TEST(ThreadPool, SizeOneRunsInlineWithNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(0, 4, 1, [&](std::size_t) {
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, EmptyRangeDoesNothing) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, 0, 1, [&](std::size_t) { ++calls; });
  pool.parallel_for(5, 5, 8, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, 1, [&](std::size_t) { ++calls; });  // begin > end
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, OneElementRange) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::atomic<std::size_t> seen{999};
  pool.parallel_for(3, 4, 16, [&](std::size_t i) {
    ++calls;
    seen = i;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, 3u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  for (std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{256},
                            std::size_t{20'000}}) {
    for (auto& h : hits) h = 0;
    pool.parallel_for(0, kN, grain, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ThreadPool, ExceptionPropagatesFromParallelFor) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000, 1,
                        [](std::size_t i) {
                          if (i == 437) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives an exception and keeps executing work.
  std::atomic<int> calls{0};
  pool.parallel_for(0, 100, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 100);
}

TEST(ThreadPool, ExceptionInInlineFastPathPropagatesToo) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 10, 1,
                                 [](std::size_t) {
                                   throw std::invalid_argument("inline");
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t) {
    pool.parallel_for(0, 32, 1, [&](std::size_t) { ++inner_calls; });
  });
  EXPECT_EQ(inner_calls, 8 * 32);
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(0);  // all cores
  constexpr std::size_t kN = 200'000;
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, kN, 1, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, SubmitRunsFireAndForgetTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&] { ++ran; });
    }
    // Destructor drains the queues before joining the workers.
  }
  EXPECT_EQ(ran, 64);
}

TEST(ParallelMap, ResultsLandInTaskOrder) {
  ThreadPool pool(4);
  const auto squares = parallel_map(&pool, 1000, 3, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(squares.size(), 1000u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    ASSERT_EQ(squares[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMap, NullPoolRunsInline) {
  const auto doubled =
      parallel_map(nullptr, 16, 4, [](std::size_t i) { return 2 * i; });
  ASSERT_EQ(doubled.size(), 16u);
  EXPECT_EQ(doubled[15], 30u);
}

TEST(ParallelMap, IndexedRngMakesResultsThreadCountInvariant) {
  // The determinism recipe used by the pipeline: randomness derived from
  // (seed, task index), results in slots indexed by task id. Any two pools
  // must produce bit-identical output.
  auto draw = [](std::size_t i) {
    Rng rng = Rng::indexed(42, i);
    return rng.normal() + rng.uniform();
  };
  ThreadPool serial(1);
  ThreadPool wide(8);
  const auto a = parallel_map(&serial, 5000, 1, draw);
  const auto b = parallel_map(&wide, 5000, 1, draw);
  const auto c = parallel_map(&wide, 5000, 64, draw);  // different grain too
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << i;  // bitwise: EQ on doubles is intentional
    ASSERT_EQ(a[i], c[i]) << i;
  }
}

TEST(ThreadPoolStats, CountsInlineParallelFor) {
  ThreadPool pool(1);
  pool.parallel_for(0, 100, 10, [](std::size_t) {});
  const auto stats = pool.stats();
  EXPECT_EQ(stats.parallel_for_calls, 1u);
  EXPECT_EQ(stats.tasks_run, 10u);  // one per chunk, even on the inline path
  EXPECT_EQ(stats.parallel_for_failures, 0u);
  EXPECT_EQ(stats.last_failed_chunk, -1);
}

TEST(ThreadPoolStats, CountsPooledParallelFor) {
  ThreadPool pool(4);
  pool.parallel_for(0, 100, 10, [](std::size_t) {});
  const auto stats = pool.stats();
  EXPECT_EQ(stats.parallel_for_calls, 1u);
  EXPECT_EQ(stats.tasks_run, 10u);  // every chunk executed exactly once
  EXPECT_GE(stats.max_queue_depth, 1u);
}

TEST(ThreadPoolStats, SubmitCountsOnTheInlinePathToo) {
  ThreadPool pool(1);
  pool.submit([] {});
  pool.submit([] {});
  EXPECT_EQ(pool.stats().tasks_run, 2u);
}

TEST(ThreadPoolStats, RecordsFailingChunkIndexInline) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 100, 10,
                                 [](std::size_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.parallel_for_failures, 1u);
  EXPECT_EQ(stats.last_failed_chunk, 5);  // i == 57 lives in chunk [50, 60)
}

TEST(ThreadPoolStats, RecordsFailingChunkIndexPooled) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 1000, 1,
                                 [](std::size_t i) {
                                   if (i == 437) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.parallel_for_failures, 1u);
  // grain 1 -> chunk index == element index; 437 is the only chunk that can
  // throw, so fail-fast ordering cannot report anything else.
  EXPECT_EQ(stats.last_failed_chunk, 437);
}

TEST(ThreadPoolStats, RegistryStaysConsistentAfterMidChunkThrow) {
  ThreadPool pool(2);
  obs::MetricsRegistry registry;
  ThreadPool::Stats baseline;
  obs::record_pool_stats(pool.stats(), registry, "tero.pool", &baseline);

  EXPECT_THROW(pool.parallel_for(0, 40, 10,
                                 [](std::size_t i) {
                                   if (i == 35) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool keeps working after the throw, and the registry export stays
  // consistent: deltas only, failure surfaced with its chunk label.
  std::atomic<int> calls{0};
  pool.parallel_for(0, 50, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 50);
  obs::record_pool_stats(pool.stats(), registry, "tero.pool", &baseline);

  EXPECT_EQ(registry.counter("tero.pool.parallel_for_calls").value(), 2u);
  EXPECT_EQ(registry.counter("tero.pool.parallel_for_failures").value(), 1u);
  const std::string labeled = obs::MetricsRegistry::labeled(
      "tero.pool.parallel_for_failures", {{"chunk", "3"}});
  EXPECT_EQ(registry.counter(labeled).value(), 1u);

  // A second snapshot with no new work adds nothing (delta accounting).
  obs::record_pool_stats(pool.stats(), registry, "tero.pool", &baseline);
  EXPECT_EQ(registry.counter("tero.pool.parallel_for_calls").value(), 2u);
  EXPECT_EQ(registry.counter(labeled).value(), 1u);
}

TEST(MixSeed, SpreadsNearbyInputs) {
  // Adjacent (seed, index) pairs must land far apart; a quick sanity check
  // that the seed-splitting scheme does not correlate neighbouring tasks.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 4; ++s) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      seen.push_back(mix_seed(s, i));
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace tero::util
