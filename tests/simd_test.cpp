#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "image/arena.hpp"
#include "image/draw.hpp"
#include "image/image.hpp"
#include "image/ops.hpp"
#include "ocr/engine.hpp"
#include "ocr/extractor.hpp"
#include "ocr/game_ui.hpp"
#include "ocr/preprocess.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace tero {
namespace {

namespace simd = util::simd;

/// Restores the dispatch switch after each test so ordering cannot leak.
class SimdTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::apply_mode(simd::Mode::kAuto); }
};

/// Sizes that exercise empty input, sub-lane tails, exact lane multiples,
/// and the one-past-a-lane cases for 16-wide u8 and 4-wide f32 kernels.
const std::vector<std::size_t> kSizes = {0,  1,  2,  3,  4,   5,   15,  16,
                                         17, 31, 32, 33, 63,  64,  65,  100,
                                         127, 128, 129, 255, 256, 1000};

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_int_distribution<int> dist(0, 255);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(dist(gen));
  return out;
}

std::vector<std::uint8_t> random_binary(std::size_t n, std::uint32_t seed) {
  std::mt19937 gen(seed);
  std::bernoulli_distribution dist(0.4);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = dist(gen) ? 255 : 0;
  return out;
}

std::vector<float> random_floats(std::size_t n, std::uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<float> out(n);
  for (auto& f : out) f = dist(gen);
  return out;
}

image::GrayImage random_image(int w, int h, std::uint32_t seed) {
  image::GrayImage img(w, h);
  const auto bytes = random_bytes(img.size(), seed);
  std::memcpy(img.data(), bytes.data(), bytes.size());
  return img;
}

image::GrayImage random_binary_image(int w, int h, std::uint32_t seed) {
  image::GrayImage img(w, h);
  const auto bytes = random_binary(img.size(), seed);
  std::memcpy(img.data(), bytes.data(), bytes.size());
  return img;
}

/// Odd widths so every row ends mid-lane; heights chosen small but > 3 so
/// the morphology vertical window sees interior rows.
const std::vector<std::pair<int, int>> kImageSizes = {
    {1, 1}, {3, 5}, {17, 9}, {31, 7}, {64, 16}, {129, 33}, {240, 45}};

// ---------------------------------------------------------------------------
// Raw kernel bit-identity: run vectorized, force scalar, compare exactly.
// ---------------------------------------------------------------------------

TEST_F(SimdTest, BinarizeMatchesScalarForAllThresholds) {
  for (std::uint32_t seed : {1u, 2u, 3u}) {
    for (std::size_t n : kSizes) {
      const auto src = random_bytes(n, seed);
      for (int threshold : {0, 1, 42, 127, 128, 200, 254, 255}) {
        std::vector<std::uint8_t> fast(n), slow(n);
        simd::set_enabled(true);
        simd::binarize_u8(src.data(), fast.data(), n,
                          static_cast<std::uint8_t>(threshold));
        simd::set_enabled(false);
        simd::binarize_u8(src.data(), slow.data(), n,
                          static_cast<std::uint8_t>(threshold));
        ASSERT_EQ(fast, slow) << "n=" << n << " t=" << threshold;
      }
    }
  }
}

TEST_F(SimdTest, BinarizeInPlaceAliasesSafely) {
  const auto src = random_bytes(1000, 7);
  auto aliased = src;
  std::vector<std::uint8_t> separate(src.size());
  simd::set_enabled(true);
  simd::binarize_u8(aliased.data(), aliased.data(), aliased.size(), 99);
  simd::binarize_u8(src.data(), separate.data(), src.size(), 99);
  EXPECT_EQ(aliased, separate);
}

TEST_F(SimdTest, InvertMatchesScalar) {
  for (std::uint32_t seed : {1u, 9u}) {
    for (std::size_t n : kSizes) {
      const auto src = random_bytes(n, seed);
      std::vector<std::uint8_t> fast(n), slow(n);
      simd::set_enabled(true);
      simd::invert_u8(src.data(), fast.data(), n);
      simd::set_enabled(false);
      simd::invert_u8(src.data(), slow.data(), n);
      ASSERT_EQ(fast, slow) << "n=" << n;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(fast[i], 255 - src[i]);
      }
    }
  }
}

TEST_F(SimdTest, CountEqMatchesScalar) {
  for (std::uint32_t seed : {4u, 5u}) {
    for (std::size_t n : kSizes) {
      const auto src = random_binary(n, seed);
      for (int value : {0, 128, 255}) {
        simd::set_enabled(true);
        const std::size_t fast =
            simd::count_eq_u8(src.data(), n, static_cast<std::uint8_t>(value));
        simd::set_enabled(false);
        const std::size_t slow =
            simd::count_eq_u8(src.data(), n, static_cast<std::uint8_t>(value));
        ASSERT_EQ(fast, slow) << "n=" << n << " v=" << value;
      }
    }
  }
}

TEST_F(SimdTest, FindEqMatchesScalar) {
  for (std::uint32_t seed : {6u, 7u}) {
    for (std::size_t n : kSizes) {
      auto src = random_bytes(n, seed);
      for (int value : {0, 17, 255}) {
        simd::set_enabled(true);
        const std::size_t fast =
            simd::find_eq_u8(src.data(), n, static_cast<std::uint8_t>(value));
        simd::set_enabled(false);
        const std::size_t slow =
            simd::find_eq_u8(src.data(), n, static_cast<std::uint8_t>(value));
        ASSERT_EQ(fast, slow) << "n=" << n << " v=" << value;
      }
      // Absent value: both paths must report n.
      std::vector<std::uint8_t> zeros(n, 0);
      simd::set_enabled(true);
      EXPECT_EQ(simd::find_eq_u8(zeros.data(), n, 255), n);
      // Last-position value: found even when it sits in the tail lanes.
      if (n > 0) {
        zeros[n - 1] = 255;
        EXPECT_EQ(simd::find_eq_u8(zeros.data(), n, 255), n - 1);
      }
    }
  }
}

TEST_F(SimdTest, MorphologyRowKernelsMatchScalar) {
  for (std::uint32_t seed : {8u, 11u}) {
    for (std::size_t n : kSizes) {
      const auto a = random_binary(n, seed);
      const auto b = random_binary(n, seed + 100);
      const auto c = random_binary(n, seed + 200);
      std::vector<std::uint8_t> fast(n), slow(n);
      simd::set_enabled(true);
      simd::eq255_or3_u8(a.data(), b.data(), c.data(), fast.data(), n);
      simd::set_enabled(false);
      simd::eq255_or3_u8(a.data(), b.data(), c.data(), slow.data(), n);
      ASSERT_EQ(fast, slow) << "or3 n=" << n;

      simd::set_enabled(true);
      simd::eq255_and3_u8(a.data(), b.data(), c.data(), fast.data(), n);
      simd::set_enabled(false);
      simd::eq255_and3_u8(a.data(), b.data(), c.data(), slow.data(), n);
      ASSERT_EQ(fast, slow) << "and3 n=" << n;

      simd::set_enabled(true);
      simd::neighbor_or3_u8(a.data(), fast.data(), n);
      simd::set_enabled(false);
      simd::neighbor_or3_u8(a.data(), slow.data(), n);
      ASSERT_EQ(fast, slow) << "nor3 n=" << n;

      simd::set_enabled(true);
      simd::neighbor_and3_u8(a.data(), fast.data(), n);
      simd::set_enabled(false);
      simd::neighbor_and3_u8(a.data(), slow.data(), n);
      ASSERT_EQ(fast, slow) << "nand3 n=" << n;
    }
  }
}

TEST_F(SimdTest, HistogramMatchesScalar) {
  for (std::uint32_t seed : {12u, 13u}) {
    for (std::size_t n : kSizes) {
      const auto src = random_bytes(n, seed);
      std::uint64_t fast[256], slow[256];
      simd::set_enabled(true);
      simd::histogram_u8(src.data(), n, fast);
      simd::set_enabled(false);
      simd::histogram_u8(src.data(), n, slow);
      for (int v = 0; v < 256; ++v) {
        ASSERT_EQ(fast[v], slow[v]) << "n=" << n << " bin=" << v;
      }
    }
  }
}

TEST_F(SimdTest, FloatReductionsBitIdentical) {
  // The whole point of the lane-strided contract: the scalar path returns
  // the same BITS, not merely nearby values.
  for (std::uint32_t seed : {21u, 22u, 23u}) {
    for (std::size_t n : kSizes) {
      const auto a = random_floats(n, seed);
      const auto b = random_floats(n, seed + 1000);
      simd::set_enabled(true);
      const float dot_fast = simd::dot_f32(a.data(), b.data(), n);
      const float l2_fast = simd::l2sq_f32(a.data(), b.data(), n);
      const float l1_fast = simd::l1_f32(a.data(), b.data(), n);
      simd::set_enabled(false);
      const float dot_slow = simd::dot_f32(a.data(), b.data(), n);
      const float l2_slow = simd::l2sq_f32(a.data(), b.data(), n);
      const float l1_slow = simd::l1_f32(a.data(), b.data(), n);
      ASSERT_EQ(0, std::memcmp(&dot_fast, &dot_slow, sizeof(float)))
          << "dot n=" << n << " fast=" << dot_fast << " slow=" << dot_slow;
      ASSERT_EQ(0, std::memcmp(&l2_fast, &l2_slow, sizeof(float)))
          << "l2 n=" << n;
      ASSERT_EQ(0, std::memcmp(&l1_fast, &l1_slow, sizeof(float)))
          << "l1 n=" << n;
    }
  }
}

TEST_F(SimdTest, ConvolutionKernelsMatchScalar) {
  const std::vector<double> kernel = {0.25, 0.5, 0.25};
  for (std::uint32_t seed : {31u, 32u}) {
    for (std::size_t n : kSizes) {
      const auto src = random_bytes(n + kernel.size() - 1, seed);
      std::vector<std::uint8_t> fast(n), slow(n);
      simd::set_enabled(true);
      simd::conv_valid_u8_f64(src.data(), n, kernel.data(), kernel.size(),
                              fast.data());
      simd::set_enabled(false);
      simd::conv_valid_u8_f64(src.data(), n, kernel.data(), kernel.size(),
                              slow.data());
      ASSERT_EQ(fast, slow) << "conv_valid n=" << n;

      const auto r0 = random_bytes(n, seed + 1);
      const auto r1 = random_bytes(n, seed + 2);
      const auto r2 = random_bytes(n, seed + 3);
      const std::uint8_t* rows[3] = {r0.data(), r1.data(), r2.data()};
      simd::set_enabled(true);
      simd::conv_rows_u8_f64(rows, n, kernel.data(), kernel.size(),
                             fast.data());
      simd::set_enabled(false);
      simd::conv_rows_u8_f64(rows, n, kernel.data(), kernel.size(),
                             slow.data());
      ASSERT_EQ(fast, slow) << "conv_rows n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Image-op bit-identity: the composed kernels through the public ops API.
// ---------------------------------------------------------------------------

TEST_F(SimdTest, ImageOpsBitIdenticalOnRandomImages) {
  for (std::uint32_t seed : {41u, 42u, 43u}) {
    for (const auto& [w, h] : kImageSizes) {
      const image::GrayImage gray = random_image(w, h, seed);
      const image::GrayImage binary = random_binary_image(w, h, seed + 500);

      simd::set_enabled(true);
      const auto blur_fast = image::gaussian_blur(gray, 1.0);
      const auto otsu_fast = image::otsu_threshold(gray);
      const auto bin_fast = image::binarize(gray, 127);
      const auto dil_fast = image::dilate3x3(binary);
      const auto ero_fast = image::erode3x3(binary);
      const auto inv_fast = image::invert(binary);
      const auto fg_fast = image::foreground_ratio(binary);
      const auto up_fast = image::upscale_bilinear(gray, 3);
      const auto cc_fast = image::connected_components(binary, 2);

      simd::set_enabled(false);
      const auto blur_slow = image::gaussian_blur(gray, 1.0);
      const auto otsu_slow = image::otsu_threshold(gray);
      const auto bin_slow = image::binarize(gray, 127);
      const auto dil_slow = image::dilate3x3(binary);
      const auto ero_slow = image::erode3x3(binary);
      const auto inv_slow = image::invert(binary);
      const auto fg_slow = image::foreground_ratio(binary);
      const auto up_slow = image::upscale_bilinear(gray, 3);
      const auto cc_slow = image::connected_components(binary, 2);

      ASSERT_TRUE(blur_fast == blur_slow) << w << "x" << h;
      ASSERT_EQ(otsu_fast, otsu_slow) << w << "x" << h;
      ASSERT_TRUE(bin_fast == bin_slow) << w << "x" << h;
      ASSERT_TRUE(dil_fast == dil_slow) << w << "x" << h;
      ASSERT_TRUE(ero_fast == ero_slow) << w << "x" << h;
      ASSERT_TRUE(inv_fast == inv_slow) << w << "x" << h;
      ASSERT_EQ(fg_fast, fg_slow) << w << "x" << h;
      ASSERT_TRUE(up_fast == up_slow) << w << "x" << h;
      ASSERT_EQ(cc_fast.size(), cc_slow.size()) << w << "x" << h;
      for (std::size_t i = 0; i < cc_fast.size(); ++i) {
        ASSERT_EQ(cc_fast[i].area, cc_slow[i].area);
        ASSERT_EQ(cc_fast[i].bounds.x, cc_slow[i].bounds.x);
        ASSERT_EQ(cc_fast[i].bounds.y, cc_slow[i].bounds.y);
        ASSERT_EQ(cc_fast[i].bounds.w, cc_slow[i].bounds.w);
        ASSERT_EQ(cc_fast[i].bounds.h, cc_slow[i].bounds.h);
      }
    }
  }
}

TEST_F(SimdTest, ArenaOverloadsMatchHeapOverloads) {
  image::Arena arena;
  for (std::uint32_t seed : {51u, 52u}) {
    for (const auto& [w, h] : kImageSizes) {
      image::Arena::Frame frame(arena);
      const image::GrayImage gray = random_image(w, h, seed);
      const image::GrayImage binary = random_binary_image(w, h, seed + 500);
      EXPECT_TRUE(image::gaussian_blur(gray, 1.2) ==
                  image::gaussian_blur(gray, 1.2, arena));
      EXPECT_TRUE(image::binarize(gray, 90) ==
                  image::binarize(gray, 90, arena));
      EXPECT_TRUE(image::dilate3x3(binary) == image::dilate3x3(binary, arena));
      EXPECT_TRUE(image::erode3x3(binary) == image::erode3x3(binary, arena));
      EXPECT_TRUE(image::upscale_bilinear(gray, 4) ==
                  image::upscale_bilinear(gray, 4, arena));
    }
  }
}

TEST_F(SimdTest, NormalizeGlyphFloatSpanMatchesDoubleVector) {
  for (std::uint32_t seed : {61u, 62u}) {
    const image::GrayImage binary = random_binary_image(40, 30, seed);
    const image::Rect bounds{3, 2, 33, 25};
    constexpr int kSize = 16;
    const auto ref = image::normalize_glyph(binary, bounds, kSize);
    float buf[kSize * kSize];
    image::normalize_glyph(binary, bounds, kSize, buf);
    ASSERT_EQ(ref.size(), static_cast<std::size_t>(kSize * kSize));
    for (std::size_t i = 0; i < ref.size(); ++i) {
      // Densities are small-denominator rationals; float holds them to
      // within one ulp of the double version.
      EXPECT_NEAR(ref[i], static_cast<double>(buf[i]), 1e-6) << "cell " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: preprocessing and extraction must not depend on the dispatch.
// ---------------------------------------------------------------------------

image::GrayImage render_thumbnail(const ocr::GameUiSpec& spec, int latency,
                                  util::Rng& rng) {
  image::GrayImage thumb(ocr::kThumbnailWidth, ocr::kThumbnailHeight, 40);
  image::TextStyle style;
  style.scale = spec.text_scale;
  style.foreground = 230;
  style.background = 25;
  thumb.fill_rect(spec.latency_region, 25);
  const std::string text = spec.prefix + std::to_string(latency) + spec.suffix;
  image::draw_text(thumb, spec.latency_region.x + 2,
                   spec.latency_region.y + 3, text, style);
  image::add_noise(thumb, 5.0, rng);
  return thumb;
}

TEST_F(SimdTest, PreprocessBitIdentical) {
  util::Rng rng(77);
  const auto& spec = ocr::all_ui_specs().front();
  for (int latency : {9, 48, 150}) {
    const auto thumb = render_thumbnail(spec, latency, rng);
    const auto crop = thumb.crop(spec.latency_region);
    simd::set_enabled(true);
    const auto full_fast = ocr::preprocess(crop, {});
    const auto min_fast = ocr::preprocess_minimal(crop);
    simd::set_enabled(false);
    const auto full_slow = ocr::preprocess(crop, {});
    const auto min_slow = ocr::preprocess_minimal(crop);
    EXPECT_TRUE(full_fast == full_slow) << "latency " << latency;
    EXPECT_TRUE(min_fast == min_slow) << "latency " << latency;
  }
}

TEST_F(SimdTest, ExtractionBitIdenticalAcrossDispatch) {
  util::Rng rng(99);
  const ocr::LatencyExtractor extractor;
  for (const auto& spec : ocr::all_ui_specs()) {
    for (int latency : {7, 63, 248}) {
      const auto thumb = render_thumbnail(spec, latency, rng);
      simd::set_enabled(true);
      const auto fast = extractor.extract(thumb, spec);
      simd::set_enabled(false);
      const auto slow = extractor.extract(thumb, spec);
      EXPECT_EQ(fast.primary, slow.primary) << spec.game << " " << latency;
      EXPECT_EQ(fast.alternative, slow.alternative) << spec.game;
      EXPECT_EQ(fast.ambiguous, slow.ambiguous) << spec.game;
      EXPECT_EQ(fast.reprocessed, slow.reprocessed) << spec.game;
    }
  }
}

// ---------------------------------------------------------------------------
// Arena semantics.
// ---------------------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAligned) {
  image::Arena arena(1024);
  for (std::size_t bytes : {1u, 3u, 17u, 1000u, 5000u}) {
    const auto* p = arena.allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % image::Arena::kAlignment,
              0u)
        << bytes;
  }
}

TEST(ArenaTest, FrameRewindReusesMemory) {
  image::Arena arena(4096);
  std::uint8_t* first = nullptr;
  {
    image::Arena::Frame frame(arena);
    first = arena.allocate(100);
    arena.allocate(200);
  }
  const std::size_t used_after_frame = arena.used();
  std::uint8_t* again = nullptr;
  {
    image::Arena::Frame frame(arena);
    again = arena.allocate(100);
  }
  // Same bump position — the frame released everything it allocated and the
  // block was retained, so the next frame reuses the identical bytes.
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.used(), used_after_frame);
}

TEST(ArenaTest, GrowsAcrossBlocksAndRewinds) {
  image::Arena arena(256);
  const std::size_t base_used = arena.used();
  {
    image::Arena::Frame frame(arena);
    for (int i = 0; i < 50; ++i) arena.allocate(100);
    EXPECT_GT(arena.block_count(), 1u);
    EXPECT_GE(arena.used(), 50u * 100u);
  }
  EXPECT_EQ(arena.used(), base_used);
  EXPECT_GE(arena.high_water(), 50u * 100u);
  // Oversized request: still served (dedicated block), still aligned.
  const auto* big = arena.allocate(10 * 1024);
  EXPECT_NE(big, nullptr);
}

TEST(ArenaTest, NestedFramesUnwindInOrder) {
  image::Arena arena(4096);
  image::Arena::Frame outer(arena);
  arena.allocate(64);
  const std::size_t outer_used = arena.used();
  {
    image::Arena::Frame inner(arena);
    arena.allocate(512);
    EXPECT_GT(arena.used(), outer_used);
  }
  EXPECT_EQ(arena.used(), outer_used);
}

TEST(ArenaTest, ArenaImageCopiesDetachToHeap) {
  image::Arena arena;
  image::GrayImage escaped;
  {
    image::Arena::Frame frame(arena);
    image::GrayImage scratch(arena, 24, 10, 7);
    scratch.set(3, 4, 200);
    escaped = scratch;  // copy assignment must deep-copy off the arena
  }
  // Frame rewound; a second frame scribbles over the same arena bytes.
  {
    image::Arena::Frame frame(arena);
    image::GrayImage scribble(arena, 24, 10, 255);
    (void)scribble;
  }
  EXPECT_EQ(escaped.at(3, 4), 200);
  EXPECT_EQ(escaped.at(0, 0), 7);
}

TEST(ArenaTest, ThreadLocalArenaIsStable) {
  image::Arena& a = image::Arena::thread_local_arena();
  image::Arena& b = image::Arena::thread_local_arena();
  EXPECT_EQ(&a, &b);
}

TEST(GrayImageTest, RowAccessorMatchesAt) {
  const image::GrayImage img = random_image(33, 9, 71);
  for (int y = 0; y < img.height(); ++y) {
    const std::uint8_t* r = img.row(y);
    for (int x = 0; x < img.width(); ++x) {
      ASSERT_EQ(r[x], img.at(x, y)) << x << "," << y;
    }
  }
}

}  // namespace
}  // namespace tero
