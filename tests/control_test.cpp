#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/sweep.hpp"
#include "obs/metrics.hpp"
#include "serve/brownout.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "stats/descriptive.hpp"
#include "util/thread_pool.hpp"

namespace tero::control {
namespace {

serve::SnapshotEntry make_entry(const std::string& country,
                                const std::string& game,
                                std::vector<double> values) {
  serve::SnapshotEntry entry;
  entry.location.country = country;
  entry.game = game;
  std::sort(values.begin(), values.end());
  entry.sorted_values = std::move(values);
  entry.samples = entry.sorted_values.size();
  entry.mean_ms = stats::mean(entry.sorted_values);
  entry.box = stats::boxplot(entry.sorted_values);
  entry.key = serve::entry_key(entry.location, entry.game);
  entry.streamers = 3;
  return entry;
}

std::vector<serve::SnapshotEntry> sweep_entries() {
  std::vector<serve::SnapshotEntry> entries;
  const char* countries[] = {"DE", "FR", "BR", "US", "JP", "KR", "GB", "PL"};
  const char* games[] = {"lol", "cs2", "valorant"};
  double base = 20.0;
  for (const char* country : countries) {
    for (const char* game : games) {
      entries.push_back(make_entry(
          country, game,
          {base, base + 3, base + 7, base + 12, base + 20, base + 45}));
      base += 1.5;
    }
  }
  return entries;
}

/// Small-but-real sweep cell: ~2 virtual seconds at a few hundred qps.
SweepConfig tiny_sweep(Policy policy, double multiplier,
                       std::uint64_t seed = 7) {
  SweepConfig config;
  config.seed = seed;
  config.duration_s = 2.5;
  config.load_multiplier = multiplier;
  config.publish_every_s = 0.5;
  config.controller.policy = policy;
  config.controller.shard_unit_qps = 400.0;
  config.controller.min_shards = 2;
  config.controller.initial_shards = 2;
  config.controller.max_shards = 4;
  config.controller.base_channel_capacity = 1024;
  config.controller.min_channel_capacity = 64;
  return config;
}

Signals hot_signals(std::uint64_t t_ms) {
  Signals signals;
  signals.t_ms = t_ms;
  signals.offered_qps = 4000.0;
  signals.shed_fraction = 0.2;
  signals.queue_delay_s = 1.0;
  signals.burn_fast = 5.0;
  signals.burn_slow = 3.0;
  signals.slo_firing = true;
  return signals;
}

Signals calm_signals(std::uint64_t t_ms) {
  Signals signals;
  signals.t_ms = t_ms;
  signals.offered_qps = 100.0;
  return signals;
}

TEST(Brownout, LevelZeroIsIdentity) {
  serve::Query query;
  query.kind = serve::QueryKind::kTopK;
  query.param = 97.0;
  const serve::BrownoutAction action =
      serve::apply_brownout(query, serve::BrownoutLevel::kFull);
  EXPECT_FALSE(action.refuse);
  EXPECT_FALSE(action.prefer_stale);
  EXPECT_DOUBLE_EQ(action.query.param, 97.0);
  EXPECT_DOUBLE_EQ(action.cost,
                   serve::query_kind_cost(serve::QueryKind::kTopK));
}

TEST(Brownout, LadderDisablesKindsInCostOrder) {
  serve::Query ecdf;
  ecdf.kind = serve::QueryKind::kEcdf;
  serve::Query topk;
  topk.kind = serve::QueryKind::kTopK;
  serve::Query percentile;
  percentile.kind = serve::QueryKind::kPercentile;

  // kCachedOnly cuts the expensive scan kinds, keeps point lookups.
  EXPECT_TRUE(
      serve::apply_brownout(ecdf, serve::BrownoutLevel::kCachedOnly).refuse);
  EXPECT_FALSE(
      serve::apply_brownout(topk, serve::BrownoutLevel::kCachedOnly).refuse);
  // kCoarsePercentile also drops top-k; percentiles survive, coarsened.
  EXPECT_TRUE(
      serve::apply_brownout(topk, serve::BrownoutLevel::kCoarsePercentile)
          .refuse);
  EXPECT_FALSE(
      serve::apply_brownout(percentile,
                            serve::BrownoutLevel::kCoarsePercentile)
          .refuse);
  // Even the last rung still answers plain percentiles.
  EXPECT_FALSE(
      serve::apply_brownout(percentile, serve::BrownoutLevel::kShed).refuse);
}

TEST(Brownout, CoarsensPercentileParam) {
  serve::Query query;
  query.kind = serve::QueryKind::kPercentile;
  query.param = 97.0;
  const serve::BrownoutAction action =
      serve::apply_brownout(query, serve::BrownoutLevel::kCoarsePercentile);
  EXPECT_FALSE(action.refuse);
  EXPECT_DOUBLE_EQ(action.query.param, 99.0);  // nearest of {50, 90, 99}
  serve::Query median = query;
  median.param = 60.0;
  EXPECT_DOUBLE_EQ(
      serve::apply_brownout(median, serve::BrownoutLevel::kCoarsePercentile)
          .query.param,
      50.0);
}

TEST(Brownout, StaleTolerantPrefersStaleAndCostsFall) {
  serve::Query query;
  query.kind = serve::QueryKind::kMean;
  double last_cost = serve::query_kind_cost(serve::QueryKind::kMean) + 1.0;
  for (int level = 0; level < serve::kBrownoutLevels; ++level) {
    const serve::BrownoutAction action =
        serve::apply_brownout(query, serve::brownout_level(level));
    EXPECT_FALSE(action.refuse) << "mean must survive every rung";
    EXPECT_LE(action.cost, last_cost)
        << "cost must be monotone non-increasing down the ladder";
    last_cost = action.cost;
    EXPECT_EQ(action.prefer_stale,
              level >= static_cast<int>(serve::BrownoutLevel::kStaleTolerant));
  }
}

TEST(Policy, ParseRoundTrip) {
  for (const Policy policy :
       {Policy::kStatic, Policy::kReactive, Policy::kPredictive}) {
    EXPECT_EQ(parse_policy(to_string(policy)), policy);
  }
  EXPECT_THROW((void)parse_policy("pid"), std::invalid_argument);
}

TEST(Controller, StaticPolicyNeverMoves) {
  ControllerConfig config;
  config.policy = Policy::kStatic;
  Controller controller(config);
  const double rate = controller.admission_rate();
  for (std::uint64_t t = 0; t < 20; ++t) {
    const Decision& decision = controller.tick(hot_signals(t * 100));
    EXPECT_EQ(decision.action, "hold");
    EXPECT_FALSE(decision.changed);
  }
  EXPECT_EQ(controller.brownout(), serve::BrownoutLevel::kFull);
  EXPECT_DOUBLE_EQ(controller.admission_rate(), rate);
  EXPECT_EQ(controller.shards(), config.initial_shards);
}

TEST(Controller, ReactiveClimbsLadderBeforeCuttingAdmission) {
  ControllerConfig config;
  config.policy = Policy::kReactive;
  Controller controller(config);
  const double initial_rate = controller.admission_rate();

  std::vector<std::string> actions;
  for (std::uint64_t t = 0; t < 4; ++t) {
    actions.push_back(controller.tick(hot_signals(t * 100)).action);
  }
  // The first escalations are all ladder rungs — brownout before shedding —
  // and each rung *raises* the admission rate (cheaper queries => more
  // admitted), so overload never begins by shedding harder.
  EXPECT_EQ(actions.front(), "ladder-up");
  for (const std::string& action : actions) EXPECT_EQ(action, "ladder-up");
  EXPECT_EQ(controller.brownout(), serve::BrownoutLevel::kShed);
  EXPECT_GT(controller.admission_rate(), initial_rate);
}

TEST(Controller, NeverScalesOutWithAnOpenBreaker) {
  ControllerConfig config;
  config.policy = Policy::kReactive;
  Controller controller(config);
  // Exhaust the ladder first.
  for (int i = 0; i < serve::kBrownoutLevels - 1; ++i) {
    (void)controller.tick(hot_signals(i * 100));
  }
  ASSERT_EQ(controller.brownout(), serve::BrownoutLevel::kShed);
  const std::size_t shards_before = controller.shards();

  // Queue pressure would normally trigger scale-out, but a breaker is open:
  // adding capacity to a fleet with a known-bad shard is forbidden.
  for (std::uint64_t t = 10; t < 20; ++t) {
    Signals signals = hot_signals(t * 100);
    signals.breakers_open = 1;
    const Decision& decision = controller.tick(signals);
    EXPECT_NE(decision.action, "scale-out");
  }
  EXPECT_EQ(controller.shards(), shards_before);

  // Same pressure with every breaker closed does scale out.
  Signals healthy = hot_signals(2100);
  const Decision& decision = controller.tick(healthy);
  EXPECT_EQ(decision.action, "scale-out");
  EXPECT_EQ(controller.shards(), shards_before + 1);
}

TEST(Controller, PredictiveEscalatesOnSlopeAlone) {
  ControllerConfig config;
  config.policy = Policy::kPredictive;
  Controller controller(config);
  // Offered load ramps toward capacity but no reactive trigger has fired
  // yet: no sheds, no burn, empty queue.
  bool predicted = false;
  for (std::uint64_t t = 0; t < 12; ++t) {
    Signals signals;
    signals.t_ms = t * 100;
    signals.offered_qps = 1000.0 + 400.0 * static_cast<double>(t);
    const Decision& decision = controller.tick(signals);
    if (decision.reason == "predict") {
      predicted = true;
      EXPECT_EQ(decision.action, "ladder-up");
      break;
    }
  }
  EXPECT_TRUE(predicted) << "slope extrapolation never pre-escalated";

  // The reactive policy holds flat on the identical signal sequence.
  ControllerConfig reactive = config;
  reactive.policy = Policy::kReactive;
  Controller baseline(reactive);
  for (std::uint64_t t = 0; t < 12; ++t) {
    Signals signals;
    signals.t_ms = t * 100;
    signals.offered_qps = 1000.0 + 400.0 * static_cast<double>(t);
    EXPECT_EQ(baseline.tick(signals).action, "hold");
  }
}

TEST(Controller, CalmHoldUnwindsTheLadder) {
  ControllerConfig config;
  config.policy = Policy::kReactive;
  config.hold_ticks = 3;
  Controller controller(config);
  for (int i = 0; i < 2; ++i) (void)controller.tick(hot_signals(i * 100));
  ASSERT_EQ(controller.brownout(), serve::BrownoutLevel::kCoarsePercentile);

  // Recovery needs a *sustained* calm hold per step, not one quiet tick.
  std::uint64_t t = 200;
  (void)controller.tick(calm_signals(t += 100));
  EXPECT_EQ(controller.brownout(), serve::BrownoutLevel::kCoarsePercentile);
  for (int i = 0; i < 12; ++i) (void)controller.tick(calm_signals(t += 100));
  EXPECT_EQ(controller.brownout(), serve::BrownoutLevel::kFull);
}

TEST(Controller, DecisionLogIsDeterministic) {
  ControllerConfig config;
  config.policy = Policy::kReactive;
  Controller a(config);
  Controller b(config);
  for (std::uint64_t t = 0; t < 30; ++t) {
    const Signals signals =
        (t % 7 < 4) ? hot_signals(t * 100) : calm_signals(t * 100);
    (void)a.tick(signals);
    (void)b.tick(signals);
  }
  EXPECT_FALSE(a.log_text().empty());
  EXPECT_EQ(a.log_text(), b.log_text());
  EXPECT_EQ(a.log_digest(), b.log_digest());
}

TEST(Sweep, BitIdenticalAcrossThreadCounts) {
  util::ThreadPool pool(8);
  for (const std::uint64_t seed : {3ULL, 11ULL}) {
    const SweepConfig config = tiny_sweep(Policy::kReactive, 4.0, seed);
    const SweepReport serial = run_control_sweep(sweep_entries(), config,
                                                 nullptr);
    const SweepReport threaded = run_control_sweep(sweep_entries(), config,
                                                   &pool);
    EXPECT_EQ(serial.decision_log, threaded.decision_log) << "seed " << seed;
    EXPECT_EQ(serial.decision_digest, threaded.decision_digest);
    EXPECT_EQ(serial.checksum, threaded.checksum);
    EXPECT_EQ(serial.shed, threaded.shed);
    EXPECT_EQ(serial.brownout, threaded.brownout);
    EXPECT_EQ(serial.stale, threaded.stale);
  }
}

TEST(Sweep, SeedsProduceDistinctButReproducibleRuns) {
  const SweepReport a1 =
      run_control_sweep(sweep_entries(), tiny_sweep(Policy::kReactive, 2.0, 5),
                        nullptr);
  const SweepReport a2 =
      run_control_sweep(sweep_entries(), tiny_sweep(Policy::kReactive, 2.0, 5),
                        nullptr);
  const SweepReport b =
      run_control_sweep(sweep_entries(), tiny_sweep(Policy::kReactive, 2.0, 6),
                        nullptr);
  EXPECT_EQ(a1.checksum, a2.checksum);
  EXPECT_EQ(a1.decision_digest, a2.decision_digest);
  EXPECT_NE(a1.checksum, b.checksum);
}

TEST(Sweep, ReactiveShedsLessThanStaticAtFourX) {
  const SweepReport stat = run_control_sweep(
      sweep_entries(), tiny_sweep(Policy::kStatic, 4.0), nullptr);
  const SweepReport reactive = run_control_sweep(
      sweep_entries(), tiny_sweep(Policy::kReactive, 4.0), nullptr);
  ASSERT_GT(stat.shed_fraction, 0.2)
      << "static baseline must be visibly overloaded at 4x";
  EXPECT_LT(reactive.shed_fraction, stat.shed_fraction);
  EXPECT_GT(reactive.max_level, 0) << "the ladder never engaged";
}

TEST(Sweep, LadderEngagesBeforeShedding) {
  const SweepReport reactive = run_control_sweep(
      sweep_entries(), tiny_sweep(Policy::kReactive, 4.0), nullptr);
  ASSERT_GT(reactive.first_ladder_ms, 0u);
  EXPECT_TRUE(reactive.ladder_engaged_before_shed);
  if (reactive.first_shed_ms != 0) {
    EXPECT_LE(reactive.first_ladder_ms, reactive.first_shed_ms);
  }
  // The static policy has no ladder at all.
  const SweepReport stat = run_control_sweep(
      sweep_entries(), tiny_sweep(Policy::kStatic, 4.0), nullptr);
  EXPECT_EQ(stat.first_ladder_ms, 0u);
  EXPECT_FALSE(stat.ladder_engaged_before_shed);
}

TEST(Sweep, UnderloadedHealthyCellStaysAtFullFidelity) {
  // No chaos, no background tsdb refusals: a 0.1x cell never escalates.
  // (With chaos on, even an underloaded controller is *supposed* to brown
  // out — tsdb refusals breach the latency SLO; see ChaosWindowsLeaveTheirMark.)
  SweepConfig config = tiny_sweep(Policy::kReactive, 0.1);
  config.windows.clear();
  config.fault_plan = "serve.shard*=error@0.02";
  const SweepReport report =
      run_control_sweep(sweep_entries(), config, nullptr);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.max_level, 0);
  EXPECT_EQ(report.unavailable, 0u);
  EXPECT_GT(report.ok, 0u);
}

TEST(DeniedCounters, UnifiedFamilyMovesWithLegacyAliases) {
  obs::MetricsRegistry registry;
  serve::ServeConfig config;
  config.shards = 2;
  config.metrics = &registry;
  config.admission_rate_qps = 1.0;
  config.admission_burst = 1.0;
  serve::QueryService service(config);
  (void)service.publish(sweep_entries());

  serve::Query query;
  query.kind = serve::QueryKind::kPercentile;
  query.location.country = "DE";
  query.game = "lol";

  // Burn the single token, then shed twice: legacy tero.serve.shed and
  // denied{reason=shed} tick together.
  (void)service.query(query, 0.0);
  (void)service.query(query, 0.0);
  (void)service.query(query, 0.0);
  const std::uint64_t legacy_shed =
      registry.counter("tero.serve.shed").value();
  const std::uint64_t denied_shed =
      registry
          .counter(obs::MetricsRegistry::labeled("tero.serve.denied",
                                                 {{"reason", "shed"}}))
          .value();
  EXPECT_GT(denied_shed, 0u);
  EXPECT_EQ(denied_shed, legacy_shed);

  // Brownout refusals land in the same family under their own label.
  service.set_admission_rate(1.0, 0.0);
  service.set_brownout(serve::BrownoutLevel::kCachedOnly);
  serve::Query ecdf = query;
  ecdf.kind = serve::QueryKind::kEcdf;
  const serve::QueryResponse refused = service.query(ecdf, 1.0);
  EXPECT_EQ(refused.status, serve::QueryStatus::kBrownout);
  EXPECT_EQ(registry
                .counter(obs::MetricsRegistry::labeled(
                    "tero.serve.denied", {{"reason", "brownout"}}))
                .value(),
            1u);
}

TEST(Sweep, ChaosWindowsLeaveTheirMark) {
  // At 1x with the standard chaos plan the run should see degraded reads
  // (shard kill + repl delay -> stale) and tsdb refusals (unavailable),
  // while mostly still answering.
  SweepConfig config = tiny_sweep(Policy::kReactive, 1.0);
  const SweepReport report =
      run_control_sweep(sweep_entries(), config, nullptr);
  EXPECT_GT(report.stale, 0u);
  EXPECT_GT(report.unavailable, 0u);
  EXPECT_GT(static_cast<double>(report.ok) /
                static_cast<double>(report.issued),
            0.5);
}

}  // namespace
}  // namespace tero::control
