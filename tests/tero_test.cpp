#include <gtest/gtest.h>

#include "tero/channel.hpp"
#include "analysis/outlier_rejection.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tero/export.hpp"
#include "tero/pipeline.hpp"
#include "tero/realtime.hpp"
#include <set>
#include <sstream>

namespace tero::core {
namespace {

synth::TruePoint point_at(double t, int latency) {
  synth::TruePoint point;
  point.t = t;
  point.latency_ms = latency;
  return point;
}

TEST(Channel, DigitDropShortens) {
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const int dropped = drop_leading_digits(245, rng);
    EXPECT_TRUE(dropped == 45 || dropped == 5) << dropped;
  }
  EXPECT_EQ(drop_leading_digits(7, rng), 0);
}

TEST(Channel, ConfusionChangesOneDigit) {
  util::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const int confused = confuse_digit(42, rng);
    EXPECT_NE(confused, 42);
    EXPECT_GE(confused, 1);
    EXPECT_LE(confused, 99);
  }
}

TEST(NoiseChannel, RatesApproximatelyHonored) {
  NoiseChannelConfig config;
  auto channel = make_noise_channel(config);
  util::Rng rng(3);
  const auto& spec = ocr::ui_spec_for("League of Legends");
  int missed = 0;
  int wrong = 0;
  int total = 20000;
  for (int i = 0; i < total; ++i) {
    const auto m = channel->extract(point_at(i * 300.0, 87), spec, rng);
    if (!m.has_value()) {
      ++missed;
    } else if (m->latency_ms != 87) {
      ++wrong;
    }
  }
  EXPECT_NEAR(missed / static_cast<double>(total), config.miss_rate, 0.02);
  const double error_rate =
      wrong / static_cast<double>(total - missed);
  EXPECT_NEAR(error_rate, config.error_rate, 0.01);
}

TEST(NoiseChannel, AlternativesOftenCorrectOnError) {
  NoiseChannelConfig config;
  config.miss_rate = 0.0;
  config.error_rate = 1.0;  // force errors
  auto channel = make_noise_channel(config);
  util::Rng rng(4);
  const auto& spec = ocr::ui_spec_for("League of Legends");
  int with_correct_alt = 0;
  int extracted = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto m = channel->extract(point_at(i * 300.0, 87), spec, rng);
    if (!m.has_value()) continue;
    ++extracted;
    if (m->alternative_ms == 87) ++with_correct_alt;
  }
  ASSERT_GT(extracted, 1000);
  EXPECT_NEAR(with_correct_alt / static_cast<double>(extracted),
              config.p_alt_correct_on_error, 0.05);
}

TEST(OcrChannel, ExtractsCleanPoints) {
  synth::ThumbnailConfig thumbnails;
  thumbnails.p_occlusion = 0.0;
  thumbnails.p_low_contrast = 0.0;
  thumbnails.p_clock = 0.0;
  thumbnails.p_heavy_noise = 0.0;
  thumbnails.p_compression = 0.0;
  auto channel = make_ocr_channel(thumbnails);
  util::Rng rng(5);
  const auto& spec = ocr::ui_spec_for("League of Legends");
  int correct = 0;
  for (int i = 0; i < 20; ++i) {
    const int truth = static_cast<int>(rng.uniform_int(10, 250));
    const auto m = channel->extract(point_at(i * 300.0, truth), spec, rng);
    if (m.has_value() && m->latency_ms == truth) ++correct;
  }
  EXPECT_GE(correct, 18);
}

TEST(TruncateLocation, Granularities) {
  const geo::Location full{"Paris", "Ile-de-France", "France"};
  EXPECT_EQ(truncate_location(full, geo::Granularity::kCountry),
            (geo::Location{"", "", "France"}));
  EXPECT_EQ(truncate_location(full, geo::Granularity::kRegion),
            (geo::Location{"", "Ile-de-France", "France"}));
  EXPECT_EQ(truncate_location(full, geo::Granularity::kCity), full);
}

class PipelineTest : public ::testing::Test {
 protected:
  static synth::WorldConfig locatable_world(std::size_t per_focus = 30) {
    synth::WorldConfig config;
    config.seed = 77;
    // Everybody locatable: the figures need dense located populations.
    config.p_twitter = 1.0;
    config.p_twitter_backlink = 1.0;
    config.p_twitter_location = 1.0;
    config.games = {"League of Legends"};
    config.focus_locations = {
        geo::Location{"", "Illinois", "United States"},
        geo::Location{"", "", "Poland"},
    };
    config.streamers_per_focus = per_focus;
    return config;
  }

  static TeroConfig fast_config() {
    TeroConfig config;
    config.p_latency_visible = 1.0;  // dense series for the analysis
    config.use_full_ocr = false;
    config.aggregate_granularity = geo::Granularity::kRegion;
    return config;
  }
};

TEST_F(PipelineTest, EndToEndProducesAggregates) {
  const synth::World world(locatable_world());
  synth::BehaviorConfig behavior;
  behavior.days = 6;
  synth::SessionGenerator generator(world, behavior, 7);
  const auto streams = generator.generate();
  ASSERT_FALSE(streams.empty());

  Pipeline pipeline(fast_config());
  const Dataset dataset = pipeline.run(world, streams);

  EXPECT_EQ(dataset.funnel.streamers_total, 60u);
  EXPECT_GT(dataset.funnel.streamers_located, 50u);  // near-universal
  EXPECT_GT(dataset.funnel.ocr_ok, 1000u);
  EXPECT_GT(dataset.funnel.retained, 500u);
  EXPECT_FALSE(dataset.entries.empty());
  EXPECT_FALSE(dataset.aggregates.empty());

  const auto* illinois = dataset.find_aggregate(
      geo::Location{"", "Illinois", "United States"}, "League of Legends");
  ASSERT_NE(illinois, nullptr);
  ASSERT_TRUE(illinois->box.has_value());
  EXPECT_EQ(illinois->server_city, "Chicago");
  EXPECT_GT(illinois->streamers, 10u);
  EXPECT_GT(illinois->avg_corrected_distance_km, 0.0);

  const auto* poland = dataset.find_aggregate(geo::Location{"", "", "Poland"},
                                              "League of Legends");
  ASSERT_NE(poland, nullptr);
  ASSERT_TRUE(poland->box.has_value());
  // Poland's last-mile penalty shows up against Illinois despite both being
  // "close" to their servers.
  EXPECT_GT(poland->box->p50, illinois->box->p50);
  // Boxplots are ordered.
  EXPECT_LE(illinois->box->p5, illinois->box->p25);
  EXPECT_LE(illinois->box->p25, illinois->box->p50);
  EXPECT_LE(illinois->box->p50, illinois->box->p75);
  EXPECT_LE(illinois->box->p75, illinois->box->p95);
}

TEST_F(PipelineTest, LocationErrorsAreRare) {
  const synth::World world(locatable_world(50));
  synth::BehaviorConfig behavior;
  behavior.days = 3;
  synth::SessionGenerator generator(world, behavior, 9);
  const auto streams = generator.generate();
  Pipeline pipeline(fast_config());
  const Dataset dataset = pipeline.run(world, streams);
  std::size_t wrong = 0;
  for (const auto& entry : dataset.entries) {
    if (!entry.location.compatible_with(entry.true_location)) ++wrong;
  }
  ASSERT_FALSE(dataset.entries.empty());
  // Underlying-tool errors + deliberate liars stay in the low percent range
  // (§4.2.1: 1.46%, plus our p_false_location).
  EXPECT_LT(static_cast<double>(wrong) / dataset.entries.size(), 0.10);
}

TEST_F(PipelineTest, AggregateGranularitySwitch) {
  const synth::World world(locatable_world());
  synth::BehaviorConfig behavior;
  behavior.days = 4;
  synth::SessionGenerator generator(world, behavior, 10);
  const auto streams = generator.generate();
  Pipeline pipeline(fast_config());
  Dataset dataset = pipeline.run(world, streams);
  const auto country_aggregates = aggregate_entries(
      dataset.entries, TeroConfig{}.analysis, geo::Granularity::kCountry);
  bool found_us = false;
  for (const auto& aggregate : country_aggregates) {
    EXPECT_TRUE(aggregate.location.region.empty());
    if (aggregate.location.country == "United States") found_us = true;
  }
  EXPECT_TRUE(found_us);
}

}  // namespace
}  // namespace tero::core

namespace channel_tests {
using namespace tero;
using namespace tero::core;

TEST(Pipeline, VisibilityGatesExtraction) {
  synth::WorldConfig world_config;
  world_config.focus_locations = {geo::Location{"", "", "Germany"}};
  world_config.streamers_per_focus = 30;
  world_config.games = {"League of Legends"};
  world_config.p_twitter = 1.0;
  world_config.p_twitter_backlink = 1.0;
  world_config.p_twitter_location = 1.0;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = 4;
  synth::SessionGenerator generator(world, behavior, 8);
  const auto streams = generator.generate();

  TeroConfig config;
  config.p_latency_visible = 0.35;  // the paper's measured rate
  config.noise.miss_rate = 0.0;
  Pipeline pipeline(config);
  const Dataset dataset = pipeline.run(world, streams);
  ASSERT_GT(dataset.funnel.thumbnails, 500u);
  const double extraction_rate =
      static_cast<double>(dataset.funnel.ocr_ok) /
      static_cast<double>(dataset.funnel.thumbnails);
  EXPECT_NEAR(extraction_rate, 0.35, 0.05);
}

TEST(Channel, DoubleDropOnThreeDigits) {
  util::Rng rng(10);
  int doubles = 0;
  for (int i = 0; i < 1000; ++i) {
    if (drop_leading_digits(245, rng) == 5) ++doubles;
  }
  // A quarter of multi-digit drops lose two digits.
  EXPECT_NEAR(doubles / 1000.0, 0.25, 0.05);
}

TEST(Channel, ConfusionNeverReturnsNonPositive) {
  util::Rng rng(11);
  for (int value : {1, 9, 10, 99, 100, 999}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_GE(confuse_digit(value, rng), 1);
    }
  }
}

TEST(NoiseChannel, PreservesTimestamps) {
  auto channel = make_noise_channel(NoiseChannelConfig{.miss_rate = 0.0});
  util::Rng rng(12);
  synth::TruePoint point;
  point.t = 12345.5;
  point.latency_ms = 77;
  const auto m =
      channel->extract(point, ocr::ui_spec_for("League of Legends"), rng);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->time_s, 12345.5);
}

}  // namespace channel_tests

namespace export_tests {
using namespace tero;
using namespace tero::core;

Dataset tiny_dataset() {
  StreamerGameEntry entry;
  entry.pseudonym = "u0001";
  entry.game = "League of Legends";
  entry.location = geo::Location{"", "Illinois", "United States"};
  analysis::Stream stream;
  stream.streamer = entry.pseudonym;
  stream.game = entry.game;
  for (int i = 0; i < 8; ++i) {
    analysis::Measurement m;
    m.time_s = i * 300.0;
    m.latency_ms = 18 + (i % 3);
    stream.points.push_back(m);
  }
  entry.clean.retained.push_back(stream);
  entry.clean.points_retained = 8;
  Dataset dataset;
  dataset.entries.push_back(std::move(entry));

  LocationGameAggregate aggregate;
  aggregate.location = geo::Location{"", "Illinois", "United States"};
  aggregate.game = "League of Legends";
  aggregate.streamers = 1;
  aggregate.distribution = {18, 19, 20, 18, 19};
  aggregate.box = stats::boxplot(aggregate.distribution);
  aggregate.server_city = "Chicago";
  aggregate.avg_corrected_distance_km = 447;
  dataset.aggregates.push_back(std::move(aggregate));
  return dataset;
}

TEST(Export, MeasurementsRoundTrip) {
  const Dataset dataset = tiny_dataset();
  std::ostringstream out;
  const auto rows = export_measurements(dataset, out);
  EXPECT_EQ(rows, 8u);
  std::istringstream in(out.str());
  const auto streams = import_measurements(in);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].streamer, "u0001");
  EXPECT_EQ(streams[0].points.size(), 8u);
  EXPECT_EQ(streams[0].points[3].latency_ms, 18);
}

TEST(Export, ImportSplitsStreamsAtGaps) {
  std::string csv =
      "pseudonym,game,city,region,country,time_s,latency_ms\n"
      "u1,g,,R,C,0,40\n"
      "u1,g,,R,C,300,41\n"
      "u1,g,,R,C,90000,42\n";  // > 30 min gap -> new stream
  std::istringstream in(csv);
  const auto streams = import_measurements(in);
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0].points.size(), 2u);
  EXPECT_EQ(streams[1].points.size(), 1u);
}

TEST(Export, AggregatesWriteBoxplots) {
  const Dataset dataset = tiny_dataset();
  std::ostringstream out;
  const auto rows = export_aggregates(dataset, out);
  EXPECT_EQ(rows, 1u);
  EXPECT_NE(out.str().find("Chicago"), std::string::npos);
  EXPECT_NE(out.str().find("Illinois"), std::string::npos);
}

TEST(Export, CsvEscaping) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_unescape(csv_escape("a,b\"c")), "a,b\"c");
}

TEST(Export, ImportRejectsGarbage) {
  std::istringstream empty("");
  EXPECT_THROW(import_measurements(empty), std::invalid_argument);
  std::istringstream bad_header("nope\n");
  EXPECT_THROW(import_measurements(bad_header), std::invalid_argument);
  std::istringstream bad_row(
      "pseudonym,game,city,region,country,time_s,latency_ms\nu1,g,1\n");
  EXPECT_THROW(import_measurements(bad_row), std::invalid_argument);
}

TEST(Realtime, EmitsSpikeAfterFinalizeLag) {
  RealtimeAnalyzer::Config config;
  config.finalize_lag_s = 1800.0;
  RealtimeAnalyzer analyzer(config);
  const geo::Location loc{"", "Illinois", "United States"};
  analyzer.register_streamer("u1", loc);
  std::size_t spikes = 0;
  // Stable 45s, a 2-point spike at 120, then stable again for long enough
  // that the spike finalizes.
  std::vector<int> series(8, 45);
  series.push_back(120);
  series.push_back(122);
  for (int i = 0; i < 12; ++i) series.push_back(45);
  for (std::size_t i = 0; i < series.size(); ++i) {
    analysis::Measurement m;
    m.time_s = static_cast<double>(i) * 300.0;
    m.latency_ms = series[i];
    const auto out = analyzer.ingest("u1", "League of Legends", m);
    spikes += out.spikes.size();
  }
  EXPECT_EQ(spikes, 1u);
  EXPECT_EQ(analyzer.spikes_emitted(), 1u);
  EXPECT_EQ(analyzer.measurements_ingested(), series.size());
}

TEST(Realtime, MetricsCountAlertsAndFinalizeLag) {
  obs::MetricsRegistry registry;
  RealtimeAnalyzer::Config config;
  config.finalize_lag_s = 1800.0;
  config.metrics = &registry;
  RealtimeAnalyzer analyzer(config);
  const geo::Location loc{"", "Illinois", "United States"};
  analyzer.register_streamer("u1", loc);
  std::vector<int> series(8, 45);
  series.push_back(120);
  series.push_back(122);
  for (int i = 0; i < 12; ++i) series.push_back(45);
  for (std::size_t i = 0; i < series.size(); ++i) {
    analysis::Measurement m;
    m.time_s = static_cast<double>(i) * 300.0;
    m.latency_ms = series[i];
    analyzer.ingest("u1", "League of Legends", m);
  }
  EXPECT_EQ(registry.counter("tero.realtime.measurements").value(),
            series.size());
  EXPECT_EQ(registry.counter("tero.realtime.spike_alerts").value(), 1u);
  // The spike's finalize lag landed in the histogram exactly once.
  EXPECT_EQ(registry
                .histogram("tero.realtime.finalize_lag_s",
                           {60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0,
                            14400.0, 43200.0, 86400.0})
                .count(),
            1u);
}

TEST(Realtime, NoDuplicateSpikeAlerts) {
  RealtimeAnalyzer analyzer;
  const geo::Location loc{"", "", "Germany"};
  analyzer.register_streamer("u1", loc);
  std::size_t spikes = 0;
  std::vector<int> series(8, 30);
  series.push_back(110);
  for (int i = 0; i < 30; ++i) series.push_back(30);
  for (std::size_t i = 0; i < series.size(); ++i) {
    analysis::Measurement m;
    m.time_s = static_cast<double>(i) * 300.0;
    m.latency_ms = series[i];
    spikes += analyzer.ingest("u1", "Dota 2", m).spikes.size();
  }
  EXPECT_EQ(spikes, 1u);  // the same spike never re-alerts
}

TEST(Realtime, DistributionAccumulatesGraduatedPoints) {
  RealtimeAnalyzer::Config config;
  config.buffer_points = 10;
  RealtimeAnalyzer analyzer(config);
  const geo::Location loc{"", "", "France"};
  analyzer.register_streamer("u1", loc);
  for (int i = 0; i < 60; ++i) {
    analysis::Measurement m;
    m.time_s = i * 300.0;
    m.latency_ms = 25 + (i % 2);
    analyzer.ingest("u1", "League of Legends", m);
  }
  const auto values = analyzer.distribution(loc, "League of Legends");
  EXPECT_GT(values.size(), 30u);
  for (double v : values) {
    EXPECT_GE(v, 25.0);
    EXPECT_LE(v, 26.0);
  }
}

TEST(OutlierRejection, DropsInconsistentStreamer) {
  analysis::AnalysisConfig config;
  const std::vector<analysis::LatencyCluster> location_clusters = {
      {110, 130, 0.9, 45}, {20, 30, 0.05, 2}};
  const std::vector<analysis::LatencyCluster> consistent = {{112, 125, 1.0, 30}};
  const std::vector<analysis::LatencyCluster> outlier = {{18, 24, 1.0, 30}};
  EXPECT_TRUE(analysis::streamer_consistent_with_location(
      consistent, location_clusters, config));
  // The 5%-weight low cluster must not vouch for the outlier.
  EXPECT_FALSE(analysis::streamer_consistent_with_location(
      outlier, location_clusters, config));
  const auto outliers = analysis::find_location_outliers(
      {consistent, outlier}, location_clusters, config);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0], 1u);
}

TEST(OutlierRejection, EmptyLocationClustersVouchForEveryone) {
  analysis::AnalysisConfig config;
  const std::vector<analysis::LatencyCluster> streamer = {{18, 24, 1.0, 30}};
  EXPECT_TRUE(
      analysis::streamer_consistent_with_location(streamer, {}, config));
}

}  // namespace export_tests

namespace relocation_tests {
using namespace tero;
using namespace tero::core;

TEST(Pipeline, RelocatedStreamerYieldsTwoEndpoints) {
  // §3.1.1: a streamer who moves and advertises the new location becomes
  // two distinct {streamer, location} end-points.
  synth::WorldConfig world_config;
  world_config.seed = 31;
  world_config.games = {"League of Legends"};
  world_config.focus_locations = {geo::Location{"", "", "Germany"}};
  world_config.streamers_per_focus = 20;
  world_config.p_twitter = 1.0;
  world_config.p_twitter_backlink = 1.0;
  world_config.p_twitter_location = 1.0;
  world_config.p_false_location = 0.0;
  world_config.p_move = 0.5;  // force plenty of relocations
  world_config.move_day_min = 4;
  world_config.move_day_max = 5;
  const synth::World world(world_config);

  std::size_t relocated = 0;
  for (const auto& streamer : world.streamers()) {
    if (streamer.relocation.has_value()) ++relocated;
  }
  ASSERT_GT(relocated, 3u);

  synth::BehaviorConfig behavior;
  behavior.days = 10;
  synth::SessionGenerator generator(world, behavior, 32);
  const auto streams = generator.generate();

  TeroConfig config;
  config.p_latency_visible = 1.0;
  Pipeline pipeline(config);
  const Dataset dataset = pipeline.run(world, streams);

  // At least one pseudonym should appear with two different locations.
  std::map<std::string, std::set<std::string>> locations_per_pseudonym;
  for (const auto& entry : dataset.entries) {
    locations_per_pseudonym[entry.pseudonym].insert(
        entry.location.to_string());
  }
  std::size_t multi_location = 0;
  for (const auto& [pseudonym, locations] : locations_per_pseudonym) {
    if (locations.size() >= 2) ++multi_location;
  }
  EXPECT_GT(multi_location, 0u);

  // And the post-move entries' believed location matches the move's ground
  // truth for correctly-geoparsed profiles.
  std::size_t consistent_epochs = 0;
  for (const auto& entry : dataset.entries) {
    if (entry.location.compatible_with(entry.true_location)) {
      ++consistent_epochs;
    }
  }
  EXPECT_GT(static_cast<double>(consistent_epochs) / dataset.entries.size(),
            0.8);
}

}  // namespace relocation_tests

namespace determinism_tests {
using namespace tero;
using namespace tero::core;

// Bit-identical comparison of everything Pipeline::run produces. EXPECT_EQ
// on doubles is intentional throughout: the determinism contract is
// *bit-identical* output for any thread count, not merely close output.

void expect_same_measurement(const analysis::Measurement& a,
                             const analysis::Measurement& b) {
  EXPECT_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.alternative_ms, b.alternative_ms);
}

void expect_same_clean(const analysis::CleanResult& a,
                       const analysis::CleanResult& b) {
  ASSERT_EQ(a.retained.size(), b.retained.size());
  for (std::size_t s = 0; s < a.retained.size(); ++s) {
    EXPECT_EQ(a.retained[s].streamer, b.retained[s].streamer);
    EXPECT_EQ(a.retained[s].game, b.retained[s].game);
    ASSERT_EQ(a.retained[s].points.size(), b.retained[s].points.size());
    for (std::size_t p = 0; p < a.retained[s].points.size(); ++p) {
      expect_same_measurement(a.retained[s].points[p],
                              b.retained[s].points[p]);
    }
  }
  ASSERT_EQ(a.spikes.size(), b.spikes.size());
  for (std::size_t s = 0; s < a.spikes.size(); ++s) {
    EXPECT_EQ(a.spikes[s].start_s, b.spikes[s].start_s);
    EXPECT_EQ(a.spikes[s].end_s, b.spikes[s].end_s);
    EXPECT_EQ(a.spikes[s].peak_latency_ms, b.spikes[s].peak_latency_ms);
    EXPECT_EQ(a.spikes[s].baseline_ms, b.spikes[s].baseline_ms);
  }
  EXPECT_EQ(a.points_in, b.points_in);
  EXPECT_EQ(a.points_retained, b.points_retained);
  EXPECT_EQ(a.points_corrected, b.points_corrected);
  EXPECT_EQ(a.points_discarded, b.points_discarded);
  EXPECT_EQ(a.spike_points, b.spike_points);
  EXPECT_EQ(a.glitch_segments, b.glitch_segments);
  EXPECT_EQ(a.discarded_entirely, b.discarded_entirely);
}

void expect_same_clusters(const std::vector<analysis::LatencyCluster>& a,
                          const std::vector<analysis::LatencyCluster>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].min_ms, b[c].min_ms);
    EXPECT_EQ(a[c].max_ms, b[c].max_ms);
    EXPECT_EQ(a[c].weight, b[c].weight);
    EXPECT_EQ(a[c].point_count, b[c].point_count);
  }
}

void expect_same_dataset(const Dataset& a, const Dataset& b) {
  EXPECT_EQ(a.funnel.streamers_total, b.funnel.streamers_total);
  EXPECT_EQ(a.funnel.streamers_located, b.funnel.streamers_located);
  EXPECT_EQ(a.funnel.thumbnails, b.funnel.thumbnails);
  EXPECT_EQ(a.funnel.visible, b.funnel.visible);
  EXPECT_EQ(a.funnel.ocr_ok, b.funnel.ocr_ok);
  EXPECT_EQ(a.funnel.retained, b.funnel.retained);
  EXPECT_EQ(a.funnel.clustered, b.funnel.clustered);

  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const auto& ea = a.entries[i];
    const auto& eb = b.entries[i];
    EXPECT_EQ(ea.pseudonym, eb.pseudonym);
    EXPECT_EQ(ea.game, eb.game);
    EXPECT_EQ(ea.location, eb.location);
    EXPECT_EQ(ea.true_location, eb.true_location);
    EXPECT_EQ(ea.location_source, eb.location_source);
    expect_same_clean(ea.clean, eb.clean);
    expect_same_clusters(ea.clusters, eb.clusters);
    EXPECT_EQ(ea.is_static, eb.is_static);
    EXPECT_EQ(ea.high_quality, eb.high_quality);
    EXPECT_EQ(ea.location_outlier, eb.location_outlier);
    EXPECT_EQ(ea.possible_location_change, eb.possible_location_change);
    ASSERT_EQ(ea.endpoint_changes.size(), eb.endpoint_changes.size());
    for (std::size_t c = 0; c < ea.endpoint_changes.size(); ++c) {
      EXPECT_EQ(ea.endpoint_changes[c].time_s, eb.endpoint_changes[c].time_s);
      EXPECT_EQ(ea.endpoint_changes[c].same_stream,
                eb.endpoint_changes[c].same_stream);
      EXPECT_EQ(ea.endpoint_changes[c].from_cluster,
                eb.endpoint_changes[c].from_cluster);
      EXPECT_EQ(ea.endpoint_changes[c].to_cluster,
                eb.endpoint_changes[c].to_cluster);
    }
  }

  ASSERT_EQ(a.aggregates.size(), b.aggregates.size());
  for (std::size_t i = 0; i < a.aggregates.size(); ++i) {
    const auto& ga = a.aggregates[i];
    const auto& gb = b.aggregates[i];
    EXPECT_EQ(ga.location, gb.location);
    EXPECT_EQ(ga.game, gb.game);
    EXPECT_EQ(ga.streamers, gb.streamers);
    expect_same_clusters(ga.clusters, gb.clusters);
    EXPECT_EQ(ga.distribution, gb.distribution);
    ASSERT_EQ(ga.box.has_value(), gb.box.has_value());
    if (ga.box.has_value()) {
      EXPECT_EQ(ga.box->p5, gb.box->p5);
      EXPECT_EQ(ga.box->p25, gb.box->p25);
      EXPECT_EQ(ga.box->p50, gb.box->p50);
      EXPECT_EQ(ga.box->p75, gb.box->p75);
      EXPECT_EQ(ga.box->p95, gb.box->p95);
    }
    EXPECT_EQ(ga.avg_corrected_distance_km, gb.avg_corrected_distance_km);
    EXPECT_EQ(ga.server_city, gb.server_city);
    EXPECT_EQ(ga.shared.spike_probability, gb.shared.spike_probability);
    EXPECT_EQ(ga.shared.sufficient_data, gb.shared.sufficient_data);
    ASSERT_EQ(ga.shared.anomalies.size(), gb.shared.anomalies.size());
    for (std::size_t s = 0; s < ga.shared.anomalies.size(); ++s) {
      EXPECT_EQ(ga.shared.anomalies[s].start_s, gb.shared.anomalies[s].start_s);
      EXPECT_EQ(ga.shared.anomalies[s].end_s, gb.shared.anomalies[s].end_s);
      EXPECT_EQ(ga.shared.anomalies[s].streamers,
                gb.shared.anomalies[s].streamers);
      EXPECT_EQ(ga.shared.anomalies[s].probability,
                gb.shared.anomalies[s].probability);
    }
  }
}

TEST(Determinism, PipelineOutputIsBitIdenticalAcrossThreadCounts) {
  synth::WorldConfig world_config;
  world_config.seed = 77;
  world_config.p_twitter = 1.0;
  world_config.p_twitter_backlink = 1.0;
  world_config.p_twitter_location = 1.0;
  world_config.games = {"League of Legends", "Dota 2"};
  world_config.focus_locations = {
      geo::Location{"", "Illinois", "United States"},
      geo::Location{"", "", "Poland"},
  };
  world_config.streamers_per_focus = 25;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = 5;
  synth::SessionGenerator generator(world, behavior, 7);
  const auto streams = generator.generate();
  ASSERT_FALSE(streams.empty());

  auto run_with_threads = [&](std::size_t threads) {
    TeroConfig config;
    config.p_latency_visible = 1.0;
    config.seed = 4242;
    config.threads = threads;
    Pipeline pipeline(config);
    return pipeline.run(world, streams);
  };

  const Dataset serial = run_with_threads(1);
  const Dataset two = run_with_threads(2);
  const Dataset eight = run_with_threads(8);
  ASSERT_FALSE(serial.entries.empty());
  expect_same_dataset(serial, two);
  expect_same_dataset(serial, eight);
}

// The observability sinks are observational only (DESIGN.md §8): attaching a
// registry and a trace recorder must not change a single bit of the output,
// at any thread count.
TEST(Determinism, MetricsAndTraceDoNotChangeOutput) {
  synth::WorldConfig world_config;
  world_config.seed = 78;
  world_config.p_twitter = 1.0;
  world_config.p_twitter_backlink = 1.0;
  world_config.p_twitter_location = 1.0;
  world_config.games = {"League of Legends"};
  world_config.focus_locations = {
      geo::Location{"", "Illinois", "United States"},
      geo::Location{"", "", "Poland"},
  };
  world_config.streamers_per_focus = 20;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = 4;
  synth::SessionGenerator generator(world, behavior, 7);
  const auto streams = generator.generate();
  ASSERT_FALSE(streams.empty());

  auto run = [&](std::size_t threads, obs::MetricsRegistry* metrics,
                 obs::TraceRecorder* trace) {
    TeroConfig config;
    config.p_latency_visible = 1.0;
    config.seed = 4242;
    config.threads = threads;
    config.metrics = metrics;
    config.trace = trace;
    Pipeline pipeline(config);
    return pipeline.run(world, streams);
  };

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    obs::MetricsRegistry registry;
    obs::TraceRecorder recorder;
    const Dataset plain = run(threads, nullptr, nullptr);
    const Dataset observed = run(threads, &registry, &recorder);
    expect_same_dataset(plain, observed);

    // The registry holds the same funnel the dataset reports.
    EXPECT_EQ(registry.counter("tero.funnel.thumbnails").value(),
              observed.funnel.thumbnails);
    EXPECT_EQ(registry.counter("tero.funnel.retained").value(),
              observed.funnel.retained);
    EXPECT_GT(recorder.span_count(), 0u);
  }
}

TEST(Funnel, StagesAreMonotonicAndExportMatches) {
  synth::WorldConfig world_config;
  world_config.seed = 79;
  world_config.p_twitter = 1.0;
  world_config.p_twitter_backlink = 1.0;
  world_config.p_twitter_location = 1.0;
  world_config.games = {"League of Legends"};
  world_config.focus_locations = {geo::Location{"", "", "Germany"}};
  world_config.streamers_per_focus = 25;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = 4;
  synth::SessionGenerator generator(world, behavior, 6);
  const auto streams = generator.generate();

  TeroConfig config;
  config.p_latency_visible = 0.6;  // make thumbnails > visible strict
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  Pipeline pipeline(config);
  const Dataset dataset = pipeline.run(world, streams);

  const auto& funnel = dataset.funnel;
  EXPECT_GT(funnel.thumbnails, 0u);
  EXPECT_GE(funnel.thumbnails, funnel.visible);
  EXPECT_GE(funnel.visible, funnel.ocr_ok);
  EXPECT_GE(funnel.ocr_ok, funnel.retained);
  EXPECT_GE(funnel.streamers_total, funnel.streamers_located);

  // Export accounting rides on the same funnel: the measurement CSV has
  // exactly funnel.retained data rows.
  std::ostringstream out;
  const auto rows = export_measurements(dataset, out, &registry);
  EXPECT_EQ(rows, funnel.retained);
  EXPECT_EQ(registry.counter("tero.funnel.exported_measurements").value(),
            funnel.retained);

  // The metrics JSON carries the full funnel and the pool counters (zeros
  // when the pipeline ran serially, but always present).
  std::ostringstream json;
  registry.write_json(json);
  const auto parsed = obs::parse_json(json.str());
  const auto& counters = parsed.at("counters");
  for (const char* key :
       {"tero.funnel.thumbnails", "tero.funnel.visible",
        "tero.funnel.ocr_ok", "tero.funnel.retained",
        "tero.funnel.clustered", "tero.pool.tasks_run", "tero.pool.steals",
        "tero.pool.failed_steals", "tero.pool.parks"}) {
    EXPECT_TRUE(counters.contains(key)) << key;
  }
}

TEST(Determinism, AggregateEntriesIdenticalWithAndWithoutPool) {
  synth::WorldConfig world_config;
  world_config.seed = 91;
  world_config.p_twitter = 1.0;
  world_config.p_twitter_backlink = 1.0;
  world_config.p_twitter_location = 1.0;
  world_config.games = {"League of Legends"};
  world_config.focus_locations = {geo::Location{"", "", "Germany"},
                                  geo::Location{"", "", "Poland"}};
  world_config.streamers_per_focus = 20;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = 4;
  synth::SessionGenerator generator(world, behavior, 5);
  const auto streams = generator.generate();

  TeroConfig config;
  config.p_latency_visible = 1.0;
  config.threads = 1;
  Pipeline pipeline(config);
  Dataset base = pipeline.run(world, streams);
  auto entries_serial = base.entries;
  auto entries_pooled = base.entries;

  const auto serial = aggregate_entries(entries_serial, config.analysis,
                                        geo::Granularity::kCountry, true);
  util::ThreadPool pool(8);
  const auto pooled = aggregate_entries(entries_pooled, config.analysis,
                                        geo::Granularity::kCountry, true,
                                        &pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].location, pooled[i].location);
    EXPECT_EQ(serial[i].game, pooled[i].game);
    EXPECT_EQ(serial[i].streamers, pooled[i].streamers);
    EXPECT_EQ(serial[i].distribution, pooled[i].distribution);
  }
  // The per-entry mutations (outlier flags, endpoint changes) match too.
  ASSERT_EQ(entries_serial.size(), entries_pooled.size());
  for (std::size_t i = 0; i < entries_serial.size(); ++i) {
    EXPECT_EQ(entries_serial[i].location_outlier,
              entries_pooled[i].location_outlier);
    EXPECT_EQ(entries_serial[i].possible_location_change,
              entries_pooled[i].possible_location_change);
    EXPECT_EQ(entries_serial[i].endpoint_changes.size(),
              entries_pooled[i].endpoint_changes.size());
  }
}

}  // namespace determinism_tests
