#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/event_loop.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace tero::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, PoissonMean) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) sum += static_cast<double>(rng.poisson(4.0));
  EXPECT_NEAR(sum / 5000.0, 4.0, 0.15);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.pick_weighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(29);
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesThrowsWhenKTooLarge) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.fork();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Fnv1a, StableKnownValue) {
  const std::string empty;
  EXPECT_EQ(fnv1a64(std::span<const char>{empty.data(), 0}),
            0xcbf29ce484222325ULL);
}

TEST(Strings, ToLowerTrim) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\n"), "");
}

TEST(Strings, Split) {
  const auto pieces = split("a, b,,c", ", ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(Strings, IcontainsAndIequals) {
  EXPECT_TRUE(iequals("HeLLo", "hello"));
  EXPECT_FALSE(iequals("hello", "hell"));
  EXPECT_TRUE(icontains("Greetings from Detroit!", "detroit"));
  EXPECT_FALSE(icontains("abc", "abcd"));
}

TEST(Strings, ContainsWordRespectsBoundaries) {
  EXPECT_TRUE(contains_word("I live in Denmark now", "denmark"));
  EXPECT_FALSE(contains_word("I live in Denmarkian", "denmark"));
  EXPECT_TRUE(contains_word("Denmark", "denmark"));
  EXPECT_FALSE(contains_word("", "x"));
}

TEST(Strings, ParseUintOr) {
  EXPECT_EQ(parse_uint_or("123", -1), 123);
  EXPECT_EQ(parse_uint_or("12a", -1), -1);
  EXPECT_EQ(parse_uint_or("", -1), -1);
  EXPECT_EQ(parse_uint_or("1234567890", -1), -1);  // too long
}

TEST(Strings, DigitsOnly) {
  EXPECT_EQ(digits_only("ping 45ms"), "45");
  EXPECT_EQ(digits_only("abc"), "");
}

TEST(Table, PrintsHeaderAndRows) {
  Table table({"a", "bb"});
  table.add_row({"1", "2"}).add_row({"333"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_double(1.234, 2), "1.23");
  EXPECT_EQ(fmt_percent(0.5, 1), "50.0%");
  EXPECT_EQ(fmt_pm(1.0, 0.5, 1), "1.0 +/- 0.5");
}

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(2.0, [&] { order.push_back(2); });
  loop.schedule_at(1.0, [&] { order.push_back(1); });
  loop.schedule_at(3.0, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);
}

TEST(EventLoop, TiesBreakInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(1.0, [&] { order.push_back(1); });
  loop.schedule_at(1.0, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, HandlersMaySchedule) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1.0, [&] {
    ++fired;
    loop.schedule_after(1.0, [&] { ++fired; });
  });
  loop.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(loop.now(), 2.0);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1.0, [&] { ++fired; });
  loop.schedule_at(5.0, [&] { ++fired; });
  loop.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(loop.now(), 2.0);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, RejectsPastScheduling) {
  EventLoop loop;
  loop.schedule_at(5.0, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(1.0, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace tero::util
