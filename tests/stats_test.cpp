#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/matrix.hpp"
#include "stats/probit.hpp"
#include "stats/wasserstein.hpp"
#include "util/rng.hpp"

namespace tero::stats {
namespace {

TEST(Descriptive, MeanAndStddev) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{7.0}), 0.0);
}

TEST(Descriptive, PercentileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
}

TEST(Descriptive, BoxplotOrdering) {
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.normal(50, 10));
  const Boxplot box = boxplot(xs);
  EXPECT_LT(box.p5, box.p25);
  EXPECT_LT(box.p25, box.p50);
  EXPECT_LT(box.p50, box.p75);
  EXPECT_LT(box.p75, box.p95);
  EXPECT_NEAR(box.p50, 50.0, 1.0);
}

TEST(Descriptive, Ecdf) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ecdf(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(xs, 10.0), 1.0);
}

TEST(Descriptive, MeanErrShrinksWithN) {
  util::Rng rng(5);
  std::vector<double> small, large;
  for (int i = 0; i < 10; ++i) small.push_back(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) large.push_back(rng.normal(0, 1));
  EXPECT_GT(mean_err(small).err, mean_err(large).err);
}

TEST(Distributions, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(Distributions, QuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << p;
  }
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
}

TEST(Distributions, BinomialPmfSumsToOne) {
  double total = 0.0;
  for (std::uint64_t k = 0; k <= 20; ++k) total += binomial_pmf(20, k, 0.3);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Distributions, BinomialPmfKnown) {
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 0.375, 1e-12);
  EXPECT_NEAR(binomial_pmf(10, 0, 0.1), std::pow(0.9, 10), 1e-12);
  EXPECT_DOUBLE_EQ(binomial_pmf(3, 5, 0.5), 0.0);
}

TEST(Distributions, BinomialTail) {
  EXPECT_NEAR(binomial_tail(4, 0, 0.5), 1.0, 1e-12);
  EXPECT_NEAR(binomial_tail(4, 4, 0.5), 0.0625, 1e-12);
  // Large n stays finite and sane.
  const double tail = binomial_tail(100000, 200, 0.001);
  EXPECT_GT(tail, 0.0);
  EXPECT_LT(tail, 1e-3);
}

TEST(Distributions, ZPvalue) {
  EXPECT_NEAR(z_pvalue(0.0), 1.0, 1e-12);
  EXPECT_NEAR(z_pvalue(1.959963985), 0.05, 1e-6);
}

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a(2, 3);
  int v = 1;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a.at(r, c) = v++;
  }
  const Matrix at = a.transpose();
  const Matrix prod = a.multiply(at);  // 2x2
  EXPECT_DOUBLE_EQ(prod.at(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(prod.at(0, 1), 32.0);
  EXPECT_DOUBLE_EQ(prod.at(1, 1), 77.0);
}

TEST(Matrix, SolveSpdRoundTrip) {
  Matrix a(3, 3);
  a.at(0, 0) = 4;  a.at(0, 1) = 1;  a.at(0, 2) = 0;
  a.at(1, 0) = 1;  a.at(1, 1) = 3;  a.at(1, 2) = 1;
  a.at(2, 0) = 0;  a.at(2, 1) = 1;  a.at(2, 2) = 5;
  const std::vector<double> x_true = {1.0, -2.0, 0.5};
  const auto b = a.multiply(std::span<const double>{x_true});
  const auto x = a.solve_spd(b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Matrix, InverseSpd) {
  Matrix a(2, 2);
  a.at(0, 0) = 2;  a.at(0, 1) = 1;
  a.at(1, 0) = 1;  a.at(1, 1) = 2;
  const Matrix inv = a.inverse_spd();
  const Matrix identity = a.multiply(inv);
  EXPECT_NEAR(identity.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(identity.at(0, 1), 0.0, 1e-12);
}

TEST(Matrix, DeterminantSpd) {
  Matrix a(2, 2);
  a.at(0, 0) = 2;  a.at(0, 1) = 1;
  a.at(1, 0) = 1;  a.at(1, 1) = 2;
  EXPECT_NEAR(a.determinant_spd(), 3.0, 1e-10);
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;   a.at(0, 1) = 2;
  a.at(1, 0) = 2;   a.at(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(a.solve_spd(std::vector<double>{1.0, 1.0}),
               std::domain_error);
}

TEST(Wasserstein, IdenticalDistributionsZero) {
  const std::vector<double> a = {1, 2, 3};
  EXPECT_NEAR(wasserstein1(a, a), 0.0, 1e-12);
}

TEST(Wasserstein, PointMassShift) {
  // W1 between delta(0) and delta(5) is 5.
  EXPECT_NEAR(wasserstein1(std::vector<double>{0.0},
                           std::vector<double>{5.0}),
              5.0, 1e-12);
}

TEST(Wasserstein, SymmetricAndTriangleish) {
  const std::vector<double> a = {0, 1, 2};
  const std::vector<double> b = {5, 6, 9};
  EXPECT_NEAR(wasserstein1(a, b), wasserstein1(b, a), 1e-12);
  EXPECT_GT(wasserstein1(a, b), 0.0);
}

TEST(Unevenness, UniformPointsScoreLow) {
  std::vector<double> timestamps;
  for (int i = 0; i < 20; ++i) timestamps.push_back(i * 15.0 + 7.5);
  EXPECT_LT(unevenness_score(timestamps, 0.0, 300.0), 0.1);
}

TEST(Unevenness, DegeneratePointsScoreOne) {
  const std::vector<double> timestamps(10, 0.0);
  EXPECT_NEAR(unevenness_score(timestamps, 0.0, 300.0), 1.0, 1e-9);
}

TEST(Unevenness, HalfConcentratedInBetween) {
  std::vector<double> timestamps(10, 150.0);  // all in the middle
  const double score = unevenness_score(timestamps, 0.0, 300.0);
  EXPECT_GT(score, 0.2);
  EXPECT_LT(score, 0.8);
}

// ---- Probit regression -------------------------------------------------------

class ProbitRecovery : public ::testing::TestWithParam<double> {};

TEST_P(ProbitRecovery, RecoversSlopeAndMarginalEffect) {
  const double beta1 = GetParam();
  const double beta0 = -1.5;
  util::Rng rng(99);
  std::vector<double> x;
  std::vector<int> y;
  for (int i = 0; i < 20000; ++i) {
    const double xi = static_cast<double>(rng.uniform_int(0, 10));
    const double p = normal_cdf(beta0 + beta1 * xi);
    x.push_back(xi);
    y.push_back(rng.bernoulli(p) ? 1 : 0);
  }
  const ProbitResult fit = probit_fit_single(x, y);
  ASSERT_TRUE(fit.converged);
  EXPECT_NEAR(fit.beta[0], beta0, 0.12);
  EXPECT_NEAR(fit.beta[1], beta1, 0.05);
  EXPECT_GT(fit.marginal_effect[1], 0.0);
  // Slope significant at 1%.
  EXPECT_LT(fit.p_value[1], 0.01);
}

INSTANTIATE_TEST_SUITE_P(Slopes, ProbitRecovery,
                         ::testing::Values(0.05, 0.1, 0.2));

TEST(Probit, NoEffectYieldsInsignificantSlope) {
  util::Rng rng(7);
  std::vector<double> x;
  std::vector<int> y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(static_cast<double>(rng.uniform_int(0, 10)));
    y.push_back(rng.bernoulli(0.1) ? 1 : 0);
  }
  const ProbitResult fit = probit_fit_single(x, y);
  ASSERT_TRUE(fit.converged);
  EXPECT_GT(fit.p_value[1], 0.01);
  EXPECT_NEAR(fit.beta[1], 0.0, 0.05);
}

TEST(Probit, MarginalEffectMatchesFiniteDifference) {
  util::Rng rng(13);
  std::vector<double> x;
  std::vector<int> y;
  for (int i = 0; i < 10000; ++i) {
    const double xi = static_cast<double>(rng.uniform_int(0, 8));
    x.push_back(xi);
    y.push_back(rng.bernoulli(normal_cdf(-1.0 + 0.15 * xi)) ? 1 : 0);
  }
  const ProbitResult fit = probit_fit_single(x, y);
  // Average finite-difference effect of +1 unit should be close to the
  // analytic average marginal effect.
  double fd = 0.0;
  for (double xi : x) {
    fd += normal_cdf(fit.beta[0] + fit.beta[1] * (xi + 1)) -
          normal_cdf(fit.beta[0] + fit.beta[1] * xi);
  }
  fd /= static_cast<double>(x.size());
  EXPECT_NEAR(fit.marginal_effect[1], fd, 0.01);
}

TEST(Probit, RejectsBadInput) {
  EXPECT_THROW(probit_fit({}, std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW(probit_fit({{1.0}, {2.0, 3.0}}, std::vector<int>{0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tero::stats
