#include <gtest/gtest.h>

#include <set>

#include "synth/latency_model.hpp"
#include "synth/sessions.hpp"
#include "synth/text_gen.hpp"
#include "synth/thumbnail.hpp"
#include "synth/world.hpp"

namespace tero::synth {
namespace {

TEST(LatencyModel, GrowsWithDistance) {
  const LatencyModel model;
  const auto& catalog = geo::GameCatalog::builtin();
  const geo::Game* lol = catalog.find("League of Legends");
  ASSERT_NE(lol, nullptr);
  const auto illinois = model.expected_rtt_ms(
      *lol, geo::Location{"", "Illinois", "United States"});
  const auto hawaii = model.expected_rtt_ms(
      *lol, geo::Location{"", "Hawaii", "United States"});
  ASSERT_TRUE(illinois.has_value());
  ASSERT_TRUE(hawaii.has_value());
  EXPECT_LT(*illinois, 20.0);   // paper Fig. 9a: Illinois is US-best
  EXPECT_GT(*hawaii, 100.0);    // Hawaii ~6,800 km from Chicago
}

TEST(LatencyModel, UnknownServersYieldNullopt) {
  const LatencyModel model;
  const auto& catalog = geo::GameCatalog::builtin();
  const geo::Game* apex = catalog.find("Apex Legends");
  ASSERT_NE(apex, nullptr);
  EXPECT_FALSE(model.expected_rtt_ms(*apex, geo::Location{"", "", "France"})
                   .has_value());
}

TEST(LatencyModel, RegionalPenaltiesApplied) {
  const auto dc =
      regional_penalty(geo::Location{"", "District of Columbia",
                                     "United States"});
  const auto missouri =
      regional_penalty(geo::Location{"", "Missouri", "United States"});
  EXPECT_GT(dc.extra_ms, 25.0);        // the paper's worst doughnut state
  EXPECT_LT(missouri.extra_ms, 5.0);   // and one of its best
  const auto poland = regional_penalty(geo::Location{"", "", "Poland"});
  const auto swiss = regional_penalty(geo::Location{"", "", "Switzerland"});
  EXPECT_GT(poland.extra_ms, swiss.extra_ms + 15.0);
}

TEST(LatencyModel, MeasurementsPositiveAndCentered) {
  const LatencyModel model;
  util::Rng rng(1);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const int v = model.draw_measurement(40.0, RegionalPenalty{}, 2.0, rng);
    EXPECT_GE(v, 1);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000.0, 44.0, 3.0);
}

TEST(TextGen, UsernamesLookReasonable) {
  util::Rng rng(2);
  std::set<std::string> names;
  for (int i = 0; i < 100; ++i) {
    const std::string name = random_username(rng);
    EXPECT_GE(name.size(), 6u);
    names.insert(name);
  }
  EXPECT_GT(names.size(), 90u);  // few collisions
}

TEST(TextGen, LocationDescriptionNamesThePlace) {
  util::Rng rng(3);
  const auto* barcelona = geo::Gazetteer::world().find_any("Barcelona");
  ASSERT_NE(barcelona, nullptr);
  for (int i = 0; i < 20; ++i) {
    const std::string text = location_description(*barcelona, rng);
    EXPECT_NE(text.find("Barcelona"), std::string::npos) << text;
  }
}

TEST(TextGen, MisleadingUsesDemonym) {
  util::Rng rng(4);
  const auto* denmark = geo::Gazetteer::world().find_any("Denmark");
  ASSERT_NE(denmark, nullptr);
  const std::string text = misleading_description(*denmark, rng);
  EXPECT_NE(text.find("Denmarkian"), std::string::npos);
}

TEST(World, PopulationSizedAndUnique) {
  WorldConfig config;
  config.num_streamers = 300;
  config.seed = 5;
  const World world(config);
  EXPECT_EQ(world.streamers().size(), 300u);
  std::set<std::string> ids;
  for (const auto& streamer : world.streamers()) {
    ids.insert(streamer.id);
    ASSERT_NE(streamer.home, nullptr);
    EXPECT_TRUE(streamer.home_location.valid());
    EXPECT_FALSE(streamer.main_game.empty());
  }
  EXPECT_EQ(ids.size(), 300u);
}

TEST(World, ProfileProbabilitiesRoughlyHonored) {
  WorldConfig config;
  config.num_streamers = 4000;
  config.seed = 6;
  const World world(config);
  std::size_t with_twitter = 0;
  std::size_t with_tag = 0;
  for (const auto& streamer : world.streamers()) {
    if (streamer.has_twitter) ++with_twitter;
    if (streamer.twitch.country_tag.has_value()) ++with_tag;
  }
  EXPECT_NEAR(static_cast<double>(with_twitter) / 4000.0,
              config.p_twitter, 0.03);
  EXPECT_NEAR(static_cast<double>(with_tag) / 4000.0, config.p_country_tag,
              0.02);
}

TEST(World, FocusLocationsPinHomes) {
  WorldConfig config;
  config.focus_locations = {geo::Location{"", "California", "United States"},
                            geo::Location{"", "", "Poland"}};
  config.streamers_per_focus = 25;
  const World world(config);
  EXPECT_EQ(world.streamers().size(), 50u);
  std::size_t california = 0;
  for (const auto& streamer : world.streamers()) {
    if (streamer.home_location.region == "California") ++california;
  }
  EXPECT_EQ(california, 25u);
}

TEST(Sessions, PointsSpacedLikeThumbnails) {
  WorldConfig config;
  config.num_streamers = 30;
  const World world(config);
  SessionGenerator generator(world, BehaviorConfig{}, 11);
  const auto streams = generator.generate();
  ASSERT_FALSE(streams.empty());
  std::size_t checked = 0;
  for (const auto& stream : streams) {
    for (std::size_t i = 1; i < stream.points.size(); ++i) {
      const double gap = stream.points[i].t - stream.points[i - 1].t;
      ASSERT_GE(gap, 299.0);
      ASSERT_LE(gap, 361.0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(Sessions, SpikesAndChangesOccur) {
  WorldConfig config;
  config.num_streamers = 120;
  const World world(config);
  BehaviorConfig behavior;
  behavior.days = 10;
  SessionGenerator generator(world, behavior, 12);
  const auto streams = generator.generate();
  std::size_t spikes = 0;
  std::size_t server_changes = 0;
  std::size_t game_changes = 0;
  for (const auto& stream : streams) {
    spikes += stream.spikes_total;
    server_changes += stream.server_changes;
    if (stream.ended_with_game_change) ++game_changes;
  }
  EXPECT_GT(spikes, 50u);
  EXPECT_GT(server_changes, 0u);
  EXPECT_GT(game_changes, 20u);
}

TEST(Sessions, LatencyReflectsServerDistance) {
  // A California streamer on the primary (Chicago) LoL server sits near
  // the model expectation; alt-server points differ.
  WorldConfig config;
  config.focus_locations = {geo::Location{"", "California", "United States"}};
  config.streamers_per_focus = 10;
  config.games = {"League of Legends"};
  const World world(config);
  SessionGenerator generator(world, BehaviorConfig{}, 13);
  const auto streams = generator.generate();
  std::vector<double> primary_values;
  for (const auto& stream : streams) {
    for (const auto& point : stream.points) {
      if (!point.on_alt_server && !point.in_spike) {
        primary_values.push_back(point.latency_ms);
      }
    }
  }
  ASSERT_GT(primary_values.size(), 100u);
  double sum = 0.0;
  for (double v : primary_values) sum += v;
  const double mean = sum / static_cast<double>(primary_values.size());
  EXPECT_GT(mean, 40.0);  // ~2,900 km corrected distance to Chicago
  EXPECT_LT(mean, 90.0);
}

TEST(Thumbnail, VisibleLatencyRendered) {
  const ThumbnailRenderer renderer;
  util::Rng rng(14);
  const auto& spec = ocr::ui_spec_for("League of Legends");
  const auto rendered =
      renderer.render_with(spec, 87, Corruption::kNone, rng);
  EXPECT_TRUE(rendered.latency_visible);
  EXPECT_EQ(rendered.image.width(), ocr::kThumbnailWidth);
  // The UI panel region contains bright text pixels.
  const auto crop = rendered.image.crop(spec.latency_region);
  int bright = 0;
  for (auto p : crop.pixels()) {
    if (p > 150) ++bright;
  }
  EXPECT_GT(bright, 20);
}

TEST(Thumbnail, VisibilityRateHonored) {
  ThumbnailConfig config;
  config.p_latency_visible = 0.35;
  const ThumbnailRenderer renderer(config);
  util::Rng rng(15);
  const auto& spec = ocr::ui_spec_for("League of Legends");
  int visible = 0;
  for (int i = 0; i < 1000; ++i) {
    if (renderer.render(spec, 50, rng).latency_visible) ++visible;
  }
  EXPECT_NEAR(visible / 1000.0, 0.35, 0.05);
}

TEST(Thumbnail, CorruptionModesDistinct) {
  const ThumbnailRenderer renderer;
  util::Rng rng(16);
  const auto& spec = ocr::ui_spec_for("League of Legends");
  const auto clean = renderer.render_with(spec, 45, Corruption::kNone, rng);
  const auto low =
      renderer.render_with(spec, 45, Corruption::kLowContrast, rng);
  // Low contrast: far fewer bright pixels in the panel.
  auto bright_count = [&](const RenderedThumbnail& thumbnail) {
    const image::GrayImage crop = thumbnail.image.crop(spec.latency_region);
    int bright = 0;
    for (auto p : crop.pixels()) {
      if (p > 150) ++bright;
    }
    return bright;
  };
  EXPECT_GT(bright_count(clean), bright_count(low) + 10);
}

}  // namespace
}  // namespace tero::synth

namespace behavior_tests {
using namespace tero::synth;
using namespace tero;

TEST(Sessions, DeterministicForSameSeed) {
  WorldConfig config;
  config.num_streamers = 40;
  const World world(config);
  SessionGenerator a(world, BehaviorConfig{}, 99);
  SessionGenerator b(world, BehaviorConfig{}, 99);
  const auto sa = a.generate();
  const auto sb = b.generate();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i].points.size(), sb[i].points.size());
    for (std::size_t p = 0; p < sa[i].points.size(); ++p) {
      EXPECT_EQ(sa[i].points[p].latency_ms, sb[i].points[p].latency_ms);
      EXPECT_DOUBLE_EQ(sa[i].points[p].t, sb[i].points[p].t);
    }
  }
}

TEST(Sessions, CasualSliceReducesVolume) {
  WorldConfig config;
  config.num_streamers = 200;
  const World world(config);
  BehaviorConfig all_casual;
  all_casual.p_casual = 1.0;
  BehaviorConfig no_casual;
  no_casual.p_casual = 0.0;
  std::size_t casual_points = 0;
  std::size_t regular_points = 0;
  for (const auto& s : SessionGenerator(world, all_casual, 3).generate()) {
    casual_points += s.points.size();
  }
  for (const auto& s : SessionGenerator(world, no_casual, 3).generate()) {
    regular_points += s.points.size();
  }
  EXPECT_LT(casual_points * 5, regular_points);
}

TEST(Sessions, MislabeledStreamersProduceJunk) {
  WorldConfig config;
  config.focus_locations = {geo::Location{"", "", "Netherlands"}};
  config.streamers_per_focus = 30;
  config.games = {"League of Legends"};
  const World world(config);
  BehaviorConfig behavior;
  behavior.p_mislabeled = 1.0;  // everyone reads junk sometimes
  behavior.spike_rate_per_hour = 0.0;
  behavior.shared_events_per_region_day = 0.0;
  SessionGenerator generator(world, behavior, 5);
  int junky = 0;
  int total = 0;
  for (const auto& stream : generator.generate()) {
    for (const auto& point : stream.points) {
      ++total;
      // Netherlands base is ~10 ms; junk values scatter to 1-999.
      if (point.latency_ms > 100) ++junky;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(junky) / total, 0.15);
}

TEST(Sessions, AltPreferenceCreatesSecondLatencyMode) {
  WorldConfig config;
  config.focus_locations = {geo::Location{"", "", "Netherlands"}};
  config.streamers_per_focus = 40;
  config.games = {"League of Legends"};
  const World world(config);
  BehaviorConfig behavior;
  behavior.p_alt_preference = 1.0;
  behavior.spike_rate_per_hour = 0.0;
  behavior.shared_events_per_region_day = 0.0;
  SessionGenerator generator(world, behavior, 6);
  int off_primary = 0;
  int total = 0;
  for (const auto& stream : generator.generate()) {
    for (const auto& point : stream.points) {
      ++total;
      if (point.on_alt_server) ++off_primary;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(off_primary) / total, 0.5);
}

TEST(Thumbnail, RollCorruptionRespectsMix) {
  ThumbnailConfig config;
  config.p_occlusion = 0.5;
  config.p_low_contrast = 0.0;
  config.p_clock = 0.0;
  config.p_heavy_noise = 0.0;
  config.p_compression = 0.5;
  util::Rng rng(9);
  int occluded = 0;
  int compressed = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto corruption = roll_corruption(config, rng);
    if (corruption == Corruption::kOcclusion) ++occluded;
    if (corruption == Corruption::kCompression) ++compressed;
  }
  EXPECT_NEAR(occluded / 2000.0, 0.5, 0.05);
  EXPECT_NEAR(compressed / 2000.0, 0.5, 0.05);
}

}  // namespace behavior_tests
