#include <gtest/gtest.h>

#include "nlp/combine.hpp"
#include "nlp/filter.hpp"
#include "nlp/matcher.hpp"
#include "nlp/tools.hpp"

namespace tero::nlp {
namespace {

using geo::Location;

TEST(Tokenizer, SplitsOnPunctuation) {
  const auto tokens = tokenize("Join us in Detroit! (18+)");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].text, "Detroit");
  EXPECT_EQ(tokens[4].text, "18");
}

TEST(Matcher, FindsMultiWordPlaces) {
  MatchOptions options;
  const auto mentions = find_mentions("Living in New York City these days",
                                      geo::Gazetteer::world(), options);
  ASSERT_FALSE(mentions.empty());
  EXPECT_EQ(mentions[0].place->name, "New York City");
  EXPECT_EQ(mentions[0].token_count, 3);
}

TEST(Matcher, AmbiguousNameYieldsMultipleMentions) {
  MatchOptions options;
  const auto mentions =
      find_mentions("Georgia gamer", geo::Gazetteer::world(), options);
  EXPECT_EQ(mentions.size(), 2u);  // US state and the country
}

TEST(Matcher, CapitalizationFilter) {
  MatchOptions options;
  options.require_capitalized = true;
  EXPECT_TRUE(find_mentions("i love turkey sandwiches",
                            geo::Gazetteer::world(), options)
                  .empty());
  EXPECT_FALSE(find_mentions("Visiting Turkey soon",
                             geo::Gazetteer::world(), options)
                   .empty());
}

TEST(Matcher, SubstringMatchingCatchesDemonyms) {
  MatchOptions options;
  options.allow_substring = true;
  const auto mentions = find_mentions("proud Denmarkian gamer",
                                      geo::Gazetteer::world(), options);
  ASSERT_FALSE(mentions.empty());
  EXPECT_EQ(mentions[0].place->name, "Denmark");
  // Without substring matching, no hit.
  MatchOptions strict;
  EXPECT_TRUE(find_mentions("proud Denmarkian gamer",
                            geo::Gazetteer::world(), strict)
                  .empty());
}

TEST(ConservativeFilter, AcceptsWhenCountryOrRegionNamed) {
  // "From Miami, Florida" names the region -> accepted (App. D.1 example).
  EXPECT_TRUE(conservative_filter(
      "From Miami, Florida",
      Location{"Miami", "Florida", "United States"}));
  // "Join us in Detroit" names neither country nor region -> rejected.
  EXPECT_FALSE(conservative_filter(
      "Join us in Detroit",
      Location{"Detroit", "Michigan", "United States"}));
}

TEST(ConservativeFilter, AliasAware) {
  EXPECT_TRUE(conservative_filter(
      "streaming from the USA", Location{"", "", "United States"}));
}

TEST(Tools, CliffExtractsCapitalizedPlaces) {
  const auto cliff = make_cliff_like();
  const auto out = cliff->extract("Join us in Detroit!");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].city, "Detroit");
  EXPECT_EQ(out[0].country, "United States");
  EXPECT_TRUE(cliff->extract("no places here").empty());
}

TEST(Tools, XponentsHasHigherRecallAndFalsePositives) {
  const auto xponents = make_xponents_like();
  // Lowercase mention: Xponents finds it, CLIFF does not.
  EXPECT_FALSE(xponents->extract("greetings from paris").empty());
  EXPECT_TRUE(make_cliff_like()->extract("greetings from paris").empty());
  // Demonym false positive.
  const auto out = xponents->extract("proud Denmarkian gamer");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].country, "Denmark");
}

TEST(Tools, MordecaiReturnsCandidateList) {
  const auto mordecai = make_mordecai_like();
  const auto out = mordecai->extract("Moving from Paris to Madrid");
  EXPECT_GE(out.size(), 2u);
}

TEST(Tools, NominatimParsesStructuredFields) {
  const auto nominatim = make_nominatim_like();
  const auto out = nominatim->extract("Barcelona, Spain");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].city, "Barcelona");
  EXPECT_EQ(out[0].region, "Catalunya");
}

TEST(Tools, NominatimRejectsInconsistentHierarchy) {
  const auto nominatim = make_nominatim_like();
  EXPECT_TRUE(nominatim->extract("Barcelona, France").empty());
}

TEST(Tools, GeonamesPicksWeightiestMatch) {
  const auto geonames = make_geonames_like();
  const auto out = geonames->extract("somewhere in Germany");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].country, "Germany");
}

TEST(Combine, TwitchDescriptionAgreementPath) {
  const ToolSet tools;
  // "Streaming from Barcelona, Spain" passes the conservative filter
  // (country named).
  const auto loc =
      combine_twitch_description("Streaming from Barcelona, Spain", tools);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->city, "Barcelona");
}

TEST(Combine, PlainCityRequiresAgreement) {
  const ToolSet tools;
  // "Join us in Detroit!" fails the filter but CLIFF and Xponents agree.
  const auto loc = combine_twitch_description("Join us in Detroit!", tools);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->city, "Detroit");
}

TEST(Combine, TrapTextNotAcceptedByCombination) {
  const ToolSet tools;
  // Only Xponents falls for lowercase "turkey"; no agreement, no filter
  // pass -> rejected.
  EXPECT_FALSE(combine_twitch_description("i love turkey sandwiches", tools)
                   .has_value());
}

TEST(Combine, CountryTagRecoversDiscardedOutput) {
  const ToolSet tools;
  const std::string text = "i love turkey sandwiches";
  EXPECT_FALSE(combine_twitch_description(text, tools).has_value());
  const auto recovered =
      combine_twitch_description(text, tools, std::string("Turkey"));
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->country, "Turkey");
}

TEST(Combine, TwitterLocationAgreement) {
  const ToolSet tools;
  const auto loc = combine_twitter_location("Amsterdam, Netherlands", tools);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->city, "Amsterdam");
}

TEST(Combine, TwitterNonGeographicNoise) {
  const ToolSet tools;
  // "Your heart, Chicago" (App. D.3): geoparsers disagree/fail on the
  // noise, the description path recovers the city.
  const auto loc = combine_twitter_location("Your heart, Chicago", tools);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->city, "Chicago");
}

TEST(Combine, EmptyFieldYieldsNothing) {
  const ToolSet tools;
  EXPECT_FALSE(combine_twitter_location("", tools).has_value());
  EXPECT_FALSE(combine_twitch_description("", tools).has_value());
}

}  // namespace
}  // namespace tero::nlp

namespace entity_tests {
using namespace tero::nlp;
using tero::geo::Location;

TEST(EntityHeuristic, PersonNamesSkippedByCliff) {
  const auto cliff = make_cliff_like();
  EXPECT_TRUE(cliff->extract("Certified Paris Hilton stan account").empty());
  EXPECT_TRUE(cliff->extract("Toronto Raptors fan first").empty());
  // A place followed by a lowercase word still extracts.
  EXPECT_FALSE(cliff->extract("Paris is my favourite city").empty());
}

TEST(EntityHeuristic, PlaceFollowedByPlaceKept) {
  // "Barcelona Spain" (no comma): the follower is itself a place, so the
  // heuristic must not fire.
  const auto cliff = make_cliff_like();
  const auto out = cliff->extract("Streaming from Barcelona Spain");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].city, "Barcelona");
}

TEST(EntityHeuristic, XponentsStaysNaive) {
  const auto xponents = make_xponents_like();
  EXPECT_FALSE(
      xponents->extract("Certified Paris Hilton stan account").empty());
}

TEST(Combine, JokeTwitterFieldsRejected) {
  const ToolSet tools;
  EXPECT_FALSE(
      combine_twitter_location("somewhere between London and Tokyo", tools)
          .has_value());
  EXPECT_FALSE(combine_twitter_location("Narnia", tools).has_value());
  EXPECT_FALSE(combine_twitter_location("Gotham City", tools).has_value());
}

TEST(Combine, PronounSuffixFieldStillParses) {
  const ToolSet tools;
  const auto loc =
      combine_twitter_location("Madrid, Spain | she/they", tools);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->city, "Madrid");
}

TEST(ConservativeFilter, LowercaseCoincidencesRejected) {
  EXPECT_FALSE(conservative_filter("i love turkey sandwiches",
                                   Location{"", "", "Turkey"}));
  EXPECT_TRUE(conservative_filter("Visiting Turkey this summer",
                                  Location{"", "", "Turkey"}));
  // Short acronym aliases need exact case: "us" must not confirm the US.
  EXPECT_FALSE(conservative_filter("join us in the stream",
                                   Location{"", "", "United States"}));
  EXPECT_TRUE(conservative_filter("Detroit, US based",
                                  Location{"Detroit", "Michigan",
                                           "United States"}));
}

}  // namespace entity_tests
