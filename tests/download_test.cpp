#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "download/cdn.hpp"
#include "download/rate_limiter.hpp"
#include "download/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/descriptive.hpp"

namespace tero::download {
namespace {

TEST(TokenBucket, StartsFullAndRefills) {
  TokenBucket bucket(1.0, 2.0);  // 1 token/s, burst 2
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(1.0));  // refilled
}

TEST(TokenBucket, NextAvailableEstimates) {
  TokenBucket bucket(2.0, 1.0);
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_NEAR(bucket.next_available(0.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(bucket.next_available(10.0), 10.0);
}

TEST(TokenBucket, BurstCapped) {
  TokenBucket bucket(100.0, 3.0);
  EXPECT_NEAR(bucket.available(100.0), 3.0, 1e-9);
}

TEST(TokenBucket, RejectsBadParams) {
  EXPECT_THROW(TokenBucket(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1.0, -1.0), std::invalid_argument);
}

TEST(TokenBucket, CountsGrantsAndRejections) {
  TokenBucket bucket(1.0, 2.0);
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.1));
  EXPECT_TRUE(bucket.try_acquire(1.1));
  EXPECT_EQ(bucket.acquired(), 3u);
  EXPECT_EQ(bucket.throttled(), 2u);
}

/// Bursty arrival pattern for the rate-limiter tests: clusters of
/// back-to-back requests separated by idle gaps, all drawn from one seeded
/// Rng so the pattern (and thus the bucket's behavior) is reproducible.
std::vector<double> bursty_arrivals(std::uint64_t seed, std::size_t bursts,
                                    double horizon) {
  tero::util::Rng rng(seed);
  std::vector<double> arrivals;
  double t = 0.0;
  for (std::size_t b = 0; b < bursts && t < horizon; ++b) {
    const int burst_size = 1 + static_cast<int>(rng.uniform(0.0, 12.0));
    for (int i = 0; i < burst_size; ++i) {
      // Within a burst requests land microseconds apart.
      t += rng.uniform(0.0, 1e-3);
      arrivals.push_back(t);
    }
    t += rng.uniform(0.1, 5.0);  // idle gap until the next burst
  }
  return arrivals;
}

TEST(TokenBucket, TokensNeverNegativeUnderBursts) {
  TokenBucket bucket(5.0, 8.0);
  const auto arrivals = bursty_arrivals(101, 200, 300.0);
  ASSERT_GT(arrivals.size(), 200u);
  for (const double now : arrivals) {
    bucket.try_acquire(now);
    const double available = bucket.available(now);
    EXPECT_GE(available, 0.0) << "negative tokens at t=" << now;
    EXPECT_LE(available, 8.0 + 1e-9) << "burst cap exceeded at t=" << now;
  }
}

TEST(TokenBucket, SustainedRateConvergesToLimit) {
  // Offered load is ~10x the limit; grants over a long horizon must
  // converge to rate * horizon (+ the initial burst), not the offered rate.
  const double rate = 4.0;
  const double burst = 6.0;
  TokenBucket bucket(rate, burst);
  tero::util::Rng rng(202);
  const double horizon = 500.0;
  double t = 0.0;
  std::uint64_t offered = 0;
  while (t < horizon) {
    t += rng.uniform(0.0, 0.05);  // ~40 requests/s offered
    bucket.try_acquire(t);
    ++offered;
  }
  const double granted = static_cast<double>(bucket.acquired());
  ASSERT_GT(offered, bucket.acquired());  // the limiter actually limited
  const double expected = rate * horizon + burst;
  EXPECT_NEAR(granted / expected, 1.0, 0.05);
  EXPECT_EQ(bucket.acquired() + bucket.throttled(), offered);
}

TEST(TokenBucket, DeterministicUnderFixedSeed) {
  const auto run = [](std::uint64_t seed) {
    TokenBucket bucket(3.0, 4.0);
    std::vector<bool> grants;
    for (const double now : bursty_arrivals(seed, 120, 200.0)) {
      grants.push_back(bucket.try_acquire(now));
    }
    return std::make_tuple(grants, bucket.acquired(), bucket.throttled());
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  // A different seed produces a different (but equally deterministic)
  // grant pattern.
  const auto c = run(8);
  EXPECT_NE(std::get<0>(a), std::get<0>(c));
}

TEST(SimulatedCdn, GeneratesRoughlyEvery5Minutes) {
  util::EventLoop loop;
  SimulatedCdn cdn(loop, util::Rng(1));
  cdn.add_session({"alice", 0.0, 3600.0});
  loop.run_until(3600.0);
  // 1 hour / ~330 s -> about 10-11 thumbnails.
  EXPECT_GE(cdn.versions_of("alice"), 9u);
  EXPECT_LE(cdn.versions_of("alice"), 12u);
}

TEST(SimulatedCdn, OfflineRedirects) {
  util::EventLoop loop;
  SimulatedCdn cdn(loop, util::Rng(2));
  cdn.add_session({"bob", 100.0, 700.0});
  loop.run_until(50.0);
  EXPECT_FALSE(cdn.head("bob").online);
  EXPECT_FALSE(cdn.get("bob").has_value());
  loop.run_until(800.0);
  EXPECT_FALSE(cdn.head("bob").online);  // gone offline again
  EXPECT_FALSE(cdn.get("unknown").has_value());
}

TEST(SimulatedCdn, GetServesCurrentVersion) {
  util::EventLoop loop;
  SimulatedCdn cdn(loop, util::Rng(3));
  cdn.add_session({"carol", 0.0, 2000.0});
  loop.run_until(400.0);
  const auto response = cdn.get("carol");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->version, cdn.head("carol").version);
  EXPECT_GT(response->size_bytes, 0u);
}

TEST(SimulatedCdn, ApiListsLiveStreamers) {
  util::EventLoop loop;
  SimulatedCdn cdn(loop, util::Rng(4));
  cdn.add_session({"a", 0.0, 1000.0});
  cdn.add_session({"b", 500.0, 1500.0});
  loop.run_until(100.0);
  EXPECT_EQ(cdn.api_live_streamers().size(), 1u);
  loop.run_until(600.0);
  EXPECT_EQ(cdn.api_live_streamers().size(), 2u);
  loop.run_until(1200.0);
  EXPECT_EQ(cdn.api_live_streamers().size(), 1u);
}

class DownloadSystemTest : public ::testing::Test {
 protected:
  void run_world(int streamers, double horizon, int downloaders = 3,
                 bool crash_midway = false) {
    cdn_ = std::make_unique<SimulatedCdn>(loop_, util::Rng(7));
    for (int i = 0; i < streamers; ++i) {
      cdn_->add_session({"s" + std::to_string(i), i * 10.0, horizon});
    }
    DownloadConfig config;
    config.num_downloaders = downloaders;
    config.metrics = &registry_;
    config.trace = &trace_;
    system_ = std::make_unique<DownloadSystem>(loop_, *cdn_, kv_, config,
                                               util::Rng(8));
    system_->start();
    if (crash_midway) {
      loop_.schedule_at(horizon / 2, [this] { system_->crash_and_recover(); });
    }
    loop_.run_until(horizon);
  }

  util::EventLoop loop_;
  store::KvStore kv_;
  tero::obs::MetricsRegistry registry_;
  tero::obs::TraceRecorder trace_;
  std::unique_ptr<SimulatedCdn> cdn_;
  std::unique_ptr<DownloadSystem> system_;
};

TEST_F(DownloadSystemTest, DownloadsMostThumbnails) {
  run_world(10, 4 * 3600.0);
  EXPECT_GT(cdn_->thumbnails_generated(), 300u);
  const double fetch_ratio =
      static_cast<double>(system_->downloads().size()) /
      static_cast<double>(cdn_->thumbnails_generated());
  EXPECT_GT(fetch_ratio, 0.9);  // a lean downloader misses very little
}

TEST_F(DownloadSystemTest, InterarrivalMatchesCdnCadence) {
  run_world(8, 4 * 3600.0);
  const auto gaps = system_->interarrival_times();
  ASSERT_GT(gaps.size(), 100u);
  const double median = stats::percentile(gaps, 50.0);
  EXPECT_GT(median, 290.0);
  EXPECT_LT(median, 400.0);
  // Fig. 13: the 90th percentile of thumbnail gaps is ~6 min.
  EXPECT_LT(stats::percentile(gaps, 90.0), 450.0);
}

TEST_F(DownloadSystemTest, WorkSpreadsAcrossDownloaders) {
  run_world(12, 2 * 3600.0, 4);
  const auto assignments = system_->downloader_assignments();
  int busy = 0;
  for (int count : assignments) {
    if (count > 0) ++busy;
  }
  EXPECT_GE(busy, 2);  // idle-steal spreads streamers around
}

TEST_F(DownloadSystemTest, OfflineStreamersSignalled) {
  cdn_ = std::make_unique<SimulatedCdn>(loop_, util::Rng(9));
  cdn_->add_session({"shortlived", 0.0, 1200.0});
  DownloadConfig config;
  config.num_downloaders = 1;
  system_ = std::make_unique<DownloadSystem>(loop_, *cdn_, kv_, config,
                                             util::Rng(10));
  system_->start();
  loop_.run_until(3600.0);
  EXPECT_GE(system_->offline_signals(), 1u);
}

TEST_F(DownloadSystemTest, CountersTrackRequestsAndDownloads) {
  run_world(10, 2 * 3600.0);
  auto value = [&](const char* name) {
    return registry_.counter(std::string("tero.download.") + name).value();
  };
  EXPECT_EQ(value("downloads"), system_->downloads().size());
  EXPECT_GE(value("get_requests"), value("downloads"));
  EXPECT_GE(value("head_requests"), value("downloads"));  // HEAD per fetch
  EXPECT_GT(value("api_polls"), 0u);
  EXPECT_GE(value("adoptions"), 10u);  // every streamer adopted at least once
  EXPECT_EQ(value("crashes"), 0u);
}

TEST_F(DownloadSystemTest, CrashRecoveryKeepsDownloading) {
  run_world(10, 4 * 3600.0, 3, /*crash_midway=*/true);
  EXPECT_EQ(system_->crashes(), 1);
  EXPECT_EQ(registry_.counter("tero.download.crashes").value(), 1u);
  EXPECT_GE(registry_.counter("tero.download.recovered_streamers").value(),
            1u);
  // Crash + recovery leave instant markers on the trace.
  EXPECT_GE(trace_.span_count(), 2u);
  // Downloads continue after the crash point.
  const double crash_time = 2 * 3600.0;
  bool post_crash = false;
  for (const auto& record : system_->downloads()) {
    if (record.time > crash_time + 900.0) post_crash = true;
  }
  EXPECT_TRUE(post_crash);
  // Still a healthy overall fetch ratio.
  const double fetch_ratio =
      static_cast<double>(system_->downloads().size()) /
      static_cast<double>(cdn_->thumbnails_generated());
  EXPECT_GT(fetch_ratio, 0.75);
}

// Randomized-but-seeded crash-time sweep (DESIGN.md §11): crash the system
// at a different point in every run and require that recovery (a) never
// orphans a streamer — every streamer keeps getting fetched after the
// crash — and (b) loses only downloads in flight around the crash window,
// compared against a crash-free run of the *same* world. The comparison is
// exact because the CDN's generation schedule is independent of client
// fetch behavior (thumbnail sizes come from a separate indexed generator).
TEST(DownloadCrashSweep, RecoveryNeverOrphansAndLosesOnlyInFlightWork) {
  constexpr int kStreamers = 6;
  constexpr double kHorizon = 3 * 3600.0;
  const auto run = [&](std::uint64_t seed, double crash_at,
                       std::vector<DownloadRecord>* out) {
    util::EventLoop loop;
    SimulatedCdn cdn(loop, util::Rng(seed));
    for (int i = 0; i < kStreamers; ++i) {
      cdn.add_session({"s" + std::to_string(i), i * 20.0, kHorizon});
    }
    store::KvStore kv;
    DownloadConfig config;
    config.num_downloaders = 2;
    DownloadSystem system(loop, cdn, kv, config, util::Rng(seed + 1000));
    system.start();
    if (crash_at > 0.0) {
      loop.schedule_at(crash_at, [&system] { system.crash_and_recover(); });
    }
    loop.run_until(kHorizon);
    *out = system.downloads();
  };

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    // The crash time itself is seed-derived: every run of the sweep
    // explores a different instant, every rerun explores the same ones.
    const double crash_at =
        util::Rng::indexed(20250807, seed).uniform(0.2, 0.8) * kHorizon;

    std::vector<DownloadRecord> reference;
    run(seed, /*crash_at=*/0.0, &reference);
    std::vector<DownloadRecord> crashed;
    run(seed, crash_at, &crashed);
    ASSERT_FALSE(reference.empty());

    // (a) No orphans: every streamer is fetched again after the crash.
    std::map<std::string, double> last_fetch;
    for (const auto& record : crashed) {
      last_fetch[record.streamer] =
          std::max(last_fetch[record.streamer], record.time);
    }
    ASSERT_EQ(last_fetch.size(), static_cast<std::size_t>(kStreamers))
        << "seed " << seed;
    for (const auto& [streamer, last] : last_fetch) {
      EXPECT_GT(last, crash_at) << "seed " << seed << ": " << streamer
                                << " never fetched after the crash at "
                                << crash_at;
    }

    // (b) Only in-flight work is lost: any (streamer, version) the
    // crash-free run fetched but the crashed run missed must have been
    // downloaded near the crash instant in the reference timeline.
    std::set<std::pair<std::string, std::uint64_t>> crashed_set;
    for (const auto& record : crashed) {
      crashed_set.insert({record.streamer, record.version});
    }
    constexpr double kRecoveryWindow = 900.0;  // re-adoption takes one poll
    for (const auto& record : reference) {
      if (crashed_set.count({record.streamer, record.version}) != 0) {
        continue;
      }
      EXPECT_GE(record.time, crash_at - kRecoveryWindow)
          << "seed " << seed << ": lost a download from long before the "
          << "crash (" << record.streamer << " v" << record.version << ")";
      EXPECT_LE(record.time, crash_at + kRecoveryWindow)
          << "seed " << seed << ": lost a download from long after the "
          << "crash (" << record.streamer << " v" << record.version << ")";
    }
  }
}

}  // namespace
}  // namespace tero::download

namespace cdn_loss_tests {
using namespace tero::download;

TEST(SimulatedCdn, UnfetchedThumbnailsAreLost) {
  // The overwrite-in-place contract: versions advance whether or not anyone
  // GETs them, so a lazy client loses footage permanently.
  tero::util::EventLoop loop;
  SimulatedCdn cdn(loop, tero::util::Rng(21));
  cdn.add_session({"lazy", 0.0, 2 * 3600.0});
  loop.run_until(2 * 3600.0);
  EXPECT_GT(cdn.versions_of("lazy"), 15u);
  EXPECT_EQ(cdn.thumbnails_fetched(), 0u);
}

TEST(SimulatedCdn, RepeatGetsOfSameVersionCountOnce) {
  tero::util::EventLoop loop;
  SimulatedCdn cdn(loop, tero::util::Rng(22));
  cdn.add_session({"eager", 0.0, 3600.0});
  loop.run_until(100.0);
  ASSERT_TRUE(cdn.get("eager").has_value());
  ASSERT_TRUE(cdn.get("eager").has_value());
  EXPECT_EQ(cdn.thumbnails_fetched(), 1u);
}

TEST(DownloadSystem, ApiRateLimitDefersPolling) {
  // A near-zero API budget: the coordinator must keep deferring polls
  // rather than dropping them, so discovery still happens — just late.
  tero::util::EventLoop loop;
  SimulatedCdn cdn(loop, tero::util::Rng(23));
  cdn.add_session({"s0", 0.0, 2 * 3600.0});
  tero::store::KvStore kv;
  DownloadConfig config;
  config.num_downloaders = 1;
  config.api_poll_interval = 10.0;  // wants to poll often...
  config.api_rate = 1.0 / 300.0;    // ...but gets a token every 5 min
  config.api_burst = 1.0;
  DownloadSystem system(loop, cdn, kv, config, tero::util::Rng(24));
  system.start();
  loop.run_until(2 * 3600.0);
  EXPECT_GT(system.downloads().size(), 5u);  // discovery happened anyway
}

}  // namespace cdn_loss_tests
