#include <gtest/gtest.h>

#include "social/locator.hpp"
#include "social/platform.hpp"

namespace tero::social {
namespace {

SocialProfile twitter_profile(std::string username, std::string location,
                              bool backlink) {
  SocialProfile profile;
  profile.username = username;
  profile.location_field = std::move(location);
  profile.bio = "Streamer and content creator.";
  if (backlink) {
    profile.links.push_back("https://twitch.tv/" + username);
  }
  return profile;
}

TEST(SocialProfile, BacklinkDetection) {
  const auto profile = twitter_profile("frostwolf1", "Madrid, Spain", true);
  EXPECT_TRUE(profile.links_to_twitch("frostwolf1"));
  EXPECT_TRUE(profile.links_to_twitch("FrostWolf1"));  // case-insensitive
  EXPECT_FALSE(profile.links_to_twitch("otherperson"));
}

TEST(SocialDirectory, FindIsCaseInsensitive) {
  SocialDirectory directory;
  directory.add(twitter_profile("NightFox", "", false));
  EXPECT_NE(directory.find("nightfox"), nullptr);
  EXPECT_EQ(directory.find("dayfox"), nullptr);
  EXPECT_EQ(directory.size(), 1u);
}

TEST(Locator, LocatesFromTwitchDescription) {
  SocialDirectory twitter;
  SocialDirectory steam;
  const Locator locator(twitter, steam);
  TwitchProfile profile;
  profile.username = "anyone";
  profile.description = "Streaming from Barcelona, Spain";
  const auto result = locator.locate(profile);
  ASSERT_TRUE(result.located());
  EXPECT_EQ(result.source, LocationSource::kTwitchDescription);
  EXPECT_EQ(result.location->city, "Barcelona");
}

TEST(Locator, LocatesViaTwitterWithBacklink) {
  SocialDirectory twitter;
  SocialDirectory steam;
  twitter.add(twitter_profile("pixelmage7", "Amsterdam, Netherlands", true));
  const Locator locator(twitter, steam);
  TwitchProfile profile;
  profile.username = "pixelmage7";
  profile.description = "Just here to have fun";
  const auto result = locator.locate(profile);
  ASSERT_TRUE(result.located());
  EXPECT_EQ(result.source, LocationSource::kTwitter);
  EXPECT_EQ(result.location->city, "Amsterdam");
}

TEST(Locator, RejectsSameUsernameWithoutBacklink) {
  // A stranger shares the username but never linked the Twitch account:
  // Tero must not associate them (§3.1 / §7).
  SocialDirectory twitter;
  SocialDirectory steam;
  twitter.add(twitter_profile("pixelmage7", "Amsterdam, Netherlands", false));
  const Locator locator(twitter, steam);
  TwitchProfile profile;
  profile.username = "pixelmage7";
  profile.description = "Just here to have fun";
  EXPECT_FALSE(locator.locate(profile).located());
}

TEST(Locator, FallsBackToSteam) {
  SocialDirectory twitter;
  SocialDirectory steam;
  SocialProfile steam_profile;
  steam_profile.username = "novaking3";
  steam_profile.bio = "Living in Stockholm. Streaming from Sweden";
  steam_profile.links.push_back("https://twitch.tv/novaking3");
  steam.add(std::move(steam_profile));
  const Locator locator(twitter, steam);
  TwitchProfile profile;
  profile.username = "novaking3";
  profile.description = "GM grind every day";
  const auto result = locator.locate(profile);
  ASSERT_TRUE(result.located());
  EXPECT_EQ(result.source, LocationSource::kSteam);
  EXPECT_EQ(result.location->country, "Sweden");
}

TEST(Locator, DescriptionTakesPriorityOverTwitter) {
  SocialDirectory twitter;
  SocialDirectory steam;
  twitter.add(twitter_profile("emberfox2", "Tokyo, Japan", true));
  const Locator locator(twitter, steam);
  TwitchProfile profile;
  profile.username = "emberfox2";
  profile.description = "Streaming from Barcelona, Spain";
  const auto result = locator.locate(profile);
  ASSERT_TRUE(result.located());
  EXPECT_EQ(result.source, LocationSource::kTwitchDescription);
  EXPECT_EQ(result.location->country, "Spain");
}

TEST(Locator, UnlocatableStreamer) {
  SocialDirectory twitter;
  SocialDirectory steam;
  const Locator locator(twitter, steam);
  TwitchProfile profile;
  profile.username = "mysteryperson";
  profile.description = "Coffee, games, repeat";
  EXPECT_FALSE(locator.locate(profile).located());
}

TEST(Locator, CountryTagRecoversInformalDescription) {
  SocialDirectory twitter;
  SocialDirectory steam;
  const Locator locator(twitter, steam);
  TwitchProfile profile;
  profile.username = "saltycat9";
  profile.description = "i love turkey sandwiches";
  profile.country_tag = "Turkey";
  const auto result = locator.locate(profile);
  ASSERT_TRUE(result.located());
  EXPECT_EQ(result.location->country, "Turkey");
}

}  // namespace
}  // namespace tero::social
