#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/loadgen.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "stats/descriptive.hpp"
#include "util/thread_pool.hpp"

namespace tero::cluster {
namespace {

serve::SnapshotEntry make_entry(const std::string& country,
                                const std::string& game,
                                std::vector<double> values) {
  serve::SnapshotEntry entry;
  entry.location.country = country;
  entry.game = game;
  entry.sorted_values = std::move(values);
  std::sort(entry.sorted_values.begin(), entry.sorted_values.end());
  entry.samples = entry.sorted_values.size();
  entry.mean_ms = entry.sorted_values.empty()
                      ? 0.0
                      : stats::mean(entry.sorted_values);
  if (!entry.sorted_values.empty()) {
    entry.box = stats::boxplot(entry.sorted_values);
  }
  entry.key = serve::entry_key(entry.location, entry.game);
  entry.streamers = 3;
  return entry;
}

/// A synthetic keyspace big enough to land on every node of a small ring.
std::vector<serve::SnapshotEntry> many_entries(std::size_t n = 48) {
  static const char* const kGames[] = {"lol", "valorant", "fortnite",
                                       "dota2"};
  std::vector<serve::SnapshotEntry> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string country =
        std::string(1, static_cast<char>('A' + i % 26)) +
        std::string(1, static_cast<char>('A' + (i / 26) % 26));
    const double base = 20.0 + static_cast<double>(i);
    entries.push_back(make_entry(country, kGames[i % 4],
                                 {base, base + 5, base + 11, base + 18,
                                  base + 40}));
  }
  return entries;
}

ClusterConfig small_config(std::uint64_t seed = 1) {
  ClusterConfig config;
  config.nodes = 4;
  config.replicas = 2;
  config.staleness_budget = 2;
  config.seed = seed;
  return config;
}

serve::Query query_for(const serve::SnapshotEntry& entry) {
  serve::Query query;
  query.kind = serve::QueryKind::kCount;
  query.location = entry.location;
  query.game = entry.game;
  return query;
}

TEST(Cluster, LeaderReadsFreshFollowerServesStaleWithinBudget) {
  Cluster cluster(small_config());
  cluster.publish(many_entries(), 0);
  const auto entry = many_entries()[0];
  const serve::Query query = query_for(entry);

  // t = 1s: every delivery (50..450 ms delay) has applied; the leader
  // serves fresh.
  const RouteDecision fresh = cluster.route(query, 1000, 0);
  ASSERT_NE(fresh.snapshot, nullptr);
  EXPECT_FALSE(fresh.stale);
  EXPECT_EQ(fresh.stale_age, 0u);
  const auto owners = cluster.owners_of(query);
  ASSERT_EQ(owners.size(), 2u);
  EXPECT_EQ(fresh.node, owners[0]);

  // Advance the epoch, then kill the leader: the follower still holds the
  // previous epoch (replication is in flight) and answers STALE{1}.
  cluster.republish(1000);
  cluster.kill(cluster.index_of(owners[0]));
  const RouteDecision degraded = cluster.route(query, 1001, 1);
  ASSERT_NE(degraded.snapshot, nullptr);
  EXPECT_EQ(degraded.node, owners[1]);
  EXPECT_TRUE(degraded.stale);
  EXPECT_EQ(degraded.stale_age, 1u);
  EXPECT_LE(degraded.stale_age, cluster.config().staleness_budget);
  EXPECT_EQ(degraded.attempts, 2u);

  // The served value must equal the pure answer from the stale epoch.
  const serve::QueryResponse expect =
      serve::answer(query, *degraded.snapshot);
  EXPECT_EQ(expect.status, serve::QueryStatus::kOk);
  EXPECT_DOUBLE_EQ(expect.value, static_cast<double>(entry.samples));
}

TEST(Cluster, PartitionedFollowerRefusesBeyondBudgetAndFailsOver) {
  ClusterConfig config = small_config();
  config.nodes = 2;
  config.replicas = 2;
  Cluster cluster(config);
  cluster.publish(many_entries(), 0);
  const serve::Query query = query_for(many_entries()[0]);
  const auto owners = cluster.owners_of(query);
  ASSERT_EQ(owners.size(), 2u);
  const std::size_t leader = cluster.index_of(owners[0]);
  const std::size_t follower = cluster.index_of(owners[1]);

  // Let the follower apply epoch 1, then partition its replication link
  // and push the epoch budget+1 ahead: its lag exceeds the budget.
  (void)cluster.route(query, 1000, 0);
  cluster.partition(follower, true);
  for (std::uint64_t e = 0; e <= config.staleness_budget; ++e) {
    cluster.republish(1000 + e);
  }
  // Kill the leader: the partitioned follower is the only owner left, but
  // serving would exceed the budget — it must refuse, never answer with
  // age > budget.
  cluster.kill(leader);
  const RouteDecision refused = cluster.route(query, 2000, 1);
  EXPECT_EQ(refused.snapshot, nullptr);
  EXPECT_EQ(refused.no_answer, serve::QueryStatus::kUnavailable);

  // Healing the link and publishing again catches the follower up.
  cluster.partition(follower, false);
  cluster.republish(2000);
  const RouteDecision healed = cluster.route(query, 3000, 2);
  ASSERT_NE(healed.snapshot, nullptr);
  EXPECT_LE(healed.stale_age, config.staleness_budget);
}

TEST(Cluster, OwnershipAuditHoldsAcrossEveryMembershipChange) {
  Cluster cluster(small_config());
  cluster.publish(many_entries(96), 0);
  EXPECT_TRUE(cluster.audit().ok);
  const auto snapshot = cluster.snapshot();
  ASSERT_NE(snapshot, nullptr);

  // Join: the incremental hand-off (remap_diff-driven) must agree with a
  // full ring recompute, move <= the documented bound, and lose nothing.
  std::vector<std::string> before_owner;
  for (const auto& entry : snapshot->entries()) {
    before_owner.push_back(cluster.owners_of(query_for(entry))[0]);
  }
  const std::string joined = cluster.join(100);
  EXPECT_EQ(joined, "node-4");
  OwnershipAudit audit = cluster.audit();
  EXPECT_TRUE(audit.ok) << "lost " << audit.lost << ", double "
                        << audit.double_owned << ", misplaced "
                        << audit.misplaced;
  EXPECT_EQ(audit.keys, snapshot->size());
  const store::RemapDiff& join_diff = cluster.last_remap();
  EXPECT_FALSE(join_diff.empty());
  EXPECT_LT(join_diff.moved_fraction(),
            2.0 / static_cast<double>(cluster.node_count()));
  // Cross-check the diff against brute-force owner comparison, and that
  // every moved key moved *to* the joiner.
  std::size_t i = 0;
  for (const auto& entry : snapshot->entries()) {
    const std::string now = cluster.owners_of(query_for(entry))[0];
    EXPECT_EQ(join_diff.moved(entry.key), now != before_owner[i]);
    if (now != before_owner[i]) {
      EXPECT_EQ(now, joined);
    }
    ++i;
  }

  // Kill does not change ownership (the ring keeps the node).
  cluster.kill(0);
  EXPECT_TRUE(cluster.audit().ok);
  cluster.restart(0, 200);
  EXPECT_TRUE(cluster.audit().ok);

  // Leave: ranges move to ring successors; nothing lost or double-owned.
  ASSERT_TRUE(cluster.leave(joined));
  audit = cluster.audit();
  EXPECT_TRUE(audit.ok);
  EXPECT_LT(cluster.last_remap().moved_fraction(),
            2.0 / static_cast<double>(cluster.node_count() + 1));
  std::size_t claimed_total = 0;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    claimed_total += cluster.claimed_keys(n);
  }
  EXPECT_EQ(claimed_total, snapshot->size());
}

TEST(Cluster, AllOwnersDownIsExplicitlyUnavailable) {
  ClusterConfig config = small_config();
  config.nodes = 2;
  Cluster cluster(config);
  cluster.publish(many_entries(), 0);
  cluster.kill(0);
  cluster.kill(1);
  const RouteDecision decision =
      cluster.route(query_for(many_entries()[0]), 1000, 0);
  EXPECT_EQ(decision.snapshot, nullptr);
  EXPECT_EQ(decision.no_answer, serve::QueryStatus::kUnavailable);
}

/// Satellite gate: bounded staleness + bit-identical checksums, 10 seeds,
/// 1 vs 8 threads, with replication churn (partitions + republishes)
/// running mid-sweep.
TEST(ClusterLoadGen, BoundedStalenessAndChecksumAcross10SeedsAndThreads) {
  const auto entries = many_entries(64);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto sweep = [&](std::size_t threads) {
      ClusterConfig config = small_config(seed);
      Cluster cluster(config);
      cluster.publish(std::vector<serve::SnapshotEntry>(entries), 0);
      ClusterLoadConfig load;
      load.queries = 2000;
      load.seed = seed;
      load.offered_qps = 2000.0;  // 1 s sweep
      load.policy = seed % 2 == 0 ? ReadPolicy::kFollowerPreferred
                                  : ReadPolicy::kLeaderOnly;
      load.events = {
          {ClusterEvent::Kind::kPartition, 100, 1},
          {ClusterEvent::Kind::kRepublish, 200, 0},
          {ClusterEvent::Kind::kRepublish, 400, 0},
          {ClusterEvent::Kind::kRepublish, 600, 0},
          {ClusterEvent::Kind::kHeal, 700, 1},
          {ClusterEvent::Kind::kRepublish, 800, 0},
      };
      util::ThreadPool pool(threads);
      return run_cluster_loadtest(cluster, load,
                                  threads > 1 ? &pool : nullptr);
    };
    const ClusterLoadReport serial = sweep(1);
    const ClusterLoadReport parallel = sweep(8);

    // Bit-identical responses at any thread count.
    EXPECT_EQ(serial.checksum, parallel.checksum) << "seed " << seed;
    EXPECT_EQ(serial.ok, parallel.ok) << "seed " << seed;
    EXPECT_EQ(serial.stale, parallel.stale) << "seed " << seed;
    EXPECT_EQ(serial.unavailable, parallel.unavailable) << "seed " << seed;
    EXPECT_EQ(serial.stale_age_hist, parallel.stale_age_hist)
        << "seed " << seed;

    // Bounded staleness: no served answer ever lags past the budget.
    EXPECT_LE(serial.stale_age_max, 2u) << "seed " << seed;
    EXPECT_EQ(serial.stale_age_hist.size(), 3u);
    // The churn actually produced stale serving (the property is not
    // holding vacuously).
    EXPECT_GT(serial.stale, 0u) << "seed " << seed;
    EXPECT_EQ(serial.issued, 2000u);
  }
}

TEST(ClusterLoadGen, ChecksumIdenticalWithKillAndJoinMidSweep) {
  const auto entries = many_entries(64);
  const auto sweep = [&](std::size_t threads) {
    ClusterConfig config = small_config(7);
    config.nodes = 5;
    Cluster cluster(config);
    cluster.publish(std::vector<serve::SnapshotEntry>(entries), 0);
    ClusterLoadConfig load;
    load.queries = 4000;
    load.seed = 7;
    load.offered_qps = 4000.0;
    // The kill waits out the initial replication window (<= 450 ms), so
    // the dead leader's followers all hold an in-budget epoch.
    load.events = {
        {ClusterEvent::Kind::kRepublish, 150, 0},
        {ClusterEvent::Kind::kKill, 500, 1},
        {ClusterEvent::Kind::kJoin, 650, 0},
        {ClusterEvent::Kind::kRepublish, 750, 0},
        {ClusterEvent::Kind::kRestart, 850, 1},
    };
    util::ThreadPool pool(threads);
    const ClusterLoadReport report =
        run_cluster_loadtest(cluster, load, threads > 1 ? &pool : nullptr);
    // The mid-sweep join must leave the keyspace fully owned.
    EXPECT_TRUE(cluster.audit().ok);
    EXPECT_EQ(cluster.node_count(), 6u);
    return report;
  };
  const ClusterLoadReport serial = sweep(1);
  const ClusterLoadReport parallel = sweep(8);
  EXPECT_EQ(serial.checksum, parallel.checksum);
  EXPECT_EQ(serial.availability, parallel.availability);
  EXPECT_EQ(serial.stale_age_hist, parallel.stale_age_hist);
  EXPECT_EQ(serial.events_applied, 5u);
  EXPECT_EQ(parallel.events_applied, 5u);
  // One kill among five nodes with two replicas: followers keep serving.
  EXPECT_GE(serial.availability, 0.99);
  EXPECT_LE(serial.stale_age_max, small_config().staleness_budget);
}

/// Satellite gate: the killed node's breaker state is exported as a
/// labeled gauge and a burn-rate SLO on it fires within one scrape of the
/// kill (mirrors the PR 7 chaos gate, but through cluster routing).
TEST(ClusterLoadGen, KilledNodeBreakerFiresWithinOneScrape) {
  obs::MetricsRegistry registry;
  obs::TimelineConfig timeline_config;
  timeline_config.scrape_every_ms = 1000;
  timeline_config.prefixes = {"tero.cluster.", "tero.fault.breaker"};
  obs::MetricsTimeline timeline(registry, timeline_config);
  obs::SloTracker tracker;
  const std::string slo_name = tracker.add(
      "slo node1: value(tero.fault.breaker{endpoint=node-1}) < 1 "
      "over 10s window, budget 1%");
  tracker.attach(timeline);

  ClusterConfig config = small_config(3);
  config.metrics = &registry;
  Cluster cluster(config);
  cluster.publish(many_entries(64), 0);

  ClusterLoadConfig load;
  load.queries = 8000;
  load.seed = 3;
  load.offered_qps = 2000.0;  // 4 s sweep
  load.metrics = &registry;
  load.timeline = &timeline;
  constexpr std::uint64_t kKillMs = 2000;
  load.events = {{ClusterEvent::Kind::kKill, kKillMs, 1}};
  const ClusterLoadReport report =
      run_cluster_loadtest(cluster, load, nullptr);

  // Replication lag is exported per node as a labeled gauge.
  EXPECT_TRUE(timeline.has_series("tero.cluster.repl_lag{node=node-1}"));
  EXPECT_TRUE(timeline.has_series("tero.fault.breaker{endpoint=node-1}"));

  // The breaker opens after failure_threshold consecutive failures — at
  // 2000 qps that is milliseconds after the kill — so the next scrape
  // (<= one interval later) sees state 1 and the SLO fires there.
  ASSERT_TRUE(tracker.fired(slo_name));
  std::uint64_t first_fire_ms = 0;
  for (const auto& alert : tracker.alerts()) {
    if (alert.firing) {
      first_fire_ms = alert.t_ms;
      break;
    }
  }
  EXPECT_GT(first_fire_ms, kKillMs);
  EXPECT_LE(first_fire_ms, kKillMs + 2 * timeline_config.scrape_every_ms);

  // Followers absorbed the killed node's ranges: availability holds.
  EXPECT_GE(report.availability, 0.99);
  EXPECT_EQ(cluster.breaker_state(1), fault::CircuitBreaker::State::kOpen);
}

TEST(ClusterLoadGen, FollowerPreferredPolicyProducesStaleServing) {
  const auto entries = many_entries(64);
  ClusterConfig config = small_config(5);
  Cluster cluster(config);
  cluster.publish(std::vector<serve::SnapshotEntry>(entries), 0);
  ClusterLoadConfig load;
  load.queries = 2000;
  load.seed = 5;
  load.offered_qps = 2000.0;
  load.policy = ReadPolicy::kFollowerPreferred;
  load.events = {{ClusterEvent::Kind::kRepublish, 500, 0}};
  const ClusterLoadReport report =
      run_cluster_loadtest(cluster, load, nullptr);
  // After the mid-sweep epoch bump, follower-preferred reads lag until the
  // delivery applies — some answers must be STALE, none beyond budget.
  EXPECT_GT(report.stale, 0u);
  EXPECT_LE(report.stale_age_max, config.staleness_budget);
  EXPECT_EQ(report.unavailable, 0u);
}

}  // namespace
}  // namespace tero::cluster
