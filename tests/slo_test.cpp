#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"

namespace tero::obs {
namespace {

TEST(SloSpec, ParsesTheFullGrammar) {
  const SloSpec spec = SloSpec::parse(
      "slo latency: p99(tero.loadgen.latency_ms) < 15ms over 60s window, "
      "budget 0.1%");
  EXPECT_EQ(spec.name, "latency");
  EXPECT_EQ(spec.stat, SloSpec::Stat::kP99);
  EXPECT_EQ(spec.series, "tero.loadgen.latency_ms");
  EXPECT_DOUBLE_EQ(spec.threshold, 15.0);
  EXPECT_TRUE(spec.less_than);
  EXPECT_EQ(spec.window_ms, 60'000u);
  EXPECT_DOUBLE_EQ(spec.budget, 0.001);
}

TEST(SloSpec, GrammarVariantsAndUnits) {
  // "slo" prefix, the "window" keyword, and the comma are all optional;
  // the "s" unit scales seconds into the milliseconds histograms record.
  const SloSpec spec =
      SloSpec::parse("avail: value(tero.fault.breaker) > 0.5s over 10s "
                     "budget 5%");
  EXPECT_EQ(spec.name, "avail");
  EXPECT_EQ(spec.stat, SloSpec::Stat::kValue);
  EXPECT_DOUBLE_EQ(spec.threshold, 500.0);
  EXPECT_FALSE(spec.less_than);
  EXPECT_EQ(spec.window_ms, 10'000u);
  EXPECT_DOUBLE_EQ(spec.budget, 0.05);
}

TEST(SloSpec, ToStringRoundTrips) {
  const char* text =
      "slo latency: p90(tero.x.ms) < 5ms over 30s window, budget 1%";
  const SloSpec once = SloSpec::parse(text);
  const SloSpec twice = SloSpec::parse(once.to_string());
  EXPECT_EQ(once.to_string(), twice.to_string());
  EXPECT_EQ(twice.stat, SloSpec::Stat::kP90);
  EXPECT_EQ(twice.window_ms, 30'000u);
}

TEST(SloSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(SloSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(SloSpec::parse("no colon here"), std::invalid_argument);
  EXPECT_THROW(SloSpec::parse("x: p98(tero.a) < 1 over 10s budget 1%"),
               std::invalid_argument);  // unknown stat
  EXPECT_THROW(SloSpec::parse("x: p99(tero.a) < abc over 10s budget 1%"),
               std::invalid_argument);  // bad threshold
  EXPECT_THROW(SloSpec::parse("x: p99(tero.a) < 1 over 10s"),
               std::invalid_argument);  // missing budget
  EXPECT_THROW(SloSpec::parse("x: p99(tero.a) < 1 budget 1%"),
               std::invalid_argument);  // missing window
}

/// Drives one counter-rate SLO through a scripted schedule of deltas.
struct RateHarness {
  MetricsRegistry registry;
  MetricsTimeline timeline;
  SloTracker tracker;
  Counter* counter;
  std::uint64_t now_ms = 0;

  explicit RateHarness(const std::string& spec,
                       SloTracker::Config config = {})
      : timeline(registry, TimelineConfig{}), tracker(config) {
    counter = &registry.counter("tero.test.errors");
    tracker.add(spec);
    tracker.attach(timeline);
  }

  /// One scrape interval with `delta` new errors.
  void tick(std::uint64_t delta) {
    counter->add(delta);
    now_ms += 1000;
    timeline.advance_to(now_ms);
  }
};

TEST(SloTracker, BurnRateIsBadFractionOverBudget) {
  // budget 50%: a bad scrape is "affordable" half the time, so burn =
  // bad_fraction / 0.5. Window 10 s, fast window 5 s (default).
  RateHarness h("errs: rate(tero.test.errors) < 5 over 10s budget 50%");
  h.tick(0);  // good
  h.tick(0);  // good
  h.tick(10);  // bad: 10 errors/s >= 5
  h.tick(10);  // bad
  const auto status = h.tracker.status();
  ASSERT_EQ(status.size(), 1u);
  // Fast window (5 s) saw 4 verdicts, 2 bad: burn = (2/4) / 0.5 = 1.0.
  EXPECT_DOUBLE_EQ(status[0].burn_fast, 1.0);
  EXPECT_DOUBLE_EQ(status[0].burn_slow, 1.0);
  EXPECT_EQ(status[0].good, 2u);
  EXPECT_EQ(status[0].bad, 2u);
  EXPECT_TRUE(status[0].firing);  // both windows at the threshold
}

TEST(SloTracker, OneBlipDoesNotFireTheMultiWindowGuard) {
  // budget 10%, slow window 20 s: a single bad scrape pushes the *fast*
  // burn over 1.0 but the slow window absorbs it — no alert.
  RateHarness h("errs: rate(tero.test.errors) < 5 over 20s budget 10%");
  for (int i = 0; i < 19; ++i) h.tick(0);
  h.tick(50);  // one blip
  const auto status = h.tracker.status();
  EXPECT_GE(status[0].burn_fast, 1.0);   // 1 bad of 5 fast verdicts / 0.1
  EXPECT_LT(status[0].burn_slow, 1.0);   // 1 bad of 20 slow verdicts / 0.1
  EXPECT_FALSE(status[0].firing);
  EXPECT_TRUE(h.tracker.alerts().empty());
}

TEST(SloTracker, FiresAndResolvesWithAnAlertLog) {
  RateHarness h("errs: rate(tero.test.errors) < 5 over 10s budget 50%");
  h.tick(10);  // bad: both windows instantly at burn 2.0
  ASSERT_EQ(h.tracker.alerts().size(), 1u);
  EXPECT_TRUE(h.tracker.alerts()[0].firing);
  EXPECT_EQ(h.tracker.alerts()[0].t_ms, 1000u);
  EXPECT_TRUE(h.tracker.fired("errs"));
  EXPECT_FALSE(h.tracker.fired("errs", 2000));  // nothing at/after 2 s yet
  EXPECT_FALSE(h.tracker.fired("other"));

  // Recovery: good scrapes dilute both windows below the threshold.
  for (int i = 0; i < 12; ++i) h.tick(0);
  ASSERT_EQ(h.tracker.alerts().size(), 2u);
  EXPECT_FALSE(h.tracker.alerts()[1].firing);
  EXPECT_FALSE(h.tracker.status()[0].firing);
}

TEST(SloTracker, GaugeSloFiresWithinOneScrapeOfTheBadState) {
  // The chaos gate's shape: value(breaker) < 1, i.e. the breaker leaving
  // kClosed must raise the alert at the very next scrape.
  MetricsRegistry registry;
  MetricsTimeline timeline(registry, TimelineConfig{});
  SloTracker tracker;
  tracker.add("breaker: value(tero.test.state) < 1 over 10s budget 1%");
  tracker.attach(timeline);
  auto& state = registry.gauge("tero.test.state");
  state.set(0.0);
  timeline.advance_to(1000);
  EXPECT_FALSE(tracker.fired("breaker"));
  state.set(1.0);  // trips between scrapes
  timeline.advance_to(2000);
  ASSERT_TRUE(tracker.fired("breaker"));
  EXPECT_EQ(tracker.alerts().front().t_ms, 2000u);
}

TEST(SloTracker, AlertLogAndJsonAreDeterministic) {
  const auto run = [] {
    RateHarness h("errs: rate(tero.test.errors) < 5 over 10s budget 25%");
    for (const std::uint64_t delta :
         {0u, 0u, 9u, 9u, 9u, 0u, 0u, 0u, 0u, 0u, 0u, 0u, 0u, 0u}) {
      h.tick(delta);
    }
    std::ostringstream out;
    h.tracker.write_json(out);
    return out.str();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  // And it is machine-readable: the CI bit-identity diff parses it too.
  const auto parsed = parse_json(first);
  EXPECT_TRUE(parsed.contains("slos"));
  EXPECT_TRUE(parsed.contains("alerts"));
}

TEST(SloTracker, TableListsEverySlo) {
  RateHarness h("errs: rate(tero.test.errors) < 5 over 10s budget 25%");
  h.tick(0);
  std::ostringstream out;
  h.tracker.write_table(out);
  EXPECT_NE(out.str().find("errs"), std::string::npos);
}

}  // namespace
}  // namespace tero::obs
