#include <gtest/gtest.h>

#include "anomaly/detector.hpp"
#include "anomaly/iqr.hpp"
#include "anomaly/pelt.hpp"
#include "util/rng.hpp"

namespace tero::anomaly {
namespace {

/// A latency-like series: base level with noise and planted outliers.
std::vector<double> series_with_outliers(std::vector<std::size_t> outlier_at,
                                         double base = 45.0,
                                         double outlier = 140.0,
                                         std::size_t n = 200) {
  util::Rng rng(17);
  std::vector<double> series(n);
  for (std::size_t i = 0; i < n; ++i) series[i] = base + rng.normal(0.0, 2.0);
  for (std::size_t i : outlier_at) series[i] = outlier;
  return series;
}

TEST(Iqr, FlagsTailsOnly) {
  const auto series = series_with_outliers({50, 120});
  const auto flags = iqr_outliers(series, 1.5);
  EXPECT_TRUE(flags[50]);
  EXPECT_TRUE(flags[120]);
  int flagged = 0;
  for (bool flag : flags) {
    if (flag) ++flagged;
  }
  EXPECT_LE(flagged, 8);
}

TEST(Iqr, TinyInputNeverFlags) {
  const std::vector<double> tiny = {1.0, 100.0};
  for (bool flag : iqr_outliers(tiny)) EXPECT_FALSE(flag);
}

class DetectorTest
    : public ::testing::TestWithParam<std::function<
          std::unique_ptr<AnomalyDetector>()>> {};

TEST_P(DetectorTest, FindsPlantedOutliers) {
  const auto detector = GetParam()();
  const auto series = series_with_outliers({30, 31, 150});
  const auto flags = detector->detect(series);
  ASSERT_EQ(flags.size(), series.size());
  EXPECT_TRUE(flags[30]) << detector->name();
  EXPECT_TRUE(flags[150]) << detector->name();
}

TEST_P(DetectorTest, QuietOnCleanSeries) {
  const auto detector = GetParam()();
  const auto series = series_with_outliers({});
  const auto flags = detector->detect(series);
  int flagged = 0;
  for (bool flag : flags) {
    if (flag) ++flagged;
  }
  // A handful of borderline flags is tolerable; mass false positives not.
  EXPECT_LE(flagged, static_cast<int>(series.size() / 10)) << detector->name();
}

TEST_P(DetectorTest, HandlesDegenerateInputs) {
  const auto detector = GetParam()();
  EXPECT_TRUE(detector->detect(std::vector<double>{}).empty());
  const std::vector<double> constant(20, 42.0);
  const auto flags = detector->detect(constant);
  for (bool flag : flags) EXPECT_FALSE(flag) << detector->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectors, DetectorTest,
    ::testing::Values([] { return make_lof(); },
                      [] { return make_iforest(); },
                      [] { return make_mcd(); }));

TEST(Lof, KControlsSensitivity) {
  // A tight pair of outliers: with K=1 each outlier has a near neighbour
  // (the other outlier) and is considered normal; larger K catches them.
  auto series = series_with_outliers({});
  series[10] = 140.0;
  series[11] = 141.0;
  const auto lenient = make_lof(1)->detect(series);
  const auto strict = make_lof(8)->detect(series);
  EXPECT_FALSE(lenient[10]);
  EXPECT_TRUE(strict[10]);
}

TEST(Mcd, RobustToHalfContaminationLess) {
  // 30% contamination at a high level: the classic mean/σ would shift, the
  // MCD estimate stays at the clean mode.
  util::Rng rng(5);
  std::vector<double> series;
  for (int i = 0; i < 140; ++i) series.push_back(40.0 + rng.normal(0, 1.5));
  for (int i = 0; i < 60; ++i) series.push_back(200.0 + rng.normal(0, 1.5));
  const auto flags = make_mcd(0.05)->detect(series);
  int high_flagged = 0;
  for (int i = 140; i < 200; ++i) {
    if (flags[i]) ++high_flagged;
  }
  EXPECT_EQ(high_flagged, 60);
  int low_flagged = 0;
  for (int i = 0; i < 140; ++i) {
    if (flags[i]) ++low_flagged;
  }
  EXPECT_LT(low_flagged, 10);
}

TEST(Pelt, FindsSingleChangepoint) {
  util::Rng rng(3);
  std::vector<double> series;
  for (int i = 0; i < 100; ++i) series.push_back(40.0 + rng.normal(0, 2));
  for (int i = 0; i < 100; ++i) series.push_back(80.0 + rng.normal(0, 2));
  const auto changepoints = pelt_changepoints(series, 20.0);
  ASSERT_FALSE(changepoints.empty());
  bool near_100 = false;
  for (std::size_t cp : changepoints) {
    if (cp >= 95 && cp <= 105) near_100 = true;
  }
  EXPECT_TRUE(near_100);
}

TEST(Pelt, NoChangepointOnStationarySeries) {
  util::Rng rng(4);
  std::vector<double> series;
  for (int i = 0; i < 200; ++i) series.push_back(40.0 + rng.normal(0, 2));
  EXPECT_LE(pelt_changepoints(series, 50.0).size(), 1u);
}

TEST(Pelt, FindsMultipleLevels) {
  util::Rng rng(6);
  std::vector<double> series;
  for (int level : {40, 90, 40}) {
    for (int i = 0; i < 80; ++i) {
      series.push_back(level + rng.normal(0, 2));
    }
  }
  const auto changepoints = pelt_changepoints(series, 20.0);
  EXPECT_GE(changepoints.size(), 2u);
}

TEST(Pelt, ShortSeriesSafe) {
  EXPECT_TRUE(pelt_changepoints(std::vector<double>{1, 2}).empty());
}

}  // namespace
}  // namespace tero::anomaly
