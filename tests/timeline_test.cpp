#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "obs/timeline.hpp"
#include "serve/loadgen.hpp"
#include "serve/service.hpp"
#include "util/thread_pool.hpp"

namespace tero::obs {
namespace {

TEST(Timeline, ScrapesEveryIntervalBoundaryCrossed) {
  MetricsRegistry registry;
  auto& counter = registry.counter("tero.test.events");
  TimelineConfig config;
  config.scrape_every_ms = 100;
  MetricsTimeline timeline(registry, config);

  counter.add(3);
  timeline.advance_to(50);  // before the first boundary: nothing yet
  EXPECT_EQ(timeline.snapshot_count(), 0u);
  timeline.advance_to(100);
  EXPECT_EQ(timeline.snapshot_count(), 1u);
  EXPECT_EQ(timeline.counter_total("tero.test.events"), 3u);

  // A big jump emits every intermediate snapshot — history has no gaps.
  counter.add(7);
  timeline.advance_to(450);
  EXPECT_EQ(timeline.snapshot_count(), 4u);
  EXPECT_EQ(timeline.snapshot_times(),
            (std::vector<std::uint64_t>{100, 200, 300, 400}));
  // The jump's whole delta lands on the first boundary it crosses.
  EXPECT_DOUBLE_EQ(timeline.increase("tero.test.events", 300), 7.0);
  EXPECT_EQ(timeline.counter_total("tero.test.events"), 10u);
}

TEST(Timeline, FlushCapturesThePartialTail) {
  MetricsRegistry registry;
  auto& counter = registry.counter("tero.test.events");
  TimelineConfig config;
  config.scrape_every_ms = 1000;
  MetricsTimeline timeline(registry, config);

  counter.add(5);
  timeline.advance_to(1000);
  counter.add(2);  // lands in the short tail after the last boundary
  timeline.flush(1300);
  ASSERT_EQ(timeline.snapshot_count(), 2u);
  EXPECT_EQ(timeline.last_scrape_ms(), 1300u);
  EXPECT_EQ(timeline.counter_total("tero.test.events"), 7u);
  // Flushing again at the same time is a no-op (idempotent end-of-run).
  timeline.flush(1300);
  EXPECT_EQ(timeline.snapshot_count(), 2u);
}

TEST(Timeline, DownsamplesAtExactCapacityBoundary) {
  MetricsRegistry registry;
  auto& counter = registry.counter("tero.test.events");
  TimelineConfig config;
  config.scrape_every_ms = 10;
  config.capacity = 4;
  MetricsTimeline timeline(registry, config);

  // Exactly `capacity` snapshots: no downsample yet.
  for (int i = 0; i < 4; ++i) {
    counter.add(1);
    timeline.scrape(static_cast<std::uint64_t>(10 * (i + 1)));
  }
  EXPECT_EQ(timeline.snapshot_count(), 4u);
  EXPECT_EQ(timeline.scrape_interval_ms(), 10u);

  // One more crosses the capacity: adjacent pairs merge, interval doubles.
  counter.add(1);
  timeline.scrape(50);
  EXPECT_EQ(timeline.snapshot_count(), 3u);
  EXPECT_EQ(timeline.scrape_interval_ms(), 20u);
  // The merge keeps the later timestamp of each pair and drops no deltas:
  // prefix sums still recover the exact totals.
  EXPECT_EQ(timeline.snapshot_times(),
            (std::vector<std::uint64_t>{20, 40, 50}));
  EXPECT_EQ(timeline.counter_total("tero.test.events"), 5u);
  EXPECT_DOUBLE_EQ(timeline.increase("tero.test.events", 50), 5.0);
}

TEST(Timeline, RateIsPerSecondOverTheTrailingWindow) {
  MetricsRegistry registry;
  auto& counter = registry.counter("tero.test.events");
  TimelineConfig config;
  config.scrape_every_ms = 1000;
  MetricsTimeline timeline(registry, config);

  counter.add(10);
  timeline.advance_to(1000);
  counter.add(30);
  timeline.advance_to(2000);
  // Last 1 s saw 30 events -> 30/s; the full 2 s saw 40 -> 20/s.
  EXPECT_DOUBLE_EQ(timeline.rate("tero.test.events", 1000), 30.0);
  EXPECT_DOUBLE_EQ(timeline.rate("tero.test.events", 2000), 20.0);
  EXPECT_DOUBLE_EQ(timeline.rate("tero.test.unknown", 1000), 0.0);
}

TEST(Timeline, WindowedQuantileIsolatesTheWindow) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("tero.test.ms", {1.0, 10.0, 100.0});
  TimelineConfig config;
  config.scrape_every_ms = 1000;
  MetricsTimeline timeline(registry, config);

  for (int i = 0; i < 100; ++i) histogram.observe(2.0);  // slow-free era
  timeline.advance_to(1000);
  for (int i = 0; i < 100; ++i) histogram.observe(50.0);  // slow era
  timeline.advance_to(2000);

  // Trailing 1 s saw only the 50 ms samples; the sketch guarantees 1%
  // relative error, so a loose 5% tolerance is safe.
  EXPECT_NEAR(timeline.quantile("tero.test.ms", 0.5, 1000), 50.0, 2.5);
  // The full-history window mixes the eras: its median is the slow-free era.
  EXPECT_NEAR(timeline.quantile("tero.test.ms", 0.25, 2000), 2.0, 0.1);
  EXPECT_EQ(timeline.windowed_count("tero.test.ms", 1000), 100u);
  EXPECT_EQ(timeline.windowed_count("tero.test.ms", 2000), 200u);
  EXPECT_NEAR(timeline.windowed_mean("tero.test.ms", 1000), 50.0, 1e-9);
  EXPECT_NEAR(timeline.windowed_mean("tero.test.ms", 2000), 26.0, 1e-9);
}

TEST(Timeline, PrefixFilterGatesWhichSeriesAreScraped) {
  MetricsRegistry registry;
  registry.counter("tero.loadgen.queries").add(1);
  registry.counter("tero.serve.cache_hits").add(1);
  registry.gauge("tero.loadgen.depth").set(2.0);
  TimelineConfig config;
  config.prefixes = {"tero.loadgen."};
  MetricsTimeline timeline(registry, config);
  timeline.scrape(1000);
  EXPECT_TRUE(timeline.has_series("tero.loadgen.queries"));
  EXPECT_TRUE(timeline.has_series("tero.loadgen.depth"));
  EXPECT_FALSE(timeline.has_series("tero.serve.cache_hits"));
}

TEST(Timeline, SeriesCreatedMidRunJoinLaterSnapshots) {
  // The scrape-series cache keys on the registry's mutation epoch: a series
  // created after the first scrape must still be picked up by the next one.
  MetricsRegistry registry;
  registry.counter("tero.test.first").add(1);
  MetricsTimeline timeline(registry, TimelineConfig{});
  timeline.scrape(1000);
  registry.counter("tero.test.second").add(9);
  timeline.scrape(2000);
  EXPECT_EQ(timeline.counter_total("tero.test.first"), 1u);
  EXPECT_EQ(timeline.counter_total("tero.test.second"), 9u);

  std::ostringstream out;
  timeline.write_json(out);
  const auto parsed = parse_json(out.str());
  const auto& snaps = parsed.at("snapshots").array;
  ASSERT_EQ(snaps.size(), 2u);
  // The late series is absent from the first snapshot, present afterwards.
  EXPECT_FALSE(snaps[0].at("counters").contains("tero.test.second"));
  EXPECT_TRUE(snaps[1].at("counters").contains("tero.test.second"));
}

TEST(Timeline, SurvivesSeriesRemovalBetweenScrapes) {
  // remove() invalidates the registry's pointers; the epoch bump must force
  // the timeline to drop its cached pointer instead of dereferencing it.
  MetricsRegistry registry;
  registry.counter("tero.test.doomed").add(4);
  registry.counter("tero.test.keeper").add(1);
  MetricsTimeline timeline(registry, TimelineConfig{});
  timeline.scrape(1000);
  ASSERT_TRUE(registry.remove("tero.test.doomed"));
  registry.counter("tero.test.keeper").add(2);
  timeline.scrape(2000);
  EXPECT_EQ(timeline.counter_total("tero.test.keeper"), 3u);
  // The removed series keeps its recorded history, frozen at removal.
  EXPECT_EQ(timeline.counter_total("tero.test.doomed"), 4u);
}

TEST(Timeline, PromHistoryPassesTheFormatChecker) {
  MetricsRegistry registry;
  registry.counter("tero.test.events{shard=0}").add(2);
  registry.gauge("tero.test.depth").set(1.5);
  registry.histogram("tero.test.ms", {1.0, 10.0}).observe(3.0);
  MetricsTimeline timeline(registry, TimelineConfig{});
  timeline.scrape(1000);
  timeline.scrape(2000);
  std::ostringstream out;
  timeline.write_prom(out);
  EXPECT_EQ(validate_prom_text(out.str()), "");
  // Spot-check the shape: timestamped samples, labeled counter, histogram
  // family expansion.
  EXPECT_NE(out.str().find("tero_test_events{shard=\"0\"} 2 1000"),
            std::string::npos);
  EXPECT_NE(out.str().find("tero_test_ms_bucket"), std::string::npos);
}

TEST(Timeline, RejectsDegenerateConfigs) {
  MetricsRegistry registry;
  TimelineConfig zero_interval;
  zero_interval.scrape_every_ms = 0;
  EXPECT_THROW(MetricsTimeline(registry, zero_interval),
               std::invalid_argument);
  TimelineConfig tiny_capacity;
  tiny_capacity.capacity = 1;
  EXPECT_THROW(MetricsTimeline(registry, tiny_capacity),
               std::invalid_argument);
}

TEST(Timeline, LoadtestTelemetryBitIdenticalAcrossThreadCounts) {
  // The end-to-end determinism contract (DESIGN.md §13): the timeline JSON
  // a loadtest produces is byte-identical at 1 and 8 threads because every
  // scraped series is written from the serial virtual-time replay.
  const auto run = [](std::size_t threads) {
    obs::MetricsRegistry registry;
    TimelineConfig config;
    config.prefixes = {"tero.loadgen."};
    MetricsTimeline timeline(registry, config);
    serve::QueryService service{serve::ServeConfig{}};
    service.publish(std::vector<serve::SnapshotEntry>{});
    serve::LoadGenConfig load;
    load.queries = 5000;
    load.threads = threads;
    load.seed = 7;
    load.metrics = &registry;
    load.timeline = &timeline;
    load.exemplar_seed = 7;
    util::ThreadPool pool(threads);
    (void)serve::run_loadtest(service, load, threads > 1 ? &pool : nullptr);
    std::ostringstream out;
    timeline.write_json(out);
    return out.str();
  };
  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace tero::obs
