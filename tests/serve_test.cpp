#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/epoch.hpp"
#include "serve/loadgen.hpp"
#include "serve/lru_cache.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "serve/snapshot_io.hpp"
#include "stats/descriptive.hpp"
#include "synth/sessions.hpp"
#include "tero/pipeline.hpp"
#include "util/thread_pool.hpp"

namespace tero::serve {
namespace {

SnapshotEntry make_entry(const std::string& country, const std::string& game,
                         std::vector<double> values,
                         const std::string& region = "",
                         const std::string& city = "") {
  SnapshotEntry entry;
  entry.location.city = city;
  entry.location.region = region;
  entry.location.country = country;
  entry.game = game;
  entry.sorted_values = std::move(values);
  std::sort(entry.sorted_values.begin(), entry.sorted_values.end());
  entry.samples = entry.sorted_values.size();
  entry.mean_ms = entry.sorted_values.empty()
                      ? 0.0
                      : stats::mean(entry.sorted_values);
  if (!entry.sorted_values.empty()) {
    entry.box = stats::boxplot(entry.sorted_values);
  }
  entry.key = entry_key(entry.location, entry.game);
  entry.streamers = 3;
  return entry;
}

std::vector<SnapshotEntry> three_entries() {
  return {make_entry("DE", "lol", {30, 32, 34, 36, 38}),
          make_entry("FR", "lol", {50, 55, 60, 65, 70}),
          make_entry("BR", "lol", {90, 95, 100, 105, 200})};
}

TEST(Snapshot, FindAndPointStats) {
  const Snapshot snapshot(1, three_entries());
  ASSERT_EQ(snapshot.size(), 3u);
  geo::Location de;
  de.country = "DE";
  const SnapshotEntry* entry = snapshot.find(de, "lol");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->samples, 5u);
  EXPECT_DOUBLE_EQ(entry->mean_ms, 34.0);
  EXPECT_DOUBLE_EQ(entry->percentile(50), 34.0);
  EXPECT_DOUBLE_EQ(entry->ecdf(33.0), 0.4);   // 30, 32 <= 33
  EXPECT_DOUBLE_EQ(entry->ecdf(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(entry->ecdf(0.0), 0.0);
  geo::Location us;
  us.country = "US";
  EXPECT_EQ(snapshot.find(us, "lol"), nullptr);
  EXPECT_EQ(snapshot.find(de, "dota"), nullptr);
}

TEST(Snapshot, TopKWorstRanksByP95) {
  const Snapshot snapshot(1, three_entries());
  const auto worst = snapshot.worst_locations("lol", 2);
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0]->location.country, "BR");
  EXPECT_EQ(worst[1]->location.country, "FR");
  // k larger than the population clips without crashing.
  EXPECT_EQ(snapshot.worst_locations("lol", 99).size(), 3u);
  EXPECT_TRUE(snapshot.worst_locations("unknown-game", 3).empty());
}

TEST(Snapshot, BuildsFromPipelineDataset) {
  synth::WorldConfig world_config;
  world_config.seed = 5;
  world_config.num_streamers = 40;
  world_config.p_twitter = 1.0;
  const synth::World world(world_config);
  synth::BehaviorConfig behavior;
  behavior.days = 3;
  synth::SessionGenerator generator(world, behavior, 7);
  const auto streams = generator.generate();

  core::TeroConfig config;
  config.p_latency_visible = 1.0;
  config.threads = 1;

  // The publish hook fires at the end of run() with the finished dataset.
  ServeConfig serve_config;
  QueryService service(serve_config);
  config.on_dataset = publish_hook(service);

  core::Pipeline pipeline(config);
  const core::Dataset dataset = pipeline.run(world, streams);

  const SnapshotPtr snapshot = service.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->epoch(), 1u);
  EXPECT_EQ(snapshot->size(), dataset.aggregates.size());
  for (const auto& aggregate : dataset.aggregates) {
    const SnapshotEntry* entry =
        snapshot->find(aggregate.location, aggregate.game);
    ASSERT_NE(entry, nullptr) << aggregate.game;
    EXPECT_EQ(entry->samples, aggregate.distribution.size());
    EXPECT_EQ(entry->streamers, aggregate.streamers);
    if (aggregate.box.has_value()) {
      EXPECT_DOUBLE_EQ(entry->box.p50, aggregate.box->p50);
      // Serving percentiles agree with the offline boxplot computation.
      EXPECT_DOUBLE_EQ(entry->percentile(95), aggregate.box->p95);
    }
  }
}

TEST(EpochPublisher, SwapsAtomicallyUnderConcurrentReaders) {
  EpochPublisher publisher;
  EXPECT_EQ(publisher.current(), nullptr);
  EXPECT_EQ(publisher.epoch(), 0u);

  // Each published epoch e carries e entries, all named consistently —
  // readers assert they never see a half-built or mixed snapshot.
  constexpr std::uint64_t kEpochs = 200;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> observed_epochs{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_seen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const SnapshotPtr snapshot = publisher.current();
        if (snapshot == nullptr) continue;
        const std::uint64_t epoch = snapshot->epoch();
        ASSERT_EQ(snapshot->size(), epoch);  // snapshot is internally whole
        ASSERT_GE(epoch, last_seen);         // epochs are monotone per reader
        last_seen = epoch;
        observed_epochs.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::uint64_t e = 1; e <= kEpochs; ++e) {
    std::vector<SnapshotEntry> entries;
    for (std::uint64_t i = 0; i < e; ++i) {
      entries.push_back(make_entry("C" + std::to_string(i), "g",
                                   {double(e), double(e) + 1.0}));
    }
    publisher.publish(std::move(entries));
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(publisher.epoch(), kEpochs);
  EXPECT_GT(observed_epochs.load(), 0u);
  EXPECT_EQ(publisher.current()->size(), kEpochs);
}

TEST(EpochPublisher, RestoredSnapshotKeepsItsEpoch) {
  EpochPublisher publisher;
  publisher.publish(std::make_shared<const Snapshot>(41, three_entries()));
  EXPECT_EQ(publisher.epoch(), 41u);
  // The next built epoch continues past the restored number.
  const std::uint64_t next = publisher.publish(three_entries());
  EXPECT_EQ(next, 42u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  EXPECT_EQ(cache.get("a"), 1);  // refresh a; b is now LRU
  cache.put("c", 3);
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.get("a"), 1);
  EXPECT_EQ(cache.get("c"), 3);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get("a").has_value());
}

TEST(LruCacheTest, ZeroCapacityDisables) {
  LruCache<int> cache(0);
  cache.put("a", 1);
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryServiceTest, PointQueriesMatchSnapshotMath) {
  QueryService service(ServeConfig{});
  service.publish(three_entries());
  Query query;
  query.location.country = "FR";
  query.game = "lol";
  query.kind = QueryKind::kPercentile;
  query.param = 50;
  EXPECT_DOUBLE_EQ(service.query(query).value, 60.0);
  query.kind = QueryKind::kMean;
  EXPECT_DOUBLE_EQ(service.query(query).value, 60.0);
  query.kind = QueryKind::kCount;
  EXPECT_DOUBLE_EQ(service.query(query).value, 5.0);
  query.kind = QueryKind::kEcdf;
  query.param = 57.0;
  EXPECT_DOUBLE_EQ(service.query(query).value, 0.4);
  query.kind = QueryKind::kTopK;
  query.k = 1;
  const auto top = service.query(query);
  ASSERT_EQ(top.top.size(), 1u);
  geo::Location brazil;
  brazil.country = "BR";
  EXPECT_EQ(top.top[0].location, brazil.to_string());
}

TEST(QueryServiceTest, StatusesAndEmptyService) {
  QueryService service(ServeConfig{});
  Query query;
  query.location.country = "DE";
  query.game = "lol";
  EXPECT_EQ(service.query(query).status, QueryStatus::kNoSnapshot);
  service.publish(three_entries());
  EXPECT_EQ(service.query(query).status, QueryStatus::kOk);
  query.location.country = "US";
  EXPECT_EQ(service.query(query).status, QueryStatus::kNotFound);
}

TEST(QueryServiceTest, CacheHitsAndInvalidationOnPublish) {
  obs::MetricsRegistry registry;
  ServeConfig config;
  config.shards = 2;
  config.metrics = &registry;
  QueryService service(config);
  service.publish(
      {make_entry("DE", "lol", {10, 20, 30})});

  Query query;
  query.location.country = "DE";
  query.game = "lol";
  query.kind = QueryKind::kMean;
  const auto first = service.query(query);
  EXPECT_DOUBLE_EQ(first.value, 20.0);
  EXPECT_FALSE(first.cached);
  const auto second = service.query(query);
  EXPECT_TRUE(second.cached);
  EXPECT_DOUBLE_EQ(second.value, 20.0);
  EXPECT_EQ(service.cache_hits(), 1u);
  EXPECT_EQ(registry.counter("tero.serve.cache_hits").value(), 1u);

  // New epoch with different data: the caches are cleared, so the next
  // query recomputes against the new snapshot instead of serving stale
  // bits.
  service.publish({make_entry("DE", "lol", {100, 200, 300})});
  const auto fresh = service.query(query);
  EXPECT_FALSE(fresh.cached);
  EXPECT_DOUBLE_EQ(fresh.value, 200.0);
  EXPECT_EQ(fresh.epoch, 2u);
  EXPECT_EQ(registry.counter("tero.serve.publishes").value(), 2u);
  // The per-shard queue-depth gauges exist with the shard label.
  EXPECT_EQ(registry
                .gauge(obs::MetricsRegistry::labeled(
                    "tero.serve.shard_queue_depth",
                    {{"shard", "shard-" + std::to_string(
                                   service.shard_for(query))}}))
                .value(),
            1.0);
}

TEST(QueryServiceTest, ShardingIsStableAndCovering) {
  ServeConfig config;
  config.shards = 4;
  QueryService service(config);
  service.publish(three_entries());
  Query query;
  query.game = "lol";
  std::vector<std::size_t> seen;
  for (const char* country : {"DE", "FR", "BR"}) {
    query.location.country = country;
    const std::size_t shard = service.shard_for(query);
    EXPECT_LT(shard, service.shard_count());
    EXPECT_EQ(shard, service.shard_for(query));  // stable
    seen.push_back(shard);
  }
  // TopK queries shard by game, also inside range.
  query.kind = QueryKind::kTopK;
  EXPECT_LT(service.shard_for(query), service.shard_count());
}

TEST(QueryServiceTest, ShedsUnderOverloadAndRecovers) {
  obs::MetricsRegistry registry;
  ServeConfig config;
  config.admission_rate_qps = 10.0;
  config.admission_burst = 5.0;
  config.metrics = &registry;
  QueryService service(config);
  service.publish(three_entries());

  Query query;
  query.location.country = "DE";
  query.game = "lol";
  query.kind = QueryKind::kMean;

  // Burst capacity admits the first 5 queries at t=0, then sheds.
  std::size_t ok = 0;
  std::size_t shed = 0;
  for (int i = 0; i < 20; ++i) {
    const auto response = service.query(query, /*now_s=*/0.0);
    if (response.status == QueryStatus::kOk) ++ok;
    if (response.status == QueryStatus::kShed) ++shed;
  }
  EXPECT_EQ(ok, 5u);
  EXPECT_EQ(shed, 15u);
  EXPECT_EQ(service.shed_count(), 15u);
  EXPECT_EQ(registry.counter("tero.serve.shed").value(), 15u);

  // One second later the bucket has refilled rate * 1s = 10 tokens, but the
  // balance is capped at the burst size, so only 5 more get through.
  ok = shed = 0;
  for (int i = 0; i < 20; ++i) {
    const auto response = service.query(query, /*now_s=*/1.0);
    if (response.status == QueryStatus::kOk) ++ok;
    if (response.status == QueryStatus::kShed) ++shed;
  }
  EXPECT_EQ(ok, 5u);
  EXPECT_EQ(shed, 15u);
}

TEST(AdmissionControllerTest, DisabledAdmitsEverything) {
  AdmissionController admission(0.0, 0.0);
  EXPECT_FALSE(admission.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(admission.try_admit(0.0));
  EXPECT_EQ(admission.shed(), 0u);
}

TEST(AdmissionControllerTest, RateStepUpAtRefillBoundaryMintsNothing) {
  // 10 qps, burst 10; drain the bucket dry at t=0.
  AdmissionController admission(10.0, 10.0);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(admission.try_admit(0.0));
  ASSERT_FALSE(admission.try_admit(0.0));

  // Step up to 100 qps exactly at the t=1s refill boundary. The elapsed
  // second must refill at the *old* 10 qps (10 tokens), not retroactively
  // at the new 100 qps.
  admission.set_rate(1.0, 100.0, 100.0);
  std::uint64_t ok = 0;
  while (admission.try_admit(1.0)) ++ok;
  EXPECT_EQ(ok, 10u);

  // From here the new rate applies: the next second accrues 100 tokens.
  ok = 0;
  while (admission.try_admit(2.0)) ++ok;
  EXPECT_EQ(ok, 100u);
}

TEST(AdmissionControllerTest, RateStepDownAtRefillBoundaryClampsBalance) {
  // 100 qps, burst 100: at the t=1s boundary the balance is a full 100.
  AdmissionController admission(100.0, 100.0);
  ASSERT_TRUE(admission.try_admit(0.0));

  // Step down to 5 qps / burst 5 exactly at the boundary: the balance must
  // clamp to the new burst, never go negative, and never keep the old
  // surplus.
  admission.set_rate(1.0, 5.0, 5.0);
  std::uint64_t ok = 0;
  while (admission.try_admit(1.0)) ++ok;
  EXPECT_EQ(ok, 5u);
  EXPECT_FALSE(admission.try_admit(1.05));  // only 0.25 tokens accrued

  // Refill now runs at the stepped-down rate.
  ok = 0;
  while (admission.try_admit(2.0)) ++ok;
  EXPECT_EQ(ok, 5u);
  EXPECT_EQ(admission.rate_qps(), 5.0);
  EXPECT_EQ(admission.burst(), 5.0);
}

TEST(AdmissionControllerTest, RetuneKeepsCountersAndDisableReenable) {
  AdmissionController admission(2.0, 2.0);
  ASSERT_TRUE(admission.try_admit(0.0));
  ASSERT_TRUE(admission.try_admit(0.0));
  ASSERT_FALSE(admission.try_admit(0.0));
  const std::uint64_t admitted_before = admission.admitted();
  const std::uint64_t shed_before = admission.shed();

  // Disable: everything passes, nothing is counted.
  admission.set_rate(10.0, 0.0);
  EXPECT_FALSE(admission.enabled());
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(admission.try_admit(10.0));
  EXPECT_EQ(admission.admitted(), admitted_before);
  EXPECT_EQ(admission.shed(), shed_before);

  // Re-enable much later: the bucket starts full at the new burst — the
  // disabled span must not have accrued tokens beyond that.
  admission.set_rate(100.0, 4.0, 4.0);
  std::uint64_t ok = 0;
  while (admission.try_admit(100.0)) ++ok;
  EXPECT_EQ(ok, 4u);
}

TEST(ZipfSamplerTest, DeterministicAndSkewed) {
  const ZipfSampler zipf(100, 1.1);
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  std::vector<std::size_t> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t a = zipf.sample(rng_a);
    ASSERT_EQ(a, zipf.sample(rng_b));  // same seed, same sequence
    ASSERT_LT(a, 100u);
    ++counts[a];
  }
  // Rank 0 dominates rank 50 heavily under s = 1.1.
  EXPECT_GT(counts[0], 10 * std::max<std::size_t>(counts[50], 1));
}

TEST(LoadGen, ChecksumIdenticalAcrossThreadCounts) {
  // The acceptance criterion: bit-identical query *results* for the same
  // seed at 1 and 8 threads (timings may differ).
  const auto entries = three_entries();
  LoadGenConfig load;
  load.queries = 5000;
  load.seed = 123;

  LoadTestReport reports[2];
  const std::size_t thread_counts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    ServeConfig config;
    config.shards = 4;
    QueryService service(config);
    service.publish(std::vector<SnapshotEntry>(entries));
    util::ThreadPool pool(thread_counts[i]);
    reports[i] = run_loadtest(service, load,
                              thread_counts[i] > 1 ? &pool : nullptr);
  }
  EXPECT_EQ(reports[0].checksum, reports[1].checksum);
  EXPECT_EQ(reports[0].ok, reports[1].ok);
  EXPECT_EQ(reports[0].not_found, reports[1].not_found);
  EXPECT_EQ(reports[0].shed, 0u);
  EXPECT_EQ(reports[1].shed, 0u);
  EXPECT_EQ(reports[0].issued, 5000u);
  EXPECT_GT(reports[0].ok, 0u);
}

TEST(LoadGen, OpenLoopShedIsDeterministicAndBoundsAdmission) {
  const auto entries = three_entries();
  LoadGenConfig load;
  load.queries = 4000;
  load.seed = 9;
  load.offered_qps = 100000.0;  // far above the admission cap

  LoadTestReport reports[2];
  const std::size_t thread_counts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    ServeConfig config;
    config.shards = 2;
    config.admission_rate_qps = 25000.0;  // a quarter of offered
    config.admission_burst = 64.0;
    QueryService service(config);
    service.publish(std::vector<SnapshotEntry>(entries));
    util::ThreadPool pool(thread_counts[i]);
    reports[i] = run_loadtest(service, load,
                              thread_counts[i] > 1 ? &pool : nullptr);
  }
  EXPECT_EQ(reports[0].checksum, reports[1].checksum);
  EXPECT_EQ(reports[0].shed, reports[1].shed);
  EXPECT_EQ(reports[0].ok, reports[1].ok);
  // Offered 4x the admitted rate: roughly three quarters shed.
  EXPECT_GT(reports[0].shed, reports[0].issued / 2);
  EXPECT_GT(reports[0].ok, 0u);
  EXPECT_EQ(reports[0].ok + reports[0].not_found + reports[0].shed,
            reports[0].issued);
}

TEST(LoadGen, QueriesDependOnlyOnSeed) {
  const Snapshot snapshot(1, three_entries());
  LoadGenConfig load;
  load.queries = 200;
  load.seed = 4;
  const auto a = generate_queries(snapshot, load);
  const auto b = generate_queries(snapshot, load);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].game, b[i].game);
    EXPECT_EQ(a[i].location, b[i].location);
    EXPECT_DOUBLE_EQ(a[i].param, b[i].param);
  }
  load.seed = 5;
  const auto c = generate_queries(snapshot, load);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != c[i].kind || a[i].location != c[i].location ||
        a[i].param != c[i].param) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(SnapshotIo, RoundTripsBitExactly) {
  auto entries = three_entries();
  entries[0].anomaly_flagged = true;
  entries[0].shared_anomalies = 2;
  entries[0].server_city = "Frankfurt am Main";
  entries[0].avg_corrected_distance_km = 123.456789012345;
  entries[1].sorted_values = {0.1, 1.0 / 3.0, 2.5000000000000004, 47.25};
  entries[1].samples = entries[1].sorted_values.size();
  const Snapshot original(7, std::move(entries));

  std::ostringstream out;
  save_snapshot(original, out);
  std::istringstream in(out.str());
  const SnapshotPtr restored = load_snapshot(in);

  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->epoch(), 7u);
  ASSERT_EQ(restored->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.entries()[i];
    const auto& b = restored->entries()[i];
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.location, b.location);
    EXPECT_EQ(a.game, b.game);
    EXPECT_EQ(a.streamers, b.streamers);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.anomaly_flagged, b.anomaly_flagged);
    EXPECT_EQ(a.shared_anomalies, b.shared_anomalies);
    EXPECT_EQ(a.server_city, b.server_city);
    // %.17g round-trips doubles exactly — restored snapshots answer
    // queries bit-identically.
    EXPECT_EQ(a.mean_ms, b.mean_ms);
    EXPECT_EQ(a.box.p5, b.box.p5);
    EXPECT_EQ(a.box.p95, b.box.p95);
    EXPECT_EQ(a.avg_corrected_distance_km, b.avg_corrected_distance_km);
    ASSERT_EQ(a.sorted_values.size(), b.sorted_values.size());
    for (std::size_t j = 0; j < a.sorted_values.size(); ++j) {
      EXPECT_EQ(a.sorted_values[j], b.sorted_values[j]) << i << ":" << j;
    }
  }

  // Served answers agree bit-for-bit between original and restored.
  QueryService service_a(ServeConfig{});
  QueryService service_b(ServeConfig{});
  service_a.publish(std::make_shared<const Snapshot>(original));
  service_b.publish(restored);
  LoadGenConfig load;
  load.queries = 2000;
  load.seed = 31;
  const auto report_a = run_loadtest(service_a, load, nullptr);
  const auto report_b = run_loadtest(service_b, load, nullptr);
  EXPECT_EQ(report_a.checksum, report_b.checksum);

  std::istringstream garbage("not a snapshot");
  EXPECT_THROW((void)load_snapshot(garbage), std::invalid_argument);
}

// ------------------------------------------------------------- range kinds --

TEST(QueryServiceTest, RangeKindsAnswerFromTimeSeriesStore) {
  constexpr std::int64_t kDayMs = 86'400'000;
  tsdb::TimeSeriesStore store{tsdb::TsdbConfig{}};
  geo::Location de;
  de.country = "DE";
  const std::string key = entry_key(de, "lol");
  for (int day = 0; day < 10; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      store.append(key, day * kDayMs + hour * 3'600'000,
                   40.0 + static_cast<double>(day));
    }
    store.advance_to((day + 1) * kDayMs);
  }

  ServeConfig config;
  config.tsdb = &store;
  QueryService service(config);
  service.publish(three_entries());

  Query query;
  query.kind = QueryKind::kRangeMean;
  query.location = de;
  query.game = "lol";
  query.t0_ms = 0;
  query.t1_ms = 10 * kDayMs;
  query.window_ms = kDayMs;
  QueryResponse response = service.query(query);
  ASSERT_EQ(response.status, QueryStatus::kOk);
  ASSERT_EQ(response.series.size(), 10u);
  EXPECT_DOUBLE_EQ(response.series.front().value, 40.0);
  EXPECT_DOUBLE_EQ(response.series.back().value, 49.0);
  EXPECT_DOUBLE_EQ(response.value, response.series.back().value);
  for (std::size_t day = 0; day < response.series.size(); ++day) {
    EXPECT_EQ(response.series[day].count, 24u) << day;
    EXPECT_EQ(response.series[day].t_ms,
              static_cast<std::int64_t>(day) * kDayMs);
  }

  // Identical repeat is served from the shard cache; the answer is equal.
  const QueryResponse cached = service.query(query);
  EXPECT_TRUE(cached.cached);
  EXPECT_EQ(hash_response(7, cached), hash_response(7, response));

  query.kind = QueryKind::kRangeCount;
  response = service.query(query);
  ASSERT_EQ(response.status, QueryStatus::kOk);
  EXPECT_DOUBLE_EQ(response.value, 24.0);

  query.kind = QueryKind::kRangePercentile;
  query.param = 99.0;
  response = service.query(query);
  ASSERT_EQ(response.status, QueryStatus::kOk);
  EXPECT_NEAR(response.series.back().value, 49.0, 0.5);

  // Week-over-week drift at day 10: [d3,d10) mean-of-days minus [d-4,d3).
  query.kind = QueryKind::kRangeDrift;
  query.t1_ms = 10 * kDayMs;
  response = service.query(query);
  ASSERT_EQ(response.status, QueryStatus::kOk);
  EXPECT_GT(response.value, 0.0);  // latency ramped up week over week

  // A key the store has never seen -> kNotFound, not a zero answer.
  query.kind = QueryKind::kRangeMean;
  query.game = "unknown-game";
  EXPECT_EQ(service.query(query).status, QueryStatus::kNotFound);

  // Degenerate window -> invalid_argument propagates (caller bug).
  query.game = "lol";
  query.window_ms = 0;
  EXPECT_THROW((void)service.query(query), std::invalid_argument);
}

TEST(QueryServiceTest, RangeKindsWithoutStoreAreUnavailable) {
  QueryService service(ServeConfig{});
  service.publish(three_entries());
  Query query;
  query.kind = QueryKind::kRangeMean;
  query.location.country = "DE";
  query.game = "lol";
  query.t1_ms = 86'400'000;
  EXPECT_EQ(service.query(query).status, QueryStatus::kUnavailable);
}

TEST(QueryServiceTest, RangeCacheInvalidatesWhenStoreAdvances) {
  constexpr std::int64_t kDayMs = 86'400'000;
  tsdb::TimeSeriesStore store{tsdb::TsdbConfig{}};
  geo::Location de;
  de.country = "DE";
  const std::string key = entry_key(de, "lol");
  store.append(key, 1'000, 10.0);

  ServeConfig config;
  config.tsdb = &store;
  QueryService service(config);
  service.publish(three_entries());

  Query query;
  query.kind = QueryKind::kRangeCount;
  query.location = de;
  query.game = "lol";
  query.t0_ms = 0;
  query.t1_ms = kDayMs;
  query.window_ms = kDayMs;
  QueryResponse response = service.query(query);
  ASSERT_EQ(response.status, QueryStatus::kOk);
  EXPECT_DOUBLE_EQ(response.value, 1.0);

  // New appends bump the store version; the cached count must not survive.
  store.append(key, 2'000, 11.0);
  response = service.query(query);
  EXPECT_FALSE(response.cached);
  EXPECT_DOUBLE_EQ(response.value, 2.0);
}

}  // namespace
}  // namespace tero::serve
