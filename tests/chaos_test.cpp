#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "fault/policy.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "store/kv_store.hpp"
#include "store/persistence.hpp"
#include "synth/sessions.hpp"
#include "synth/world.hpp"
#include "tero/pipeline.hpp"
#include "util/rng.hpp"

namespace plan_tests {
using namespace tero::fault;

TEST(FaultPlan, ParsesEveryOption) {
  const auto plan = FaultPlan::parse(
      "cdn.get=error@0.05;cdn.get=latency@0.02:ms=4000;"
      "kv.put=corrupt@0.1:after=3:max=7;extract.stream=crash@1:fails=9");
  ASSERT_EQ(plan.rules.size(), 4u);
  EXPECT_EQ(plan.rules[0].point, "cdn.get");
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kError);
  EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.05);
  EXPECT_EQ(plan.rules[1].kind, FaultKind::kLatency);
  EXPECT_DOUBLE_EQ(plan.rules[1].latency_s, 4.0);
  EXPECT_EQ(plan.rules[2].kind, FaultKind::kCorrupt);
  EXPECT_EQ(plan.rules[2].after, 3u);
  EXPECT_EQ(plan.rules[2].max_fires, 7u);
  EXPECT_EQ(plan.rules[3].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.rules[3].fail_attempts, 9u);
}

TEST(FaultPlan, RoundTripsThroughToString) {
  const std::string spec =
      "cdn.get=error@0.05;serve.shard*=latency@0.5:ms=250:after=2:max=9;"
      "persist.write=crash@1:fails=3";
  const auto plan = FaultPlan::parse(spec, 42);
  const auto reparsed = FaultPlan::parse(plan.to_string(), 42);
  EXPECT_EQ(plan.to_string(), reparsed.to_string());
  EXPECT_EQ(reparsed.rules.size(), plan.rules.size());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("nonsense"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("p=error"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("p=explode@0.5"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("p=error@1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("p=error@0.5:bogus=1"),
               std::invalid_argument);
}

TEST(FaultRule, WildcardMatchesPrefix) {
  FaultRule rule;
  rule.point = "serve.shard*";
  EXPECT_TRUE(rule.matches("serve.shard-0"));
  EXPECT_TRUE(rule.matches("serve.shard-13"));
  EXPECT_FALSE(rule.matches("serve.other"));
  rule.point = "cdn.get";
  EXPECT_TRUE(rule.matches("cdn.get"));
  EXPECT_FALSE(rule.matches("cdn.gets"));
}

}  // namespace plan_tests

namespace point_tests {
using namespace tero::fault;

TEST(FaultPoint, SameSeedSameSchedule) {
  const auto run = [](std::uint64_t seed) {
    FaultInjector injector(FaultPlan::parse("p=error@0.3", seed));
    auto& point = injector.point("p");
    for (int i = 0; i < 500; ++i) (void)point.hit();
    return std::make_pair(point.schedule(), injector.schedule_digest());
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_FALSE(a.first.empty());
  // A different seed gives a different (but equally deterministic) schedule.
  const auto c = run(8);
  EXPECT_NE(a.first, c.first);
}

TEST(FaultPoint, ScheduleIsThreadCountInvariant) {
  // The per-hit schedule is a pure function of the hit index, and hit
  // indexes are claimed atomically — so N hits fire the same set of
  // (index, kind) pairs whether they come from 1 thread or 4.
  const auto run = [](int threads) {
    FaultInjector injector(FaultPlan::parse("p=error@0.2;p=latency@0.1", 3));
    auto& point = injector.point("p");
    constexpr int kHits = 1000;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&point, threads] {
        for (int i = 0; i < kHits / threads; ++i) (void)point.hit();
      });
    }
    for (auto& worker : workers) worker.join();
    return point.schedule();
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(FaultPoint, AfterAndMaxHonored) {
  FaultInjector injector(FaultPlan::parse("p=error@1:after=3:max=2"));
  auto& point = injector.point("p");
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(static_cast<bool>(point.hit()));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true, false,
                                      false, false}));
  EXPECT_EQ(point.fired(), 2u);
  EXPECT_EQ(point.hits(), 8u);
}

TEST(FaultPoint, KeyedDecideIsTransientByConstruction) {
  FaultInjector injector(FaultPlan::parse("p=error@1:fails=2"));
  const auto& point = injector.point("p");
  EXPECT_TRUE(static_cast<bool>(point.decide(11, 0)));
  EXPECT_TRUE(static_cast<bool>(point.decide(11, 1)));
  EXPECT_FALSE(static_cast<bool>(point.decide(11, 2)));  // retry recovers
  EXPECT_EQ(point.failing_attempts(11), 2u);
  // decide() is pure: no hits were consumed.
  EXPECT_EQ(point.hits(), 0u);
}

TEST(FaultPoint, CrashKindIsPermanentInKeyedMode) {
  FaultInjector injector(FaultPlan::parse("p=crash@1"));
  const auto& point = injector.point("p");
  EXPECT_TRUE(static_cast<bool>(point.decide(5, 0)));
  EXPECT_TRUE(static_cast<bool>(point.decide(5, 1000)));
  EXPECT_EQ(point.failing_attempts(5), UINT64_MAX);
}

TEST(FaultInjector, UnmatchedPointNeverFires) {
  FaultInjector injector(FaultPlan::parse("other=error@1"));
  auto& point = injector.point("p");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(static_cast<bool>(point.hit()));
  EXPECT_EQ(injector.total_fired(), 0u);
}

TEST(FaultInjector, CountsFiresInMetrics) {
  tero::obs::MetricsRegistry registry;
  FaultInjector injector(FaultPlan::parse("p=error@1:max=3"), &registry);
  auto& point = injector.point("p");
  for (int i = 0; i < 10; ++i) (void)point.hit();
  EXPECT_EQ(registry
                .counter(tero::obs::MetricsRegistry::labeled(
                    "tero.fault.fired", {{"point", "p"}}))
                .value(),
            3u);
}

}  // namespace point_tests

namespace retry_tests {
using namespace tero::fault;

TEST(RetryPolicy, BackoffGrowsAndCaps) {
  RetryPolicy policy;
  policy.base_delay_s = 1.0;
  policy.max_delay_s = 8.0;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;  // exact values
  EXPECT_DOUBLE_EQ(policy.backoff_s(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(2, 1), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(3, 1), 4.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(4, 1), 8.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(10, 1), 8.0);  // capped
}

TEST(RetryPolicy, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.jitter = 0.25;
  for (std::uint32_t attempt = 1; attempt < 6; ++attempt) {
    const double a = policy.backoff_s(attempt, 9, 77);
    const double b = policy.backoff_s(attempt, 9, 77);
    EXPECT_DOUBLE_EQ(a, b);  // pure in (policy, seed, token, attempt)
    RetryPolicy exact = policy;
    exact.jitter = 0.0;
    const double nominal = exact.backoff_s(attempt, 9, 77);
    EXPECT_LE(a, nominal);
    EXPECT_GE(a, nominal * 0.75);
  }
  // Different tokens decorrelate concurrent retry sequences.
  EXPECT_NE(policy.backoff_s(3, 9, 1), policy.backoff_s(3, 9, 2));
}

TEST(RetryPolicy, ShouldRetryHonorsAttemptCapAndBudget) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.budget_s = 100.0;
  EXPECT_TRUE(policy.should_retry(0));
  EXPECT_TRUE(policy.should_retry(1));
  EXPECT_FALSE(policy.should_retry(2));          // attempt cap
  EXPECT_FALSE(policy.should_retry(1, 100.0));   // budget exhausted
  policy.budget_s = 0.0;
  EXPECT_TRUE(policy.should_retry(1, 1e9));      // budget off
}

}  // namespace retry_tests

namespace breaker_tests {
using namespace tero::fault;

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(breaker.allow(0.0));
    breaker.on_failure(0.0);
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(10.0));  // inside the cooldown
  EXPECT_EQ(breaker.rejected(), 1u);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker;
  for (int i = 0; i < 4; ++i) breaker.on_failure(0.0);
  breaker.on_success();
  for (int i = 0; i < 4; ++i) breaker.on_failure(0.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbesCloseOrReopen) {
  CircuitBreaker::Config config;
  config.failure_threshold = 2;
  config.cooldown_s = 10.0;
  config.half_open_successes = 2;
  CircuitBreaker breaker(config);
  breaker.on_failure(0.0);
  breaker.on_failure(0.0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Cooldown elapses -> half-open probe; a failing probe re-opens and
  // restarts the cooldown.
  EXPECT_TRUE(breaker.allow(11.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.on_failure(11.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(20.0));  // cooldown restarted at t=11

  // Second probe window: enough successes close the breaker.
  EXPECT_TRUE(breaker.allow(22.0));
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow(22.5));
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(23.0));
}

TEST(CircuitBreaker, HalfOpenAdmitsOneProbeAtATime) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.cooldown_s = 5.0;
  config.half_open_successes = 2;
  CircuitBreaker breaker(config);
  breaker.on_failure(0.0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Past the cooldown exactly one caller wins the probe slot; everyone
  // else fails fast while its outcome is pending.
  EXPECT_TRUE(breaker.allow(6.0));
  EXPECT_FALSE(breaker.allow(6.0));
  EXPECT_FALSE(breaker.allow(6.1));
  EXPECT_EQ(breaker.rejected(), 2u);

  // The probe's outcome frees the slot: one success admits the *next*
  // single probe, and enough successes close the breaker for everyone.
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow(6.2));
  EXPECT_FALSE(breaker.allow(6.2));
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(6.3));
  EXPECT_TRUE(breaker.allow(6.3));
}

TEST(CircuitBreaker, ConcurrentHalfOpenCallersElectExactlyOneProbe) {
  // The thundering-herd regression: N threads hammer a breaker whose
  // cooldown just elapsed. Exactly one may be admitted as the probe; the
  // losers must fail fast and be counted as rejected. Run under TSan this
  // also proves allow()/state() are race-free.
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.cooldown_s = 1.0;
  config.half_open_successes = 1;
  CircuitBreaker breaker(config);
  breaker.on_failure(0.0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  constexpr int kThreads = 16;
  std::atomic<int> admitted{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!start.load()) std::this_thread::yield();
      if (breaker.allow(2.0)) admitted.fetch_add(1);
    });
  }
  start.store(true);
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(admitted.load(), 1);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.rejected(), static_cast<std::uint64_t>(kThreads - 1));

  // The winning probe succeeds and the breaker closes normally.
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

}  // namespace breaker_tests

namespace persistence_tests {
using namespace tero;

class KvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tero_chaos_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "kv.snap").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static store::KvStore sample_kv() {
    store::KvStore kv;
    kv.put("plain", "value");
    kv.put("tricky", "line\nbreaks and spaces \x01 included");
    kv.put("empty", "");
    kv.push_back("queue", "first");
    kv.push_back("queue", "second with\nnewline");
    return kv;
  }

  static void expect_sample(const store::KvStore& kv) {
    EXPECT_EQ(kv.get("plain"), "value");
    EXPECT_EQ(kv.get("tricky"), "line\nbreaks and spaces \x01 included");
    EXPECT_EQ(kv.get("empty"), "");
    const auto queue = kv.list_contents("queue");
    ASSERT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue[0], "first");
    EXPECT_EQ(queue[1], "second with\nnewline");
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(KvFileTest, RoundTripsThroughDisk) {
  store::save_kv_file(sample_kv(), path_);
  expect_sample(store::load_kv_file(path_));
  // No temp file left behind after a clean save.
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(KvFileTest, InjectedTornWriteLeavesPrimaryIntact) {
  store::save_kv_file(sample_kv(), path_);

  store::KvStore updated = sample_kv();
  updated.put("plain", "SHOULD NEVER BE READ");
  fault::FaultInjector injector(
      fault::FaultPlan::parse("persist.write=error@1"));
  EXPECT_THROW(store::save_kv_file(updated, path_, &injector),
               std::runtime_error);

  // The torn temp file is rejected by the loader's checks...
  ASSERT_TRUE(std::filesystem::exists(path_ + ".tmp"));
  EXPECT_THROW((void)store::load_kv_file(path_ + ".tmp"),
               std::runtime_error);
  // ...and the primary still carries the previous good snapshot.
  const store::KvStore recovered = store::load_kv_file(path_);
  EXPECT_EQ(recovered.get("plain"), "value");
}

TEST_F(KvFileTest, RejectsTruncatedFile) {
  store::save_kv_file(sample_kv(), path_);
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size / 2);
  EXPECT_THROW((void)store::load_kv_file(path_), std::runtime_error);
}

TEST_F(KvFileTest, RejectsBitFlippedPayload) {
  store::save_kv_file(sample_kv(), path_);
  std::fstream file(path_, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(16);  // inside the payload, past the header
  file.put('X');
  file.close();
  EXPECT_THROW((void)store::load_kv_file(path_), std::runtime_error);
}

TEST_F(KvFileTest, RejectsMissingAndForeignFiles) {
  EXPECT_THROW((void)store::load_kv_file(path_), std::runtime_error);
  std::ofstream(path_) << "not a TEROKV file at all\n";
  EXPECT_THROW((void)store::load_kv_file(path_), std::runtime_error);
}

}  // namespace persistence_tests

namespace pipeline_chaos_tests {
using namespace tero;

struct Scenario {
  synth::World world;
  std::vector<synth::TrueStream> streams;

  explicit Scenario(std::uint64_t seed, std::size_t streamers = 30,
                    int days = 1)
      : world(make_world(seed, streamers)),
        streams(synth::SessionGenerator(world, make_behavior(days), seed + 1)
                    .generate()) {}

  static synth::World make_world(std::uint64_t seed, std::size_t streamers) {
    synth::WorldConfig config;
    config.seed = seed;
    config.num_streamers = streamers;
    config.p_twitter = 0.8;
    return synth::World(config);
  }
  static synth::BehaviorConfig make_behavior(int days) {
    synth::BehaviorConfig behavior;
    behavior.days = days;
    return behavior;
  }
};

core::Dataset run(const Scenario& scenario, fault::FaultInjector* injector,
                  std::size_t threads) {
  core::TeroConfig config;
  config.threads = threads;
  config.injector = injector;
  return core::Pipeline(config).run(scenario.world, scenario.streams);
}

TEST(PipelineChaos, TransientFaultsLeaveDatasetBitIdentical) {
  // The acceptance sweep: >= 10 seeded runs where every injected fault is
  // transient (fails < retry budget) must produce the exact fault-free
  // dataset.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Scenario scenario(seed);
    const std::uint64_t baseline =
        core::dataset_digest(run(scenario, nullptr, 1));
    fault::FaultInjector injector(
        fault::FaultPlan::parse("extract.stream=error@0.4:fails=2", seed));
    const core::Dataset faulted = run(scenario, &injector, 1);
    EXPECT_EQ(core::dataset_digest(faulted), baseline) << "seed " << seed;
    EXPECT_EQ(faulted.funnel.quarantined, 0u) << "seed " << seed;
  }
}

TEST(PipelineChaos, FaultedRunIsThreadCountInvariant) {
  const Scenario scenario(3, 40, 2);
  const auto digest_at = [&](std::size_t threads, const char* spec) {
    fault::FaultInjector injector(fault::FaultPlan::parse(spec, 3));
    return core::dataset_digest(run(scenario, &injector, threads));
  };
  // Same seed + plan => bit-identical dataset at 1 and 8 threads, for both
  // transient and permanent plans.
  EXPECT_EQ(digest_at(1, "extract.stream=error@0.4:fails=2"),
            digest_at(8, "extract.stream=error@0.4:fails=2"));
  EXPECT_EQ(digest_at(1, "extract.stream=crash@0.5"),
            digest_at(8, "extract.stream=crash@0.5"));
}

TEST(PipelineChaos, PermanentFaultsQuarantineExplicitly) {
  const Scenario scenario(5, 40, 2);
  const core::Dataset baseline = run(scenario, nullptr, 1);
  fault::FaultInjector injector(
      fault::FaultPlan::parse("extract.stream=crash@0.5", 5));
  const core::Dataset degraded = run(scenario, &injector, 1);
  // Quarantine is explicit accounting, never silent loss: thumbnails are
  // still counted (they were downloaded), extraction is skipped, and the
  // funnel says so.
  EXPECT_GT(degraded.funnel.quarantined, 0u);
  EXPECT_LE(degraded.funnel.quarantined, degraded.funnel.streamers_located);
  EXPECT_EQ(degraded.funnel.thumbnails, baseline.funnel.thumbnails);
  EXPECT_LT(degraded.funnel.visible, baseline.funnel.visible);
  EXPECT_LT(degraded.entries.size(), baseline.entries.size());
}

}  // namespace pipeline_chaos_tests

namespace serve_chaos_tests {
using namespace tero;

serve::ServeConfig one_shard(fault::FaultInjector* injector) {
  serve::ServeConfig config;
  config.shards = 1;
  config.injector = injector;
  return config;
}

std::vector<serve::SnapshotEntry> sample_entries() {
  const pipeline_chaos_tests::Scenario scenario(2);
  const core::Dataset dataset =
      pipeline_chaos_tests::run(scenario, nullptr, 1);
  serve::ServeConfig config;
  serve::QueryService service(config);
  serve::publish_hook(service)(dataset);
  const auto snapshot = service.snapshot();
  return {snapshot->entries().begin(), snapshot->entries().end()};
}

TEST(ServeChaos, DegradedAnswersAreStaleNeverSilentlyWrong) {
  const auto entries = sample_entries();
  ASSERT_FALSE(entries.empty());
  serve::Query query;
  query.kind = serve::QueryKind::kCount;
  query.location = entries[0].location;
  query.game = entries[0].game;

  serve::QueryService healthy(one_shard(nullptr));
  healthy.publish(entries);
  const auto fresh = healthy.query_admitted(query);
  ASSERT_EQ(fresh.status, serve::QueryStatus::kOk);

  fault::FaultInjector injector(
      fault::FaultPlan::parse("serve.shard-0=error@1:max=3"));
  serve::QueryService flaky(one_shard(&injector));
  flaky.publish(entries);  // epoch 1
  flaky.publish(entries);  // epoch 2; epoch 1 is the degraded fallback
  const auto degraded = flaky.query_admitted(query, 0.0);
  EXPECT_EQ(degraded.status, serve::QueryStatus::kOk);
  EXPECT_TRUE(degraded.stale);
  EXPECT_EQ(degraded.stale_age, 1u);
  EXPECT_EQ(degraded.value, fresh.value);  // last good epoch, same bits
  // The STALE marker is part of the response fingerprint: a degraded
  // answer can never masquerade as a fresh one.
  EXPECT_NE(serve::hash_response(0, degraded), serve::hash_response(0, fresh));
}

TEST(ServeChaos, NoPreviousEpochMeansExplicitlyUnavailable) {
  const auto entries = sample_entries();
  ASSERT_FALSE(entries.empty());
  fault::FaultInjector injector(
      fault::FaultPlan::parse("serve.shard-0=error@1:max=1"));
  serve::QueryService service(one_shard(&injector));
  service.publish(entries);  // first epoch: nothing to degrade to
  serve::Query query;
  query.kind = serve::QueryKind::kCount;
  query.location = entries[0].location;
  query.game = entries[0].game;
  const auto response = service.query_admitted(query, 0.0);
  EXPECT_EQ(response.status, serve::QueryStatus::kUnavailable);
  // The fault plan is drained after one fire; the shard recovers.
  const auto recovered = service.query_admitted(query, 1.0);
  EXPECT_EQ(recovered.status, serve::QueryStatus::kOk);
  EXPECT_FALSE(recovered.stale);
}

TEST(ServeChaos, BreakerOpensSkipsFaultPointThenRecovers) {
  const auto entries = sample_entries();
  ASSERT_FALSE(entries.empty());
  fault::FaultInjector injector(
      fault::FaultPlan::parse("serve.shard-0=error@1:max=7"));
  serve::QueryService service(one_shard(&injector));
  service.publish(entries);
  service.publish(entries);
  serve::Query query;
  query.kind = serve::QueryKind::kCount;
  query.location = entries[0].location;
  query.game = entries[0].game;

  // Default breaker: 5 consecutive failures open it.
  for (int i = 0; i < 5; ++i) {
    const auto r = service.query_admitted(query, 0.1 * i);
    EXPECT_TRUE(r.stale);
  }
  const std::uint64_t fired_before = injector.total_fired();
  const auto while_open = service.query_admitted(query, 5.0);
  EXPECT_TRUE(while_open.stale);
  EXPECT_EQ(injector.total_fired(), fired_before);  // point not consulted

  // Two half-open probes burn the plan's remaining fires (6 and 7), then
  // two clean probes close the breaker; answers are fresh again.
  (void)service.query_admitted(query, 40.0);
  (void)service.query_admitted(query, 80.0);
  (void)service.query_admitted(query, 120.0);
  (void)service.query_admitted(query, 121.0);
  const auto recovered = service.query_admitted(query, 122.0);
  EXPECT_EQ(recovered.status, serve::QueryStatus::kOk);
  EXPECT_FALSE(recovered.stale);
}

}  // namespace serve_chaos_tests
