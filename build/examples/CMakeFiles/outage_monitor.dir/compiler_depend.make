# Empty compiler generated dependencies file for outage_monitor.
# This may be replaced when dependencies are built.
