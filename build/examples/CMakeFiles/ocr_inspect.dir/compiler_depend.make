# Empty compiler generated dependencies file for ocr_inspect.
# This may be replaced when dependencies are built.
