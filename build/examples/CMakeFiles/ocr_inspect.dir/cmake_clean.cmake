file(REMOVE_RECURSE
  "CMakeFiles/ocr_inspect.dir/ocr_inspect.cpp.o"
  "CMakeFiles/ocr_inspect.dir/ocr_inspect.cpp.o.d"
  "ocr_inspect"
  "ocr_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
