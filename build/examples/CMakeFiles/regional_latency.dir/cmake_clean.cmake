file(REMOVE_RECURSE
  "CMakeFiles/regional_latency.dir/regional_latency.cpp.o"
  "CMakeFiles/regional_latency.dir/regional_latency.cpp.o.d"
  "regional_latency"
  "regional_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regional_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
