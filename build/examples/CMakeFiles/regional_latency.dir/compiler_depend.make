# Empty compiler generated dependencies file for regional_latency.
# This may be replaced when dependencies are built.
