file(REMOVE_RECURSE
  "CMakeFiles/tero_cli.dir/tero_cli.cpp.o"
  "CMakeFiles/tero_cli.dir/tero_cli.cpp.o.d"
  "tero_cli"
  "tero_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
