# Empty compiler generated dependencies file for tero_cli.
# This may be replaced when dependencies are built.
