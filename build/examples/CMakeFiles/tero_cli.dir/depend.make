# Empty dependencies file for tero_cli.
# This may be replaced when dependencies are built.
