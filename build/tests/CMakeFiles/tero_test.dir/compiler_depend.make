# Empty compiler generated dependencies file for tero_test.
# This may be replaced when dependencies are built.
