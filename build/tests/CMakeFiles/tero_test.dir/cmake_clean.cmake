file(REMOVE_RECURSE
  "CMakeFiles/tero_test.dir/tero_test.cpp.o"
  "CMakeFiles/tero_test.dir/tero_test.cpp.o.d"
  "tero_test"
  "tero_test.pdb"
  "tero_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
