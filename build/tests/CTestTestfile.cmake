# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/ocr_test[1]_include.cmake")
include("/root/repo/build/tests/nlp_test[1]_include.cmake")
include("/root/repo/build/tests/social_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/download_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/anomaly_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/tero_test[1]_include.cmake")
