
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/gazetteer.cpp" "src/geo/CMakeFiles/tero_geo.dir/gazetteer.cpp.o" "gcc" "src/geo/CMakeFiles/tero_geo.dir/gazetteer.cpp.o.d"
  "/root/repo/src/geo/gazetteer_data.cpp" "src/geo/CMakeFiles/tero_geo.dir/gazetteer_data.cpp.o" "gcc" "src/geo/CMakeFiles/tero_geo.dir/gazetteer_data.cpp.o.d"
  "/root/repo/src/geo/geo.cpp" "src/geo/CMakeFiles/tero_geo.dir/geo.cpp.o" "gcc" "src/geo/CMakeFiles/tero_geo.dir/geo.cpp.o.d"
  "/root/repo/src/geo/servers.cpp" "src/geo/CMakeFiles/tero_geo.dir/servers.cpp.o" "gcc" "src/geo/CMakeFiles/tero_geo.dir/servers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
