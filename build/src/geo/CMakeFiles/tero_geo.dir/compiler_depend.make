# Empty compiler generated dependencies file for tero_geo.
# This may be replaced when dependencies are built.
