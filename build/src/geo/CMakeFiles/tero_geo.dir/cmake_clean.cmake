file(REMOVE_RECURSE
  "CMakeFiles/tero_geo.dir/gazetteer.cpp.o"
  "CMakeFiles/tero_geo.dir/gazetteer.cpp.o.d"
  "CMakeFiles/tero_geo.dir/gazetteer_data.cpp.o"
  "CMakeFiles/tero_geo.dir/gazetteer_data.cpp.o.d"
  "CMakeFiles/tero_geo.dir/geo.cpp.o"
  "CMakeFiles/tero_geo.dir/geo.cpp.o.d"
  "CMakeFiles/tero_geo.dir/servers.cpp.o"
  "CMakeFiles/tero_geo.dir/servers.cpp.o.d"
  "libtero_geo.a"
  "libtero_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
