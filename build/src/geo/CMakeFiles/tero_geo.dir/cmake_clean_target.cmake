file(REMOVE_RECURSE
  "libtero_geo.a"
)
