# Empty dependencies file for tero_image.
# This may be replaced when dependencies are built.
