file(REMOVE_RECURSE
  "CMakeFiles/tero_image.dir/draw.cpp.o"
  "CMakeFiles/tero_image.dir/draw.cpp.o.d"
  "CMakeFiles/tero_image.dir/font.cpp.o"
  "CMakeFiles/tero_image.dir/font.cpp.o.d"
  "CMakeFiles/tero_image.dir/image.cpp.o"
  "CMakeFiles/tero_image.dir/image.cpp.o.d"
  "CMakeFiles/tero_image.dir/ops.cpp.o"
  "CMakeFiles/tero_image.dir/ops.cpp.o.d"
  "libtero_image.a"
  "libtero_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
