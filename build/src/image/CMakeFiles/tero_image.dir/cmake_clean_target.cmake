file(REMOVE_RECURSE
  "libtero_image.a"
)
