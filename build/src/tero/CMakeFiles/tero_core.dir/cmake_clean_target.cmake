file(REMOVE_RECURSE
  "libtero_core.a"
)
