file(REMOVE_RECURSE
  "CMakeFiles/tero_core.dir/channel.cpp.o"
  "CMakeFiles/tero_core.dir/channel.cpp.o.d"
  "CMakeFiles/tero_core.dir/export.cpp.o"
  "CMakeFiles/tero_core.dir/export.cpp.o.d"
  "CMakeFiles/tero_core.dir/pipeline.cpp.o"
  "CMakeFiles/tero_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/tero_core.dir/realtime.cpp.o"
  "CMakeFiles/tero_core.dir/realtime.cpp.o.d"
  "libtero_core.a"
  "libtero_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
