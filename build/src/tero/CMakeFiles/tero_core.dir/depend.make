# Empty dependencies file for tero_core.
# This may be replaced when dependencies are built.
