
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/game.cpp" "src/netsim/CMakeFiles/tero_netsim.dir/game.cpp.o" "gcc" "src/netsim/CMakeFiles/tero_netsim.dir/game.cpp.o.d"
  "/root/repo/src/netsim/link.cpp" "src/netsim/CMakeFiles/tero_netsim.dir/link.cpp.o" "gcc" "src/netsim/CMakeFiles/tero_netsim.dir/link.cpp.o.d"
  "/root/repo/src/netsim/tcp.cpp" "src/netsim/CMakeFiles/tero_netsim.dir/tcp.cpp.o" "gcc" "src/netsim/CMakeFiles/tero_netsim.dir/tcp.cpp.o.d"
  "/root/repo/src/netsim/testbed.cpp" "src/netsim/CMakeFiles/tero_netsim.dir/testbed.cpp.o" "gcc" "src/netsim/CMakeFiles/tero_netsim.dir/testbed.cpp.o.d"
  "/root/repo/src/netsim/udp.cpp" "src/netsim/CMakeFiles/tero_netsim.dir/udp.cpp.o" "gcc" "src/netsim/CMakeFiles/tero_netsim.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tero_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
