# Empty compiler generated dependencies file for tero_netsim.
# This may be replaced when dependencies are built.
