file(REMOVE_RECURSE
  "libtero_netsim.a"
)
