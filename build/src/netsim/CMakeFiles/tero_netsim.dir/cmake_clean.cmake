file(REMOVE_RECURSE
  "CMakeFiles/tero_netsim.dir/game.cpp.o"
  "CMakeFiles/tero_netsim.dir/game.cpp.o.d"
  "CMakeFiles/tero_netsim.dir/link.cpp.o"
  "CMakeFiles/tero_netsim.dir/link.cpp.o.d"
  "CMakeFiles/tero_netsim.dir/tcp.cpp.o"
  "CMakeFiles/tero_netsim.dir/tcp.cpp.o.d"
  "CMakeFiles/tero_netsim.dir/testbed.cpp.o"
  "CMakeFiles/tero_netsim.dir/testbed.cpp.o.d"
  "CMakeFiles/tero_netsim.dir/udp.cpp.o"
  "CMakeFiles/tero_netsim.dir/udp.cpp.o.d"
  "libtero_netsim.a"
  "libtero_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
