file(REMOVE_RECURSE
  "libtero_anomaly.a"
)
