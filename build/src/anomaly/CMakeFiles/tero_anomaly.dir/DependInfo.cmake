
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anomaly/iforest.cpp" "src/anomaly/CMakeFiles/tero_anomaly.dir/iforest.cpp.o" "gcc" "src/anomaly/CMakeFiles/tero_anomaly.dir/iforest.cpp.o.d"
  "/root/repo/src/anomaly/iqr.cpp" "src/anomaly/CMakeFiles/tero_anomaly.dir/iqr.cpp.o" "gcc" "src/anomaly/CMakeFiles/tero_anomaly.dir/iqr.cpp.o.d"
  "/root/repo/src/anomaly/lof.cpp" "src/anomaly/CMakeFiles/tero_anomaly.dir/lof.cpp.o" "gcc" "src/anomaly/CMakeFiles/tero_anomaly.dir/lof.cpp.o.d"
  "/root/repo/src/anomaly/mcd.cpp" "src/anomaly/CMakeFiles/tero_anomaly.dir/mcd.cpp.o" "gcc" "src/anomaly/CMakeFiles/tero_anomaly.dir/mcd.cpp.o.d"
  "/root/repo/src/anomaly/pelt.cpp" "src/anomaly/CMakeFiles/tero_anomaly.dir/pelt.cpp.o" "gcc" "src/anomaly/CMakeFiles/tero_anomaly.dir/pelt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tero_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
