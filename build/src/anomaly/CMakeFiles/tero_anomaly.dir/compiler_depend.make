# Empty compiler generated dependencies file for tero_anomaly.
# This may be replaced when dependencies are built.
