file(REMOVE_RECURSE
  "CMakeFiles/tero_anomaly.dir/iforest.cpp.o"
  "CMakeFiles/tero_anomaly.dir/iforest.cpp.o.d"
  "CMakeFiles/tero_anomaly.dir/iqr.cpp.o"
  "CMakeFiles/tero_anomaly.dir/iqr.cpp.o.d"
  "CMakeFiles/tero_anomaly.dir/lof.cpp.o"
  "CMakeFiles/tero_anomaly.dir/lof.cpp.o.d"
  "CMakeFiles/tero_anomaly.dir/mcd.cpp.o"
  "CMakeFiles/tero_anomaly.dir/mcd.cpp.o.d"
  "CMakeFiles/tero_anomaly.dir/pelt.cpp.o"
  "CMakeFiles/tero_anomaly.dir/pelt.cpp.o.d"
  "libtero_anomaly.a"
  "libtero_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
