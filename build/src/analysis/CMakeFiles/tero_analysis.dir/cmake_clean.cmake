file(REMOVE_RECURSE
  "CMakeFiles/tero_analysis.dir/anomalies.cpp.o"
  "CMakeFiles/tero_analysis.dir/anomalies.cpp.o.d"
  "CMakeFiles/tero_analysis.dir/clusters.cpp.o"
  "CMakeFiles/tero_analysis.dir/clusters.cpp.o.d"
  "CMakeFiles/tero_analysis.dir/distributions.cpp.o"
  "CMakeFiles/tero_analysis.dir/distributions.cpp.o.d"
  "CMakeFiles/tero_analysis.dir/outlier_rejection.cpp.o"
  "CMakeFiles/tero_analysis.dir/outlier_rejection.cpp.o.d"
  "CMakeFiles/tero_analysis.dir/segmentation.cpp.o"
  "CMakeFiles/tero_analysis.dir/segmentation.cpp.o.d"
  "CMakeFiles/tero_analysis.dir/shared.cpp.o"
  "CMakeFiles/tero_analysis.dir/shared.cpp.o.d"
  "libtero_analysis.a"
  "libtero_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
