# Empty dependencies file for tero_analysis.
# This may be replaced when dependencies are built.
