file(REMOVE_RECURSE
  "libtero_analysis.a"
)
