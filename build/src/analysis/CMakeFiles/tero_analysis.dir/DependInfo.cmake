
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/anomalies.cpp" "src/analysis/CMakeFiles/tero_analysis.dir/anomalies.cpp.o" "gcc" "src/analysis/CMakeFiles/tero_analysis.dir/anomalies.cpp.o.d"
  "/root/repo/src/analysis/clusters.cpp" "src/analysis/CMakeFiles/tero_analysis.dir/clusters.cpp.o" "gcc" "src/analysis/CMakeFiles/tero_analysis.dir/clusters.cpp.o.d"
  "/root/repo/src/analysis/distributions.cpp" "src/analysis/CMakeFiles/tero_analysis.dir/distributions.cpp.o" "gcc" "src/analysis/CMakeFiles/tero_analysis.dir/distributions.cpp.o.d"
  "/root/repo/src/analysis/outlier_rejection.cpp" "src/analysis/CMakeFiles/tero_analysis.dir/outlier_rejection.cpp.o" "gcc" "src/analysis/CMakeFiles/tero_analysis.dir/outlier_rejection.cpp.o.d"
  "/root/repo/src/analysis/segmentation.cpp" "src/analysis/CMakeFiles/tero_analysis.dir/segmentation.cpp.o" "gcc" "src/analysis/CMakeFiles/tero_analysis.dir/segmentation.cpp.o.d"
  "/root/repo/src/analysis/shared.cpp" "src/analysis/CMakeFiles/tero_analysis.dir/shared.cpp.o" "gcc" "src/analysis/CMakeFiles/tero_analysis.dir/shared.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/tero_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tero_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
