file(REMOVE_RECURSE
  "libtero_util.a"
)
