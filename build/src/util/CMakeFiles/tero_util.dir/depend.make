# Empty dependencies file for tero_util.
# This may be replaced when dependencies are built.
