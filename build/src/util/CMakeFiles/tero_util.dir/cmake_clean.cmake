file(REMOVE_RECURSE
  "CMakeFiles/tero_util.dir/event_loop.cpp.o"
  "CMakeFiles/tero_util.dir/event_loop.cpp.o.d"
  "CMakeFiles/tero_util.dir/rng.cpp.o"
  "CMakeFiles/tero_util.dir/rng.cpp.o.d"
  "CMakeFiles/tero_util.dir/strings.cpp.o"
  "CMakeFiles/tero_util.dir/strings.cpp.o.d"
  "CMakeFiles/tero_util.dir/table.cpp.o"
  "CMakeFiles/tero_util.dir/table.cpp.o.d"
  "libtero_util.a"
  "libtero_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
