# Empty dependencies file for tero_stats.
# This may be replaced when dependencies are built.
