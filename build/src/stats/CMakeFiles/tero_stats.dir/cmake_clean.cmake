file(REMOVE_RECURSE
  "CMakeFiles/tero_stats.dir/descriptive.cpp.o"
  "CMakeFiles/tero_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/tero_stats.dir/distributions.cpp.o"
  "CMakeFiles/tero_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/tero_stats.dir/matrix.cpp.o"
  "CMakeFiles/tero_stats.dir/matrix.cpp.o.d"
  "CMakeFiles/tero_stats.dir/probit.cpp.o"
  "CMakeFiles/tero_stats.dir/probit.cpp.o.d"
  "CMakeFiles/tero_stats.dir/wasserstein.cpp.o"
  "CMakeFiles/tero_stats.dir/wasserstein.cpp.o.d"
  "libtero_stats.a"
  "libtero_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
