
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/tero_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/tero_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/tero_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/tero_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/matrix.cpp" "src/stats/CMakeFiles/tero_stats.dir/matrix.cpp.o" "gcc" "src/stats/CMakeFiles/tero_stats.dir/matrix.cpp.o.d"
  "/root/repo/src/stats/probit.cpp" "src/stats/CMakeFiles/tero_stats.dir/probit.cpp.o" "gcc" "src/stats/CMakeFiles/tero_stats.dir/probit.cpp.o.d"
  "/root/repo/src/stats/wasserstein.cpp" "src/stats/CMakeFiles/tero_stats.dir/wasserstein.cpp.o" "gcc" "src/stats/CMakeFiles/tero_stats.dir/wasserstein.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
