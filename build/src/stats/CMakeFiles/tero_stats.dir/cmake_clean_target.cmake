file(REMOVE_RECURSE
  "libtero_stats.a"
)
