file(REMOVE_RECURSE
  "CMakeFiles/tero_nlp.dir/combine.cpp.o"
  "CMakeFiles/tero_nlp.dir/combine.cpp.o.d"
  "CMakeFiles/tero_nlp.dir/filter.cpp.o"
  "CMakeFiles/tero_nlp.dir/filter.cpp.o.d"
  "CMakeFiles/tero_nlp.dir/geocoders.cpp.o"
  "CMakeFiles/tero_nlp.dir/geocoders.cpp.o.d"
  "CMakeFiles/tero_nlp.dir/geoparsers.cpp.o"
  "CMakeFiles/tero_nlp.dir/geoparsers.cpp.o.d"
  "CMakeFiles/tero_nlp.dir/matcher.cpp.o"
  "CMakeFiles/tero_nlp.dir/matcher.cpp.o.d"
  "libtero_nlp.a"
  "libtero_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
