# Empty compiler generated dependencies file for tero_nlp.
# This may be replaced when dependencies are built.
