
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/combine.cpp" "src/nlp/CMakeFiles/tero_nlp.dir/combine.cpp.o" "gcc" "src/nlp/CMakeFiles/tero_nlp.dir/combine.cpp.o.d"
  "/root/repo/src/nlp/filter.cpp" "src/nlp/CMakeFiles/tero_nlp.dir/filter.cpp.o" "gcc" "src/nlp/CMakeFiles/tero_nlp.dir/filter.cpp.o.d"
  "/root/repo/src/nlp/geocoders.cpp" "src/nlp/CMakeFiles/tero_nlp.dir/geocoders.cpp.o" "gcc" "src/nlp/CMakeFiles/tero_nlp.dir/geocoders.cpp.o.d"
  "/root/repo/src/nlp/geoparsers.cpp" "src/nlp/CMakeFiles/tero_nlp.dir/geoparsers.cpp.o" "gcc" "src/nlp/CMakeFiles/tero_nlp.dir/geoparsers.cpp.o.d"
  "/root/repo/src/nlp/matcher.cpp" "src/nlp/CMakeFiles/tero_nlp.dir/matcher.cpp.o" "gcc" "src/nlp/CMakeFiles/tero_nlp.dir/matcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/tero_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
