file(REMOVE_RECURSE
  "libtero_nlp.a"
)
