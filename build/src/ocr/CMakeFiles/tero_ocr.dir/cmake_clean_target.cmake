file(REMOVE_RECURSE
  "libtero_ocr.a"
)
