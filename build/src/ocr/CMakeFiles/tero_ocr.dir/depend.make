# Empty dependencies file for tero_ocr.
# This may be replaced when dependencies are built.
