file(REMOVE_RECURSE
  "CMakeFiles/tero_ocr.dir/engines.cpp.o"
  "CMakeFiles/tero_ocr.dir/engines.cpp.o.d"
  "CMakeFiles/tero_ocr.dir/extractor.cpp.o"
  "CMakeFiles/tero_ocr.dir/extractor.cpp.o.d"
  "CMakeFiles/tero_ocr.dir/game_ui.cpp.o"
  "CMakeFiles/tero_ocr.dir/game_ui.cpp.o.d"
  "CMakeFiles/tero_ocr.dir/preprocess.cpp.o"
  "CMakeFiles/tero_ocr.dir/preprocess.cpp.o.d"
  "libtero_ocr.a"
  "libtero_ocr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_ocr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
