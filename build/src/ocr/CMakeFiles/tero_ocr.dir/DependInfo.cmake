
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocr/engines.cpp" "src/ocr/CMakeFiles/tero_ocr.dir/engines.cpp.o" "gcc" "src/ocr/CMakeFiles/tero_ocr.dir/engines.cpp.o.d"
  "/root/repo/src/ocr/extractor.cpp" "src/ocr/CMakeFiles/tero_ocr.dir/extractor.cpp.o" "gcc" "src/ocr/CMakeFiles/tero_ocr.dir/extractor.cpp.o.d"
  "/root/repo/src/ocr/game_ui.cpp" "src/ocr/CMakeFiles/tero_ocr.dir/game_ui.cpp.o" "gcc" "src/ocr/CMakeFiles/tero_ocr.dir/game_ui.cpp.o.d"
  "/root/repo/src/ocr/preprocess.cpp" "src/ocr/CMakeFiles/tero_ocr.dir/preprocess.cpp.o" "gcc" "src/ocr/CMakeFiles/tero_ocr.dir/preprocess.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/tero_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
