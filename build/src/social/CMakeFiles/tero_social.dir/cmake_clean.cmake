file(REMOVE_RECURSE
  "CMakeFiles/tero_social.dir/locator.cpp.o"
  "CMakeFiles/tero_social.dir/locator.cpp.o.d"
  "CMakeFiles/tero_social.dir/platform.cpp.o"
  "CMakeFiles/tero_social.dir/platform.cpp.o.d"
  "libtero_social.a"
  "libtero_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
