# Empty compiler generated dependencies file for tero_social.
# This may be replaced when dependencies are built.
