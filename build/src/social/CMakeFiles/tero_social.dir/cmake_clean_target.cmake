file(REMOVE_RECURSE
  "libtero_social.a"
)
