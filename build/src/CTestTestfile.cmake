# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geo")
subdirs("stats")
subdirs("image")
subdirs("ocr")
subdirs("nlp")
subdirs("social")
subdirs("store")
subdirs("download")
subdirs("netsim")
subdirs("analysis")
subdirs("anomaly")
subdirs("synth")
subdirs("tero")
