file(REMOVE_RECURSE
  "libtero_synth.a"
)
