# Empty compiler generated dependencies file for tero_synth.
# This may be replaced when dependencies are built.
