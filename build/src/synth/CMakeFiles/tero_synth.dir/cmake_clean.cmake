file(REMOVE_RECURSE
  "CMakeFiles/tero_synth.dir/latency_model.cpp.o"
  "CMakeFiles/tero_synth.dir/latency_model.cpp.o.d"
  "CMakeFiles/tero_synth.dir/sessions.cpp.o"
  "CMakeFiles/tero_synth.dir/sessions.cpp.o.d"
  "CMakeFiles/tero_synth.dir/text_gen.cpp.o"
  "CMakeFiles/tero_synth.dir/text_gen.cpp.o.d"
  "CMakeFiles/tero_synth.dir/thumbnail.cpp.o"
  "CMakeFiles/tero_synth.dir/thumbnail.cpp.o.d"
  "CMakeFiles/tero_synth.dir/world.cpp.o"
  "CMakeFiles/tero_synth.dir/world.cpp.o.d"
  "libtero_synth.a"
  "libtero_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
