file(REMOVE_RECURSE
  "CMakeFiles/tero_download.dir/cdn.cpp.o"
  "CMakeFiles/tero_download.dir/cdn.cpp.o.d"
  "CMakeFiles/tero_download.dir/rate_limiter.cpp.o"
  "CMakeFiles/tero_download.dir/rate_limiter.cpp.o.d"
  "CMakeFiles/tero_download.dir/system.cpp.o"
  "CMakeFiles/tero_download.dir/system.cpp.o.d"
  "libtero_download.a"
  "libtero_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
