# Empty compiler generated dependencies file for tero_download.
# This may be replaced when dependencies are built.
