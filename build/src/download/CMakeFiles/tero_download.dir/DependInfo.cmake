
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/download/cdn.cpp" "src/download/CMakeFiles/tero_download.dir/cdn.cpp.o" "gcc" "src/download/CMakeFiles/tero_download.dir/cdn.cpp.o.d"
  "/root/repo/src/download/rate_limiter.cpp" "src/download/CMakeFiles/tero_download.dir/rate_limiter.cpp.o" "gcc" "src/download/CMakeFiles/tero_download.dir/rate_limiter.cpp.o.d"
  "/root/repo/src/download/system.cpp" "src/download/CMakeFiles/tero_download.dir/system.cpp.o" "gcc" "src/download/CMakeFiles/tero_download.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/tero_store.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
