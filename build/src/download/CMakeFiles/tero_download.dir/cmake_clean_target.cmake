file(REMOVE_RECURSE
  "libtero_download.a"
)
