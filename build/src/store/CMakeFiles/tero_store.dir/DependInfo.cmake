
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/consistent_hash.cpp" "src/store/CMakeFiles/tero_store.dir/consistent_hash.cpp.o" "gcc" "src/store/CMakeFiles/tero_store.dir/consistent_hash.cpp.o.d"
  "/root/repo/src/store/doc_store.cpp" "src/store/CMakeFiles/tero_store.dir/doc_store.cpp.o" "gcc" "src/store/CMakeFiles/tero_store.dir/doc_store.cpp.o.d"
  "/root/repo/src/store/kv_store.cpp" "src/store/CMakeFiles/tero_store.dir/kv_store.cpp.o" "gcc" "src/store/CMakeFiles/tero_store.dir/kv_store.cpp.o.d"
  "/root/repo/src/store/object_store.cpp" "src/store/CMakeFiles/tero_store.dir/object_store.cpp.o" "gcc" "src/store/CMakeFiles/tero_store.dir/object_store.cpp.o.d"
  "/root/repo/src/store/persistence.cpp" "src/store/CMakeFiles/tero_store.dir/persistence.cpp.o" "gcc" "src/store/CMakeFiles/tero_store.dir/persistence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
