# Empty dependencies file for tero_store.
# This may be replaced when dependencies are built.
