file(REMOVE_RECURSE
  "libtero_store.a"
)
