file(REMOVE_RECURSE
  "CMakeFiles/tero_store.dir/consistent_hash.cpp.o"
  "CMakeFiles/tero_store.dir/consistent_hash.cpp.o.d"
  "CMakeFiles/tero_store.dir/doc_store.cpp.o"
  "CMakeFiles/tero_store.dir/doc_store.cpp.o.d"
  "CMakeFiles/tero_store.dir/kv_store.cpp.o"
  "CMakeFiles/tero_store.dir/kv_store.cpp.o.d"
  "CMakeFiles/tero_store.dir/object_store.cpp.o"
  "CMakeFiles/tero_store.dir/object_store.cpp.o.d"
  "CMakeFiles/tero_store.dir/persistence.cpp.o"
  "CMakeFiles/tero_store.dir/persistence.cpp.o.d"
  "libtero_store.a"
  "libtero_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tero_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
