# Empty dependencies file for bench_table5_probit.
# This may be replaced when dependencies are built.
