file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_probit.dir/bench_table5_probit.cpp.o"
  "CMakeFiles/bench_table5_probit.dir/bench_table5_probit.cpp.o.d"
  "bench_table5_probit"
  "bench_table5_probit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_probit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
