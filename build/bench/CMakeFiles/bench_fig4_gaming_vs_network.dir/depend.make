# Empty dependencies file for bench_fig4_gaming_vs_network.
# This may be replaced when dependencies are built.
