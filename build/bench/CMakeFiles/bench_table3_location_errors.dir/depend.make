# Empty dependencies file for bench_table3_location_errors.
# This may be replaced when dependencies are built.
