# Empty dependencies file for bench_fig2_fig14_clusters.
# This may be replaced when dependencies are built.
