file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_regional.dir/bench_fig9_regional.cpp.o"
  "CMakeFiles/bench_fig9_regional.dir/bench_fig9_regional.cpp.o.d"
  "bench_fig9_regional"
  "bench_fig9_regional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_regional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
