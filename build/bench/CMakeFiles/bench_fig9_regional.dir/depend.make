# Empty dependencies file for bench_fig9_regional.
# This may be replaced when dependencies are built.
