file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_error_dists.dir/bench_fig5_error_dists.cpp.o"
  "CMakeFiles/bench_fig5_error_dists.dir/bench_fig5_error_dists.cpp.o.d"
  "bench_fig5_error_dists"
  "bench_fig5_error_dists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_error_dists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
