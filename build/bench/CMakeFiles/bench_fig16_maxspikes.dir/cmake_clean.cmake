file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_maxspikes.dir/bench_fig16_maxspikes.cpp.o"
  "CMakeFiles/bench_fig16_maxspikes.dir/bench_fig16_maxspikes.cpp.o.d"
  "bench_fig16_maxspikes"
  "bench_fig16_maxspikes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_maxspikes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
