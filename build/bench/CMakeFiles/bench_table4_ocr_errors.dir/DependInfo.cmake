
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_ocr_errors.cpp" "bench/CMakeFiles/bench_table4_ocr_errors.dir/bench_table4_ocr_errors.cpp.o" "gcc" "bench/CMakeFiles/bench_table4_ocr_errors.dir/bench_table4_ocr_errors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tero/CMakeFiles/tero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/anomaly/CMakeFiles/tero_anomaly.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/tero_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/download/CMakeFiles/tero_download.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/tero_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tero_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/tero_social.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/tero_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/ocr/CMakeFiles/tero_ocr.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/tero_image.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tero_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tero_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/tero_store.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
