# Empty dependencies file for bench_table4_ocr_errors.
# This may be replaced when dependencies are built.
