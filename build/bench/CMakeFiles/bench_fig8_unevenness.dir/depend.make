# Empty dependencies file for bench_fig8_unevenness.
# This may be replaced when dependencies are built.
