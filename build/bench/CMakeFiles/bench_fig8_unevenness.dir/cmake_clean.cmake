file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_unevenness.dir/bench_fig8_unevenness.cpp.o"
  "CMakeFiles/bench_fig8_unevenness.dir/bench_fig8_unevenness.cpp.o.d"
  "bench_fig8_unevenness"
  "bench_fig8_unevenness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_unevenness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
