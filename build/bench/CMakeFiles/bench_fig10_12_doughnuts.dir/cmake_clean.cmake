file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_12_doughnuts.dir/bench_fig10_12_doughnuts.cpp.o"
  "CMakeFiles/bench_fig10_12_doughnuts.dir/bench_fig10_12_doughnuts.cpp.o.d"
  "bench_fig10_12_doughnuts"
  "bench_fig10_12_doughnuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_12_doughnuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
