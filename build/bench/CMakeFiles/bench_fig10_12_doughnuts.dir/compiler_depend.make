# Empty compiler generated dependencies file for bench_fig10_12_doughnuts.
# This may be replaced when dependencies are built.
