file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_retention.dir/bench_ext_retention.cpp.o"
  "CMakeFiles/bench_ext_retention.dir/bench_ext_retention.cpp.o.d"
  "bench_ext_retention"
  "bench_ext_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
