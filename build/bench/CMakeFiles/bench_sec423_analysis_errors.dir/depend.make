# Empty dependencies file for bench_sec423_analysis_errors.
# This may be replaced when dependencies are built.
