file(REMOVE_RECURSE
  "CMakeFiles/bench_sec423_analysis_errors.dir/bench_sec423_analysis_errors.cpp.o"
  "CMakeFiles/bench_sec423_analysis_errors.dir/bench_sec423_analysis_errors.cpp.o.d"
  "bench_sec423_analysis_errors"
  "bench_sec423_analysis_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec423_analysis_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
