file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_18_anomaly_baselines.dir/bench_fig17_18_anomaly_baselines.cpp.o"
  "CMakeFiles/bench_fig17_18_anomaly_baselines.dir/bench_fig17_18_anomaly_baselines.cpp.o.d"
  "bench_fig17_18_anomaly_baselines"
  "bench_fig17_18_anomaly_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_18_anomaly_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
