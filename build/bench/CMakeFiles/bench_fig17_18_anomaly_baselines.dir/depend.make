# Empty dependencies file for bench_fig17_18_anomaly_baselines.
# This may be replaced when dependencies are built.
