file(REMOVE_RECURSE
  "CMakeFiles/bench_appA_download.dir/bench_appA_download.cpp.o"
  "CMakeFiles/bench_appA_download.dir/bench_appA_download.cpp.o.d"
  "bench_appA_download"
  "bench_appA_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appA_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
