# Empty dependencies file for bench_appA_download.
# This may be replaced when dependencies are built.
