#!/usr/bin/env bash
# CI driver: the build/test jobs a change must pass.
#
#   tier1        Release build, full test suite          (the seed contract)
#   asan         AddressSanitizer, smoke-labeled tests   (fast memory checks)
#   tsan         ThreadSanitizer, full test suite        (pool + pipeline races)
#   bench-smoke  Run bench binaries at tiny N, then parse-check the
#                BENCH_*.json artifacts with bench_json_check (obs::json).
#                Catches bench bitrot and malformed reporter output without
#                paying for a full benchmark run.
#   chaos-smoke  Fault-injection gate: the chaos-labeled test suite
#                (ctest -L chaos), a multi-seed `tero_cli chaos` sweep
#                (transient faults => bit-identical dataset; permanent
#                faults => explicit quarantine/degraded output), and the
#                fault-point overhead benchmark with an absolute ceiling on
#                the disabled-point cost.
#   obs-smoke    Observability gate (DESIGN.md §13): the timeline/SLO test
#                suites, a Prometheus exposition format check over `tero_cli
#                obs export --prom` output (bench_json_check), and the
#                determinism diff — a same-seed `obs export` at 1 and 8
#                threads must produce byte-identical timeline and SLO JSON.
#   cluster-smoke  Multi-node serving gate (DESIGN.md §14): the
#                cluster-labeled test suite (ctest -L cluster), a
#                `tero_cli cluster kill` / `cluster join` invariant run
#                (availability under node loss, breaker SLO firing,
#                ownership audit, remap bound — the CLI exits nonzero on
#                any violation), and bench_cluster --tiny with a JSON
#                parse check plus availability/determinism floors on
#                BENCH_cluster.json.
#   tsdb-smoke   Tiered-storage gate (DESIGN.md §15): the tsdb-labeled test
#                suite (ctest -L tsdb), bench_tsdb --tiny with a JSON parse
#                check plus a >= 5x compression-ratio floor and a
#                thread-determinism flag on BENCH_tsdb.json, and a 10-seed
#                crash-during-compaction recovery sweep (`tero_cli tsdb
#                verify` — acknowledged samples must survive any injected
#                crash, and reopening a torn directory must reproduce the
#                pre-crash dataset digest).
#   control-smoke  Overload-resilience gate (DESIGN.md §16): the
#                control-labeled test suite (ctest -L control),
#                bench_control --tiny with a JSON parse check plus awk
#                floors (reactive must shed less than static at 2x and 4x
#                overload, the brownout ladder must engage before the
#                first shed, the 1-vs-N-thread decision logs must match),
#                and a 3-seed `tero_cli control sweep` determinism sweep —
#                the per-tick decision log at 1 and 8 threads must be
#                byte-identical (cmp) for every seed.
#   perf-smoke   Extraction fast-path gate (DESIGN.md §12): the simd_test
#                bit-identity suite, the per-stage extraction microbenches
#                checked against the committed floors in
#                bench/perf_baseline.txt (>15% throughput drop fails), and
#                a TERO_SIMD=off full-OCR run that must reproduce the
#                vectorized run's dataset digest exactly.
#
# Run the default three:   scripts/ci.sh
# Run a subset:            scripts/ci.sh asan tsan
# Bench artifact gate:     scripts/ci.sh bench-smoke
# Fault-injection gate:    scripts/ci.sh chaos-smoke
# Observability gate:      scripts/ci.sh obs-smoke
# Cluster gate:            scripts/ci.sh cluster-smoke
# Tiered-storage gate:     scripts/ci.sh tsdb-smoke
# Overload-control gate:   scripts/ci.sh control-smoke
# Extraction perf gate:    scripts/ci.sh perf-smoke
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=("$@")
if [ ${#jobs[@]} -eq 0 ]; then
  jobs=(tier1 asan tsan)
fi

run_preset() {
  local preset="$1" test_preset="$2"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$test_preset" -j "$(nproc)"
}

run_bench_smoke() {
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" \
    --target bench_perf_micro bench_serve bench_stream bench_cluster \
    bench_tsdb bench_control bench_json_check
  # Benchmarks write BENCH_*.json into their cwd; keep artifacts in build/bench.
  (
    cd build/bench
    ./bench_perf_micro --benchmark_filter='BM_CleanStream/100' \
      --benchmark_min_time=0.01
    ./bench_serve --tiny
    ./bench_stream --tiny
    ./bench_cluster --tiny
    ./bench_tsdb --tiny
    ./bench_control --tiny
    # Every bench above must have left its artifact behind; name the missing
    # ones explicitly so a silently-skipped reporter is obvious from the log.
    local artifacts missing sizes
    artifacts=(BENCH_perf_micro.json BENCH_serve.json BENCH_stream.json \
               BENCH_cluster.json BENCH_tsdb.json BENCH_control.json)
    missing=()
    sizes=""
    for artifact in "${artifacts[@]}"; do
      if [ -s "$artifact" ]; then
        sizes+=" $artifact=$(wc -c < "$artifact")B"
      else
        missing+=("$artifact")
      fi
    done
    if [ ${#missing[@]} -gt 0 ]; then
      echo "bench-smoke: missing or empty artifacts: ${missing[*]}" >&2
      echo "bench-smoke: a bench binary exited without writing its JSON" \
           "report — check its output above" >&2
      exit 1
    fi
    echo "bench-smoke: artifacts$sizes"
    ./bench_json_check "${artifacts[@]}"
  )
}

run_tsdb_smoke() {
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" \
    --target tsdb_test tero_cli bench_tsdb bench_json_check
  (cd build && ctest -L tsdb --output-on-failure -j "$(nproc)")
  # Bench artifact gate: BENCH_tsdb.json must parse, the Gorilla-lineage
  # codec must beat the 16 B/sample raw encoding by >= 5x, and the sealing/
  # compaction schedule must be bit-identical at 1 thread vs machine width.
  (
    cd build/bench
    ./bench_tsdb --tiny
    ./bench_json_check BENCH_tsdb.json
    awk '/"compression"/ {
           split($0, a, "\"ratio\": ")
           split(a[2], b, ",")
           if (b[1] + 0 < 5.0) {
             print "tsdb-smoke: compression ratio " b[1] " < 5.0 floor"
             bad = 1
           }
           comp = 1
         }
         /"determinism"/ {
           if (index($0, "\"digest_match\": true") == 0 ||
               index($0, "\"layout_match\": true") == 0) {
             print "tsdb-smoke: compaction not thread-deterministic"
             bad = 1
           }
           det = 1
         }
         END {
           if (!comp || !det) {
             print "tsdb-smoke: compression/determinism rows missing from JSON"
             bad = 1
           }
           exit bad
         }' BENCH_tsdb.json
  )
  # Crash-recovery sweep: 10 seeds, each with a seeded crash injected into
  # tsdb.compact mid-run. The CLI reopens the torn directory and exits
  # nonzero if any acknowledged sample is lost, the recovered digest
  # diverges, or the 1-vs-8-thread schedules disagree.
  ./build/examples/tero_cli tsdb verify 10 --threads 8
  echo "tsdb-smoke: compression, determinism and crash-recovery gates held"
}

run_chaos_smoke() {
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" \
    --target chaos_test tero_cli bench_perf_micro
  (cd build && ctest -L chaos --output-on-failure -j "$(nproc)")
  # Multi-seed deterministic chaos sweep; tero_cli exits nonzero when any
  # resilience invariant is violated.
  ./build/examples/tero_cli chaos 5 40 2
  # Overhead gate: a disabled fault point must stay in the
  # tens-of-nanoseconds range per crossing. throughput is crossings/s, so
  # 1e7/s = 100 ns per crossing — a deliberately generous ceiling that
  # still catches accidental locks or allocations on the disabled path.
  (
    cd build/bench
    ./bench_perf_micro --benchmark_filter='BM_FaultPoint' \
      --benchmark_min_time=0.01
    awk -F'"throughput": ' '/BM_FaultPointDisabled/ {
        split($2, a, "}")
        if (a[1] + 0 < 1e7) {
          print "chaos-smoke: disabled fault point too slow: " a[1] " /s"
          exit 1
        }
        found = 1
      }
      END {
        if (!found) {
          print "chaos-smoke: BM_FaultPointDisabled missing from JSON"
          exit 1
        }
      }' BENCH_perf_micro.json
  )
}

run_obs_smoke() {
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" \
    --target timeline_test slo_test obs_test tero_cli bench_json_check
  ./build/tests/obs_test
  ./build/tests/timeline_test
  ./build/tests/slo_test
  # Exposition format gate: the CLI's Prometheus export must pass the
  # checker bench_json_check applies to .prom files (validate_prom_text).
  local out
  out=$(mktemp -d)
  ./build/examples/tero_cli obs export 40 2 8000 4 \
    --prom "$out/obs.prom" --json "$out/t4.json" --slo "$out/s4.json"
  ./build/bench/bench_json_check "$out/obs.prom"
  # Determinism gate (DESIGN.md §13): same seed, 1 vs 8 threads, the
  # timeline history and SLO verdict log must match byte for byte.
  ./build/examples/tero_cli obs export 40 2 8000 1 \
    --json "$out/t1.json" --slo "$out/s1.json"
  ./build/examples/tero_cli obs export 40 2 8000 8 \
    --json "$out/t8.json" --slo "$out/s8.json"
  if ! cmp -s "$out/t1.json" "$out/t8.json" ||
     ! cmp -s "$out/s1.json" "$out/s8.json"; then
    echo "obs-smoke: obs export differs across thread counts" >&2
    rm -rf "$out"
    exit 1
  fi
  rm -rf "$out"
  echo "obs-smoke: timeline + SLO output bit-identical at 1 and 8 threads"
}

run_cluster_smoke() {
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" \
    --target cluster_test tero_cli bench_cluster bench_json_check
  (cd build && ctest -L cluster --output-on-failure -j "$(nproc)")
  # Invariant runs: the CLI asserts availability under a mid-sweep node
  # kill, the breaker opening plus its burn-rate SLO firing within two
  # scrapes, and — for join — the ownership audit and the < 2/n remap
  # bound. Either command exiting nonzero fails the gate.
  ./build/examples/tero_cli cluster kill 60 2 12000 --threads 8
  ./build/examples/tero_cli cluster join 60 2 12000 --threads 8
  # Bench artifact gate: BENCH_cluster.json must parse and its committed
  # floors must hold — the 1-vs-N-thread churn sweep stayed bit-identical
  # and availability under a single-node kill never dropped below 99%.
  (
    cd build/bench
    ./bench_cluster --tiny
    ./bench_json_check BENCH_cluster.json
    awk '/"determinism"/ {
           if (index($0, "\"checksum_match\": true") == 0) {
             print "cluster-smoke: churn sweep not thread-deterministic"
             bad = 1
           }
           det = 1
         }
         /"kill"/ {
           split($0, a, "\"availability\": ")
           split(a[2], b, ",")
           if (b[1] + 0 < 0.99) {
             print "cluster-smoke: availability under kill " b[1] " < 0.99"
             bad = 1
           }
           kill = 1
         }
         END {
           if (!det || !kill) {
             print "cluster-smoke: determinism/kill rows missing from JSON"
             bad = 1
           }
           exit bad
         }' BENCH_cluster.json
  )
  echo "cluster-smoke: determinism, availability and audit gates held"
}

run_control_smoke() {
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" \
    --target control_test tero_cli bench_control bench_json_check
  (cd build && ctest -L control --output-on-failure -j "$(nproc)")
  # Bench artifact gate: BENCH_control.json must parse and the committed
  # floors must hold — the reactive policy sheds measurably less than the
  # static baseline at 2x and 4x overload, the brownout ladder engaged
  # before the first shed, and the 1-vs-N-thread decision logs matched.
  (
    cd build/bench
    ./bench_control --tiny
    ./bench_json_check BENCH_control.json
    awk '/"comparison"/ {
           split($0, a, "\"static_shed_2x\": "); split(a[2], s2, ",")
           split($0, a, "\"reactive_shed_2x\": "); split(a[2], r2, ",")
           split($0, a, "\"static_shed_4x\": "); split(a[2], s4, ",")
           split($0, a, "\"reactive_shed_4x\": "); split(a[2], r4, ",")
           if (r2[1] + 0 >= s2[1] + 0) {
             print "control-smoke: reactive shed " r2[1] " >= static " s2[1] \
                   " at 2x"
             bad = 1
           }
           if (r4[1] + 0 >= s4[1] + 0) {
             print "control-smoke: reactive shed " r4[1] " >= static " s4[1] \
                   " at 4x"
             bad = 1
           }
           comp = 1
         }
         /"ladder"/ {
           if (index($0, "\"engaged_before_shed\": true") == 0) {
             print "control-smoke: ladder did not engage before shedding"
             bad = 1
           }
           ladder = 1
         }
         /"determinism"/ {
           if (index($0, "\"log_match\": true") == 0 ||
               index($0, "\"checksum_match\": true") == 0) {
             print "control-smoke: decision log not thread-deterministic"
             bad = 1
           }
           det = 1
         }
         END {
           if (!comp || !ladder || !det) {
             print "control-smoke: comparison/ladder/determinism rows" \
                   " missing from JSON"
             bad = 1
           }
           exit bad
         }' BENCH_control.json
  )
  # Determinism sweep: per seed the CLI's per-tick decision log at 1 thread
  # and at 8 threads must be byte-identical; any divergence is a replay
  # hazard in the controller's scrape -> decide -> actuate loop. The CLI
  # itself exits nonzero when the ladder failed to engage before shedding.
  local out
  out=$(mktemp -d)
  for seed in 3 11 29; do
    ./build/examples/tero_cli control sweep --policy reactive --mult 4 \
      --seed "$seed" --threads 1 --log-out "$out/d1-$seed.log"
    ./build/examples/tero_cli control sweep --policy reactive --mult 4 \
      --seed "$seed" --threads 8 --log-out "$out/d8-$seed.log" > /dev/null
    if ! cmp -s "$out/d1-$seed.log" "$out/d8-$seed.log"; then
      echo "control-smoke: decision log differs at 1 vs 8 threads" \
           "(seed $seed)" >&2
      rm -rf "$out"
      exit 1
    fi
  done
  rm -rf "$out"
  echo "control-smoke: shed floors, ladder order and decision-log" \
       "determinism gates held"
}

run_perf_smoke() {
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" \
    --target bench_perf_micro simd_test tero_cli
  # Scalar-vs-SIMD bit-identity across every vectorized kernel (randomized
  # images, odd widths, tail lanes) — the determinism half of the contract.
  ./build/tests/simd_test
  (
    cd build/bench
    ./bench_perf_micro \
      --benchmark_filter='BM_OcrExtract|BM_Img|BM_Glyph|BM_OcrMatch' \
      --benchmark_min_time=0.05
    # Throughput floors: bench/perf_baseline.txt records the events/s each
    # stage sustained at the commit that last touched the fast path (scaled
    # down for slow CI machines); dropping more than 15% below a floor
    # fails the gate.
    awk 'NR==FNR {
           if ($0 !~ /^#/ && NF >= 2) floor[$1] = $2
           next
         }
         {
           for (name in floor) {
             if (index($0, "\"" name "\":") > 0) {
               split($0, a, "\"events_per_s\": ")
               split(a[2], b, ",")
               got = b[1] + 0
               if (got < floor[name] * 0.85) {
                 printf "perf-smoke: %s regressed: %f events/s < 0.85 * %f\n", \
                        name, got, floor[name]
                 bad = 1
               }
               seen[name] = 1
             }
           }
         }
         END {
           for (name in floor) {
             if (!(name in seen)) {
               print "perf-smoke: " name " missing from BENCH_perf_micro.json"
               bad = 1
             }
           }
           exit bad
         }' ../../bench/perf_baseline.txt BENCH_perf_micro.json
  )
  # Dispatch determinism: a scalar (TERO_SIMD=off, 1 thread) full-OCR run
  # must print the same dataset digest as the vectorized multi-threaded run.
  local out ref alt
  out=$(mktemp -d)
  ref=$(./build/examples/tero_cli simulate "$out" 40 2 4 --full-ocr --digest |
        awk '/^digest /{print $2}')
  alt=$(TERO_SIMD=off ./build/examples/tero_cli simulate "$out" 40 2 1 \
        --full-ocr --digest | awk '/^digest /{print $2}')
  rm -rf "$out"
  if [ -z "$ref" ] || [ "$ref" != "$alt" ]; then
    echo "perf-smoke: TERO_SIMD=off digest mismatch: '$ref' vs '$alt'" >&2
    exit 1
  fi
  echo "perf-smoke: digest $ref identical with TERO_SIMD=off"
}

for job in "${jobs[@]}"; do
  echo "=== ci: $job ==="
  case "$job" in
    tier1) run_preset default default ;;
    asan)  run_preset asan asan ;;   # test preset filters to -L smoke
    tsan)  run_preset tsan tsan ;;
    bench-smoke) run_bench_smoke ;;
    chaos-smoke) run_chaos_smoke ;;
    obs-smoke) run_obs_smoke ;;
    cluster-smoke) run_cluster_smoke ;;
    tsdb-smoke) run_tsdb_smoke ;;
    control-smoke) run_control_smoke ;;
    perf-smoke) run_perf_smoke ;;
    *) echo "unknown job: $job (want tier1, asan, tsan, bench-smoke," \
            "chaos-smoke, obs-smoke, cluster-smoke, tsdb-smoke," \
            "control-smoke or perf-smoke)" >&2
       exit 2 ;;
  esac
done
echo "=== ci: all jobs passed ==="
