#!/usr/bin/env bash
# CI driver: the build/test jobs a change must pass.
#
#   tier1        Release build, full test suite          (the seed contract)
#   asan         AddressSanitizer, smoke-labeled tests   (fast memory checks)
#   tsan         ThreadSanitizer, full test suite        (pool + pipeline races)
#   bench-smoke  Run bench binaries at tiny N, then parse-check the
#                BENCH_*.json artifacts with bench_json_check (obs::json).
#                Catches bench bitrot and malformed reporter output without
#                paying for a full benchmark run.
#   chaos-smoke  Fault-injection gate: the chaos-labeled test suite
#                (ctest -L chaos), a multi-seed `tero_cli chaos` sweep
#                (transient faults => bit-identical dataset; permanent
#                faults => explicit quarantine/degraded output), and the
#                fault-point overhead benchmark with an absolute ceiling on
#                the disabled-point cost.
#
# Run the default three:   scripts/ci.sh
# Run a subset:            scripts/ci.sh asan tsan
# Bench artifact gate:     scripts/ci.sh bench-smoke
# Fault-injection gate:    scripts/ci.sh chaos-smoke
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=("$@")
if [ ${#jobs[@]} -eq 0 ]; then
  jobs=(tier1 asan tsan)
fi

run_preset() {
  local preset="$1" test_preset="$2"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$test_preset" -j "$(nproc)"
}

run_bench_smoke() {
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" \
    --target bench_perf_micro bench_serve bench_stream bench_json_check
  # Benchmarks write BENCH_*.json into their cwd; keep artifacts in build/bench.
  (
    cd build/bench
    ./bench_perf_micro --benchmark_filter='BM_CleanStream/100' \
      --benchmark_min_time=0.01
    ./bench_serve --tiny
    ./bench_stream --tiny
    ./bench_json_check BENCH_perf_micro.json BENCH_serve.json \
      BENCH_stream.json
  )
}

run_chaos_smoke() {
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" \
    --target chaos_test tero_cli bench_perf_micro
  (cd build && ctest -L chaos --output-on-failure -j "$(nproc)")
  # Multi-seed deterministic chaos sweep; tero_cli exits nonzero when any
  # resilience invariant is violated.
  ./build/examples/tero_cli chaos 5 40 2
  # Overhead gate: a disabled fault point must stay in the
  # tens-of-nanoseconds range per crossing. throughput is crossings/s, so
  # 1e7/s = 100 ns per crossing — a deliberately generous ceiling that
  # still catches accidental locks or allocations on the disabled path.
  (
    cd build/bench
    ./bench_perf_micro --benchmark_filter='BM_FaultPoint' \
      --benchmark_min_time=0.01
    awk -F'"throughput": ' '/BM_FaultPointDisabled/ {
        split($2, a, "}")
        if (a[1] + 0 < 1e7) {
          print "chaos-smoke: disabled fault point too slow: " a[1] " /s"
          exit 1
        }
        found = 1
      }
      END {
        if (!found) {
          print "chaos-smoke: BM_FaultPointDisabled missing from JSON"
          exit 1
        }
      }' BENCH_perf_micro.json
  )
}

for job in "${jobs[@]}"; do
  echo "=== ci: $job ==="
  case "$job" in
    tier1) run_preset default default ;;
    asan)  run_preset asan asan ;;   # test preset filters to -L smoke
    tsan)  run_preset tsan tsan ;;
    bench-smoke) run_bench_smoke ;;
    chaos-smoke) run_chaos_smoke ;;
    *) echo "unknown job: $job (want tier1, asan, tsan, bench-smoke or" \
            "chaos-smoke)" >&2
       exit 2 ;;
  esac
done
echo "=== ci: all jobs passed ==="
