#!/usr/bin/env bash
# CI driver: the three build/test jobs a change must pass.
#
#   tier1   Release build, full test suite          (the seed contract)
#   asan    AddressSanitizer, smoke-labeled tests   (fast memory checks)
#   tsan    ThreadSanitizer, full test suite        (pool + pipeline races)
#
# Run all three:   scripts/ci.sh
# Run a subset:    scripts/ci.sh asan tsan
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=("$@")
if [ ${#jobs[@]} -eq 0 ]; then
  jobs=(tier1 asan tsan)
fi

run_preset() {
  local preset="$1" test_preset="$2"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$test_preset" -j "$(nproc)"
}

for job in "${jobs[@]}"; do
  echo "=== ci: $job ==="
  case "$job" in
    tier1) run_preset default default ;;
    asan)  run_preset asan asan ;;   # test preset filters to -L smoke
    tsan)  run_preset tsan tsan ;;
    *) echo "unknown job: $job (want tier1, asan or tsan)" >&2; exit 2 ;;
  esac
done
echo "=== ci: all jobs passed ==="
